"""Quickstart: compile one program with the baseline and with Orchestrated Trios.

Builds the 20-qubit Cuccaro ripple-carry adder (18 Toffolis), compiles it onto
IBM Johannesburg with both pipelines, and prints the metrics the paper reports:
two-qubit gate count, depth, scheduled duration and estimated success
probability under the near-term (20x improved) error model.

Run with:  python examples/quickstart.py
"""

from repro.bench_circuits import cuccaro_adder
from repro.compiler import compile_baseline, compile_trios
from repro.hardware import johannesburg, near_term_calibration


def main() -> None:
    device = johannesburg()
    calibration = near_term_calibration()
    program = cuccaro_adder(num_bits=9)
    print(f"Program: {program.name} — {program.num_qubits} qubits, "
          f"{program.count_ops().get('ccx', 0)} Toffolis")
    print(f"Device:  {device.name} — {device.num_qubits} qubits, {len(device.edges)} couplers\n")

    baseline = compile_baseline(program, device, seed=11)
    trios = compile_trios(program, device, seed=11)

    header = f"{'':28s}{'baseline':>12s}{'trios':>12s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("two-qubit (CNOT) gates", baseline.two_qubit_gate_count, trios.two_qubit_gate_count),
        ("SWAPs inserted", baseline.swaps_inserted, trios.swaps_inserted),
        ("depth", baseline.depth, trios.depth),
        ("duration (us)", f"{baseline.duration(calibration):.1f}",
         f"{trios.duration(calibration):.1f}"),
        ("estimated success", f"{baseline.success_probability(calibration):.4f}",
         f"{trios.success_probability(calibration):.4f}"),
    ]
    for label, base_value, trios_value in rows:
        print(f"{label:28s}{base_value!s:>12s}{trios_value!s:>12s}")

    reduction = 1 - trios.two_qubit_gate_count / baseline.two_qubit_gate_count
    ratio = trios.success_probability(calibration) / baseline.success_probability(calibration)
    print(f"\nTrios removes {reduction * 100:.1f}% of the two-qubit gates and "
          f"improves the estimated success probability by {ratio:.2f}x.")


if __name__ == "__main__":
    main()
