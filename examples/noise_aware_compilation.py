"""Noise-aware Trios: route around unreliable couplers (§4's extension).

Builds a Johannesburg calibration where a few couplers are an order of
magnitude noisier than the rest, then compiles a Toffoli-heavy circuit with and
without the noise-aware layout/routing weights (``-log`` CNOT success) and
compares the estimated success probabilities.

Run with:  python examples/noise_aware_compilation.py
"""

from repro.bench_circuits import cnx_dirty
from repro.compiler import compile_trios
from repro.hardware import johannesburg, johannesburg_aug19_2020


def main() -> None:
    device = johannesburg()
    # A handful of couplers in the middle of the device are 10x noisier.
    bad_edges = {(5, 6): 0.15, (6, 7): 0.15, (7, 12): 0.15, (11, 12): 0.15}
    calibration = johannesburg_aug19_2020().with_edge_errors(bad_edges)
    program = cnx_dirty(6)
    print(f"Program: {program.name} ({program.count_ops().get('ccx', 0)} Toffolis)")
    print(f"Noisy couplers: {sorted(bad_edges)} at 15% CNOT error "
          f"(others {calibration.two_qubit_gate_error:.3%})\n")

    unaware = compile_trios(program, device, seed=3)
    aware = compile_trios(program, device, seed=3, calibration=calibration,
                          noise_aware=True, layout="noise")

    for label, result in (("hop-count routing", unaware), ("noise-aware routing", aware)):
        bad_usage = sum(
            1 for inst in result.circuit.instructions
            if inst.gate.num_qubits == 2
            and (min(inst.qubits), max(inst.qubits)) in bad_edges
        )
        print(f"{label:22s} cnots={result.two_qubit_gate_count:4d}  "
              f"gates on noisy couplers={bad_usage:3d}  "
              f"est. success={result.success_probability(calibration):.4f}")

    print("\nThe noise-aware variant trades a few extra SWAPs for avoiding the bad")
    print("couplers, which pays off in overall success probability.")


if __name__ == "__main__":
    main()
