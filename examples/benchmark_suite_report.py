"""Regenerate the paper's evaluation tables from the command line.

Prints Table 1 (benchmark inventory), Figures 9/10/11 (the four-topology
benchmark sweep under the 20x-improved error model) and Figure 12 (sensitivity
to error rates).  The full sweep takes a few seconds.

Run with:  python examples/benchmark_suite_report.py
"""

from repro.bench_circuits import all_benchmark_statistics
from repro.experiments import run_benchmark_experiment, run_sensitivity_experiment
from repro.experiments.report import (
    format_benchmark_normalized,
    format_benchmark_reduction,
    format_benchmark_success,
    format_sensitivity,
    format_table1,
)


def main() -> None:
    print("[Table 1] Benchmark inventory (measured vs paper)\n")
    print(format_table1(all_benchmark_statistics()))

    print("\n\n[Figures 9-11] Baseline vs Trios on the four 20-qubit topologies\n")
    sweep = run_benchmark_experiment()
    print(format_benchmark_success(sweep))
    print(format_benchmark_reduction(sweep))
    print()
    print(format_benchmark_normalized(sweep))

    print("\n\n[Figure 12] Sensitivity to device error rates\n")
    sensitivity = run_sensitivity_experiment(factors=[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0])
    print(format_sensitivity(sensitivity))


if __name__ == "__main__":
    main()
