"""Exact vs sampled: the density-matrix backend against the shot samplers.

Compiles a single distant Toffoli with the baseline and Trios pipelines onto
IBM Johannesburg, then evaluates the |111⟩ success probability three ways:

* ``density`` / exact — the analytic probability from the density-matrix
  backend (zero shot variance, one number per circuit);
* ``trajectory`` — the stochastic-Pauli Monte Carlo at 2048 shots, with its
  ±1σ shot-noise band;
* ``failure`` — the paper's fast gate-failure model at 2048 shots.

The trajectory sampler draws from exactly the distribution the density
backend computes (both read their channels from ``repro.sim.channels``), so
its estimate lands inside the shot-noise band around the exact value.

Run with:  PYTHONPATH=src python examples/exact_vs_sampled.py
"""

import math

from repro.experiments.toffoli import compile_configuration
from repro.hardware import johannesburg, johannesburg_aug19_2020
from repro.sim import get_backend

SHOTS = 2048
TRIPLET = (2, 6, 10)  # a distance-10 placement that forces routing


def main() -> None:
    device = johannesburg()
    calibration = johannesburg_aug19_2020()
    placement = {0: TRIPLET[0], 1: TRIPLET[1], 2: TRIPLET[2]}
    print(f"Toffoli on physical qubits {TRIPLET} of {device.name}, "
          f"{calibration.name} error rates\n")

    header = (f"{'configuration':26s} {'CNOTs':>6s} {'exact':>8s} "
              f"{'trajectory':>16s} {'failure':>10s}")
    print(header)
    print("-" * len(header))
    for configuration in ("Qiskit (baseline)", "Trios (8-CNOT Toffoli)"):
        compiled = compile_configuration(configuration, device, placement, seed=7)
        circuit = compiled.circuit.without(["measure"])
        measured = compiled.physical_qubits_of([0, 1, 2])

        density = get_backend("density", calibration)
        p_exact = density.run_probabilities(circuit, measured_qubits=measured)
        exact = p_exact.get("111", 0.0)
        sigma = math.sqrt(exact * (1 - exact) / SHOTS)

        sampled = {}
        for name in ("trajectory", "failure"):
            backend = get_backend(name, calibration, seed=1)
            counts = backend.run_counts(circuit, shots=SHOTS,
                                        measured_qubits=measured)
            sampled[name] = counts.success_rate("111")

        trajectory = (f"{sampled['trajectory']:.4f} ±{sigma:.4f}")
        print(f"{configuration:26s} {compiled.two_qubit_gate_count:>6d} "
              f"{exact:>8.4f} {trajectory:>16s} {sampled['failure']:>10.4f}")

    print("\nThe exact column has no shot noise: re-running reproduces it to "
          "machine precision,\nwhile each sampled column moves by about its "
          "±1σ band per reseed.")


if __name__ == "__main__":
    main()
