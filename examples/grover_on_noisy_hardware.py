"""Run Grover search through both compilers and a noisy-hardware simulation.

Compiles the 9-qubit Grover benchmark (Table 1's grovers-9) for IBM
Johannesburg with the baseline and with Trios, then samples both compiled
circuits on the stochastic gate-failure model at near-term error rates and
reports how often the marked item is actually found.

Run with:  python examples/grover_on_noisy_hardware.py
"""

from repro.bench_circuits import grovers
from repro.compiler import compile_baseline, compile_trios
from repro.hardware import johannesburg, near_term_calibration
from repro.sim import get_backend


def main() -> None:
    device = johannesburg()
    calibration = near_term_calibration()
    num_data = 5
    marked = "1" * num_data
    program = grovers(num_data)
    print(f"Grover search over {num_data} qubits, marked item |{marked}>, "
          f"{program.count_ops().get('ccx', 0)} Toffolis\n")

    shots = 2000
    for label, result in (
        ("baseline", compile_baseline(program, device, seed=7)),
        ("trios", compile_trios(program, device, seed=7)),
    ):
        sampler = get_backend("failure", calibration, seed=42)
        measured = result.physical_qubits_of(list(range(num_data)))
        counts = sampler.run_counts(result.circuit, shots=shots, measured_qubits=measured)
        found = counts.success_rate(marked)
        print(f"{label:9s} cnots={result.two_qubit_gate_count:4d}  "
              f"estimated success={result.success_probability(calibration):.3f}  "
              f"measured P(|{marked}>)={found:.3f}  ({shots} shots)")

    print("\nThe ideal (noiseless) circuit finds the marked item with probability ~1.0;")
    print("Trios' lower gate count keeps more of that signal on noisy hardware.")


if __name__ == "__main__":
    main()
