"""Figure 1 walkthrough: why routing a Toffoli as a unit saves so many SWAPs.

Places the three inputs of a single Toffoli on distant qubits of IBM
Johannesburg (the initial mapping is fixed to force routing), compiles it under
the four configurations of Figures 6/7, and prints the SWAP/CNOT breakdown plus
the OpenQASM of the best circuit.

Run with:  python examples/routing_walkthrough.py
"""

from repro.circuits import to_qasm
from repro.experiments import CONFIGURATIONS, compile_configuration
from repro.hardware import johannesburg, johannesburg_aug19_2020

PLACEMENT = {0: 0, 1: 4, 2: 15}  # a distant triplet, like the paper's Figure 1


def main() -> None:
    device = johannesburg()
    calibration = johannesburg_aug19_2020()
    triplet = tuple(PLACEMENT[q] for q in range(3))
    print(f"Toffoli on physical qubits {triplet} of {device.name} "
          f"(total pairwise distance {device.total_distance(triplet)})\n")

    results = {}
    for configuration in CONFIGURATIONS:
        result = compile_configuration(configuration, device, PLACEMENT, seed=1)
        results[configuration] = result
        print(f"{configuration:26s} swaps={result.swaps_inserted:2d}  "
              f"cnots={result.two_qubit_gate_count:3d}  depth={result.depth:3d}  "
              f"est. success={result.success_probability(calibration):.3f}")

    best = results["Trios (8-CNOT Toffoli)"]
    print("\nFinal physical homes of the three logical qubits (Trios):",
          best.physical_qubits_of([0, 1, 2]))
    print("\nOpenQASM of the Trios-compiled circuit:\n")
    print(to_qasm(best.circuit))


if __name__ == "__main__":
    main()
