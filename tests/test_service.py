"""Tests for the compile service: cache, job keys, coalescing, resilience.

Covers the PR's hard guarantees:

* the sharded LRU is deterministic, byte-size-bounded and counted;
* the content key covers the *full* canonical option set (the regression for
  the options-blind cache-key bug) and excludes non-semantic options;
* N identical concurrent requests trigger exactly one pool compile
  (coalescing);
* cache hits are byte-identical to fresh compiles, pinned against the frozen
  Fig 9/10 sha256 reference;
* worker crashes injected via ``REPRO_FAULTS`` surface as structured errors
  to exactly the affected requests without taking the server down;
* the deprecated ``repro.parallel`` shim warns on import.
"""

from __future__ import annotations

import asyncio
import hashlib
import importlib
import json
import sys
from pathlib import Path

import pytest

from repro.bench_circuits.suite import get_benchmark
from repro.circuits.qasm import from_qasm, to_qasm
from repro.exceptions import (
    ServiceCompileError,
    ServiceError,
    ServiceRequestError,
)
from repro.experiments.benchmarks import (
    clear_compile_cache,
    compile_benchmark_cached,
)
from repro.experiments.toffoli import compile_configuration
from repro.hardware.library import by_name
from repro.hardware.topology import CouplingMap
from repro.runtime import Fault, FaultPlan, FailurePolicy
from repro.runtime.faults import FAULTS_ENV_VAR
from repro.service import (
    CompileJob,
    CompileRequest,
    CompileService,
    ServiceClient,
    ServiceHTTPServer,
    ShardedLRUCache,
    canonical_options,
    compile_job_key,
    resolve_options,
    topology_signature,
)
from repro.compiler.pipeline import transpile

REFERENCE = Path(__file__).parent / "data" / "fig9_10_compiled_sha256.json"


def canonical_bytes(circuit) -> str:
    """Same canonical form the frozen-reference freezer hashes."""
    lines = [f"{circuit.num_qubits}"]
    for inst in circuit.instructions:
        params = ",".join(float(p).hex() for p in inst.gate.params)
        qubits = ",".join(map(str, inst.qubits))
        clbits = ",".join(map(str, inst.clbits))
        lines.append(f"{inst.name}({params}) q{qubits} c{clbits}")
    return "\n".join(lines)


def circuit_digest(circuit) -> str:
    return hashlib.sha256(canonical_bytes(circuit).encode()).hexdigest()


def tiny_line(num_qubits: int = 5) -> CouplingMap:
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingMap(num_qubits, edges, name=f"tiny-line-{num_qubits}")


# ----------------------------------------------------------------------
# ShardedLRUCache
# ----------------------------------------------------------------------
class TestShardedLRUCache:
    def test_lru_eviction_is_deterministic_and_size_bounded(self):
        # One shard, fixed 10-byte charge per entry, room for exactly 3.
        cache = ShardedLRUCache(
            max_bytes=30, shards=1, size_of=lambda k, v: 10, name="t1"
        )
        for key in ("a", "b", "c"):
            assert cache.put(key, key.upper())
        assert cache.get("a") == "A"  # freshen "a": now LRU order is b, c, a
        cache.put("d", "D")
        assert cache.get("b") is None  # the least recently used entry went
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.get("d") == "D"
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.entries == 3
        assert stats.current_bytes <= 30

    def test_every_shard_respects_its_byte_budget(self):
        cache = ShardedLRUCache(
            max_bytes=400, shards=4, size_of=lambda k, v: 10, name="t2"
        )
        for index in range(500):
            cache.put(f"key-{index}", index)
        # Per-shard budget is 100 bytes = 10 entries; 4 shards <= 40 entries.
        assert len(cache) <= 40
        assert cache.stats().current_bytes <= 400
        assert cache.stats().evictions >= 460

    def test_oversize_value_rejected_not_inserted(self):
        cache = ShardedLRUCache(
            max_bytes=40, shards=4, size_of=lambda k, v: 1000, name="t3"
        )
        assert not cache.put("huge", "x")
        assert "huge" not in cache
        assert cache.stats().rejected_oversize == 1

    def test_hit_miss_counters(self):
        cache = ShardedLRUCache(max_bytes=1 << 20, name="t4")
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.get("absent") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.insertions) == (1, 1, 1)

    def test_clear_empties_but_keeps_counters(self):
        cache = ShardedLRUCache(max_bytes=1 << 20, name="t5")
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.stats().hits == 1

    def test_same_key_always_same_shard(self):
        cache = ShardedLRUCache(max_bytes=1 << 20, shards=8, name="t6")
        shard = cache._shard_for("some-key")
        assert all(cache._shard_for("some-key") is shard for _ in range(10))


# ----------------------------------------------------------------------
# Content keys — the options-blind-key regression
# ----------------------------------------------------------------------
class TestCompileJobKeys:
    topo = ("line", 5, ((0, 1), (1, 2), (2, 3), (3, 4)))
    qasm = "OPENQASM 2.0;"

    def key(self, method="baseline", **options):
        return compile_job_key(self.qasm, self.topo, method, options)

    def test_two_option_sets_never_collide(self):
        # The historical bug: (benchmark, topology, method, seed) ignored
        # every other option.  Each semantic knob must now split the key.
        base = self.key(seed=11)
        assert self.key(seed=11, optimization_level=0) != base
        assert self.key(seed=11, optimization_level=2) != base
        assert self.key(seed=11, toffoli_mode="8cnot") != base
        assert self.key(seed=11, layout="trivial") != base
        assert self.key(seed=11, routing="greedy") != base
        assert self.key("trios", seed=11, second_decomposition="6cnot") != (
            self.key("trios", seed=11)
        )

    def test_defaults_resolve_to_the_same_key(self):
        # Spelling out transpile()'s defaults must share the implicit key.
        assert self.key() == self.key(
            seed=2021, optimization_level=1, layout="greedy", routing="stochastic"
        )
        assert self.key(toffoli_mode="6cnot") == self.key()
        assert self.key("trios", second_decomposition="mapping_aware") == (
            self.key("trios")
        )
        # The legacy boolean maps onto the level it resolves to.
        assert self.key(optimize=True) == self.key(optimization_level=1)
        assert self.key(optimize=False) == self.key(optimization_level=0)

    def test_non_semantic_options_do_not_fragment_the_key(self):
        assert self.key(validate=False) == self.key()
        assert self.key("trios", optimization_level=3, jobs=4) == self.key(
            "trios", optimization_level=3
        )

    def test_layout_dicts_canonicalise_order_independently(self):
        a = self.key(layout={0: 3, 1: 1, 2: 4})
        b = self.key(layout={2: 4, 0: 3, 1: 1})
        assert a == b
        assert a != self.key(layout={0: 3, 1: 1, 2: 2})

    def test_methods_and_topologies_split_the_key(self):
        assert self.key("baseline") != self.key("trios")
        other = ("line", 5, ((0, 1), (1, 2), (2, 3), (0, 4)))
        assert compile_job_key(self.qasm, other, "baseline", {}) != self.key()

    def test_unknown_and_misdirected_options_rejected(self):
        with pytest.raises(ServiceRequestError, match="unknown transpile option"):
            resolve_options("baseline", {"opt_level": 2})
        with pytest.raises(ServiceRequestError, match="has no effect"):
            resolve_options("trios", {"toffoli_mode": "8cnot"})
        with pytest.raises(ServiceRequestError, match="unknown compilation method"):
            resolve_options("nonsense", {})

    def test_canonical_options_mirror_transpile_defaults(self):
        # The key's default table must track the real signature: compile with
        # no options and with the mirrored defaults and compare outputs.
        circuit = get_benchmark("cnx_inplace-4")
        coupling_map = tiny_line()
        implicit = transpile(circuit, coupling_map, method="baseline", seed=7)
        resolved = dict(resolve_options("baseline", {"seed": 7}))
        for non_option in ("calibration",):
            resolved.pop(non_option, None)
        explicit = transpile(circuit, coupling_map, method="baseline", **resolved)
        assert canonical_bytes(implicit.circuit) == canonical_bytes(explicit.circuit)

    def test_seedless_stochastic_jobs_are_not_cacheable(self):
        circuit = get_benchmark("cnx_inplace-4")
        job = CompileJob.from_circuit(circuit, tiny_line(), "baseline", seed=None)
        assert not job.cacheable
        deterministic = CompileJob.from_circuit(
            circuit, tiny_line(), "baseline", seed=None, routing="greedy"
        )
        assert deterministic.cacheable
        assert CompileJob.from_circuit(circuit, tiny_line(), "baseline").cacheable

    def test_qasm_formatting_never_splits_the_key(self):
        circuit = get_benchmark("cnx_inplace-4")
        text = to_qasm(circuit)
        reformatted = "\n".join(line + "  " for line in text.splitlines())
        a = CompileJob.from_qasm(text, tiny_line(), "baseline")
        b = CompileJob.from_qasm(reformatted, tiny_line(), "baseline")
        assert a.key == b.key


# ----------------------------------------------------------------------
# The drivers as thin clients of the shared cache
# ----------------------------------------------------------------------
class TestDriverCache:
    def test_compile_benchmark_cached_options_split_entries(self):
        clear_compile_cache()
        coupling_map = tiny_line()
        level1 = compile_benchmark_cached("cnx_inplace-4", coupling_map, "baseline", 7)
        level0 = compile_benchmark_cached(
            "cnx_inplace-4", coupling_map, "baseline", 7, optimization_level=0
        )
        # Level 0 skips the clean-up loop: genuinely different output, which
        # the old options-blind key would have served from one entry.
        assert canonical_bytes(level0.circuit) != canonical_bytes(level1.circuit)
        again = compile_benchmark_cached(
            "cnx_inplace-4", coupling_map, "baseline", 7, optimization_level=0
        )
        assert canonical_bytes(again.circuit) == canonical_bytes(level0.circuit)

    def test_compile_benchmark_cached_hit_is_byte_identical(self):
        clear_compile_cache()
        coupling_map = tiny_line()
        first = compile_benchmark_cached("cnx_inplace-4", coupling_map, "trios", 3)
        second = compile_benchmark_cached("cnx_inplace-4", coupling_map, "trios", 3)
        assert second is first  # served from the in-process cache
        fresh = transpile(
            get_benchmark("cnx_inplace-4"), coupling_map, method="trios", seed=3
        )
        assert canonical_bytes(second.circuit) == canonical_bytes(fresh.circuit)

    def test_compile_configuration_matches_legacy_pipeline(self):
        # The Toffoli driver now routes through the job API; its outputs must
        # be byte-identical to the historical compile_baseline/compile_trios
        # calls (same options, same seed).
        clear_compile_cache()
        coupling_map = by_name("ibmq-johannesburg")
        placement = {0: 0, 1: 4, 2: 15}
        legacy = transpile(
            compile_configuration.__globals__["toffoli_test_circuit"](),
            coupling_map,
            method="trios",
            second_decomposition="mapping_aware",
            layout=placement,
            seed=1,
        )
        routed = compile_configuration(
            "Trios (8-CNOT Toffoli)", coupling_map, placement, seed=1
        )
        assert canonical_bytes(routed.circuit) == canonical_bytes(legacy.circuit)

    def test_unbounded_growth_is_gone(self):
        # The regression that motivated the PR: the driver cache must expose
        # a byte bound, not a bare dict.
        from repro.experiments import benchmarks as module

        assert isinstance(module._COMPILE_CACHE, ShardedLRUCache)
        assert module._COMPILE_CACHE.max_bytes > 0
        clear_compile_cache()
        assert len(module._COMPILE_CACHE) == 0


# ----------------------------------------------------------------------
# The service: coalescing, byte-identity, crash resilience, HTTP
# ----------------------------------------------------------------------
def make_request(seed=11, target="line-20", method="baseline", **options):
    qasm = to_qasm(get_benchmark("cnx_inplace-4"))
    return CompileRequest(
        qasm=qasm, target=target, method=method, options={"seed": seed, **options}
    )


class TestCompileService:
    def test_identical_concurrent_requests_compile_once(self):
        async def scenario():
            service = CompileService(pool_jobs=1, batch_window=0.02)
            await service.start()
            try:
                request = make_request()
                responses = await asyncio.gather(
                    *[service.compile(request) for _ in range(8)]
                )
            finally:
                await service.stop()
            return service, responses

        service, responses = asyncio.run(scenario())
        statuses = sorted(response.status for response in responses)
        assert statuses == ["coalesced"] * 7 + ["miss"]
        assert service.stats.pool_compiles == 1
        assert service.stats.coalesced == 7
        assert len({response.qasm for response in responses}) == 1
        assert len({response.key for response in responses}) == 1

    def test_cache_hits_byte_identical_to_frozen_reference(self):
        reference = json.loads(REFERENCE.read_text())["hashes"]

        async def scenario():
            service = CompileService(pool_jobs=1)
            await service.start()
            try:
                first = await service.compile(make_request(method="trios"))
                second = await service.compile(make_request(method="trios"))
            finally:
                await service.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == "miss" and second.status == "hit"
        assert second.qasm == first.qasm
        digest = circuit_digest(from_qasm(second.qasm))
        assert digest == reference["line-20|cnx_inplace-4|trios"]

    def test_injected_worker_crash_returns_structured_error(self, monkeypatch):
        # Two *distinct* concurrent requests so the batch reaches pool mode
        # (crash faults are inert in the runner's serial path by design).
        # Both cells crash on every attempt with no retry budget: each
        # requester gets a structured ServiceCompileError — and the server
        # itself keeps serving once the fault plan is lifted.
        plan = FaultPlan.of({0: [Fault("crash")], 1: [Fault("crash")]})
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())

        async def scenario():
            service = CompileService(
                pool_jobs=2,
                batch_window=0.05,
                policy=FailurePolicy(retries=0, on_error="skip"),
            )
            await service.start()
            try:
                outcomes = await asyncio.gather(
                    service.compile(make_request(seed=3)),
                    service.compile(make_request(seed=5)),
                    return_exceptions=True,
                )
                # The server survived the pool break: a fresh request
                # compiles normally once the plan is lifted.
                monkeypatch.delenv(FAULTS_ENV_VAR)
                followup = await service.compile(make_request(seed=7))
            finally:
                await service.stop()
            return service, outcomes, followup

        service, outcomes, followup = asyncio.run(scenario())
        for outcome in outcomes:
            assert isinstance(outcome, ServiceCompileError)
            assert outcome.status == "crashed"
            assert outcome.error_type == "WorkerCrash"
            assert outcome.attempts == 1
            assert "crashed" in str(outcome)
        assert followup.status == "miss"
        assert service.stats.errors == 2
        # Crashed results must never poison the cache.
        assert len(service.cache) == 1

    def test_crash_healed_by_retry_budget(self, monkeypatch):
        # The same pool-mode batch, but both cells crash only on their first
        # attempt: the FailurePolicy's retry budget heals the sweep and both
        # requesters see ordinary responses.
        plan = FaultPlan.of({
            0: [Fault("crash", attempts=(1,))],
            1: [Fault("crash", attempts=(1,))],
        })
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())

        async def scenario():
            service = CompileService(
                pool_jobs=2,
                batch_window=0.05,
                policy=FailurePolicy(retries=2, on_error="skip"),
            )
            await service.start()
            try:
                return await asyncio.gather(
                    service.compile(make_request(seed=3)),
                    service.compile(make_request(seed=5)),
                )
            finally:
                await service.stop()

        with pytest.warns(RuntimeWarning, match="worker process died"):
            responses = asyncio.run(scenario())
        for response in responses:
            assert response.status == "miss"
            assert response.attempts >= 2
            assert response.cnots > 0

    def test_uncacheable_requests_bypass_cache_and_coalescing(self):
        async def scenario():
            service = CompileService(pool_jobs=1)
            await service.start()
            try:
                first = await service.compile(make_request(seed=None))
                second = await service.compile(make_request(seed=None))
            finally:
                await service.stop()
            return service, first, second

        service, first, second = asyncio.run(scenario())
        assert first.status == "uncached" and second.status == "uncached"
        assert service.stats.pool_compiles == 2
        assert len(service.cache) == 0

    def test_bad_requests_raise_service_request_error(self):
        async def scenario():
            service = CompileService(pool_jobs=1)
            await service.start()
            try:
                with pytest.raises(ServiceRequestError, match="unknown target"):
                    await service.compile(
                        CompileRequest(qasm="OPENQASM 2.0;", target="no-such-device")
                    )
                with pytest.raises(ServiceRequestError, match="unknown transpile"):
                    await service.compile(make_request(bogus_option=1))
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_on_error_fail_policy_rejected(self):
        with pytest.raises(ServiceError, match="on_error"):
            CompileService(policy=FailurePolicy(on_error="fail"))

    def test_request_from_json_validation(self):
        with pytest.raises(ServiceRequestError, match="qasm"):
            CompileRequest.from_json({"target": "line-20"})
        with pytest.raises(ServiceRequestError, match="target"):
            CompileRequest.from_json({"qasm": "OPENQASM 2.0;"})
        with pytest.raises(ServiceRequestError, match="unknown method"):
            CompileRequest.from_json(
                {"qasm": "OPENQASM 2.0;", "target": "line-20", "method": "x"}
            )
        with pytest.raises(ServiceRequestError, match="calibration"):
            CompileRequest.from_json(
                {
                    "qasm": "OPENQASM 2.0;",
                    "target": "line-20",
                    "options": {"calibration": {}},
                }
            )
        request = CompileRequest.from_json(
            {
                "qasm": "OPENQASM 2.0;",
                "target": "line-20",
                "options": {"layout": {"0": 3, "1": 1}},
            }
        )
        assert request.options["layout"] == {0: 3, 1: 1}


class TestServiceHTTP:
    def test_http_roundtrip_compile_stats_shutdown(self):
        async def scenario():
            service = CompileService(pool_jobs=1)
            server = ServiceHTTPServer(service, host="127.0.0.1", port=0)
            port = await server.start()
            loop = asyncio.get_running_loop()
            client = ServiceClient(port=port, timeout=120)
            qasm = to_qasm(get_benchmark("cnx_inplace-4"))

            def exchange():
                results = {}
                results["health"] = client.healthz()
                results["miss"] = client.compile(
                    qasm, "line-20", "baseline", {"seed": 11}
                )
                results["hit"] = client.compile(
                    qasm, "line-20", "baseline", {"seed": 11}
                )
                results["bad"] = client.compile(qasm, "no-such-device")
                results["bad_option"] = client.compile(
                    qasm, "line-20", "baseline", {"toffoli_mode": "9cnot"}
                )
                results["stats"] = client.stats()
                results["not_found"] = client.request("GET", "/nope")
                results["shutdown"] = client.shutdown()
                return results

            try:
                results = await loop.run_in_executor(None, exchange)
                await asyncio.wait_for(server.serve_until_shutdown(), timeout=10)
            finally:
                await server.stop()
            return results

        results = asyncio.run(scenario())
        assert results["health"] == (200, {"status": "ok"})
        status, body = results["miss"]
        assert status == 200 and body["status"] == "miss" and body["cnots"] > 0
        status, hit = results["hit"]
        assert status == 200 and hit["status"] == "hit"
        assert hit["qasm"] == results["miss"][1]["qasm"]
        assert results["bad"][0] == 400
        assert results["bad_option"][0] == 400
        status, stats = results["stats"]
        assert status == 200
        assert stats["service"]["hits"] == 1
        assert stats["cache"]["hits"] == 1
        assert results["not_found"][0] == 404
        assert results["shutdown"][0] == 200


# ----------------------------------------------------------------------
# The deprecated repro.parallel shim
# ----------------------------------------------------------------------
def test_parallel_shim_warns_on_import():
    sys.modules.pop("repro.parallel", None)
    with pytest.warns(DeprecationWarning, match="repro.parallel is deprecated"):
        importlib.import_module("repro.parallel")
    # Re-import from cache: no second warning, the export still works.
    module = importlib.import_module("repro.parallel")
    assert callable(module.run_experiment_cells)


def test_topology_signature_distinguishes_devices():
    assert topology_signature(tiny_line(5)) != topology_signature(tiny_line(6))
    assert canonical_options("baseline", {})  # smoke: defaults render
