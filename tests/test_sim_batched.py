"""Equivalence tests for the batched shot engine.

The batched samplers draw the same distributions as the original per-shot
implementations — only the order of RNG consumption changed — so seeded runs
of both must agree within a total-variation-distance (TVD) tolerance.  The
reference samplers are the seed repository's per-shot loops, frozen verbatim
in ``benchmarks/_legacy_samplers.py`` (shared with the throughput benchmark).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import (
    GateFailureSampler,
    NoisyResult,
    PauliTrajectorySampler,
    SimulationBackend,
    StatevectorSimulator,
    counts_from_bit_array,
    get_backend,
    marginal_probabilities,
)
from repro.sim.statevector import zero_state

_LEGACY_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "_legacy_samplers.py"
_spec = importlib.util.spec_from_file_location("_legacy_samplers", _LEGACY_PATH)
_legacy = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_legacy)
ReferenceTrajectorySampler = _legacy.LegacyTrajectorySampler
ReferenceGateFailureSampler = _legacy.LegacyGateFailureSampler


def total_variation_distance(a: NoisyResult, b: NoisyResult) -> float:
    """TVD between the empirical distributions of two count results."""
    keys = set(a.counts) | set(b.counts)
    return 0.5 * sum(
        abs(a.counts.get(k, 0) / a.shots - b.counts.get(k, 0) / b.shots)
        for k in keys
    )


def toffoli_workload() -> QuantumCircuit:
    """A decomposed |110⟩-input Toffoli plus a spectator CNOT (4 qubits)."""
    circuit = QuantumCircuit(4)
    circuit.x(0).x(1)
    circuit.h(2).cx(1, 2).tdg(2).cx(0, 2).t(2).cx(1, 2).tdg(2).cx(0, 2)
    circuit.t(1).t(2).h(2).cx(0, 1).t(0).tdg(1).cx(0, 1)
    circuit.cx(2, 3)
    return circuit


class TestBatchedEquivalence:
    SHOTS = 4096
    TVD_TOLERANCE = 0.05

    def test_trajectory_sampler_matches_reference(self, hardware_calibration):
        circuit = toffoli_workload()
        batched = PauliTrajectorySampler(hardware_calibration, seed=7).run(
            circuit, shots=self.SHOTS
        )
        reference = ReferenceTrajectorySampler(hardware_calibration, seed=7).run(
            circuit, shots=self.SHOTS
        )
        assert sum(batched.counts.values()) == self.SHOTS
        assert total_variation_distance(batched, reference) <= self.TVD_TOLERANCE

    def test_trajectory_sampler_matches_reference_no_readout(self, hardware_calibration):
        circuit = toffoli_workload()
        kwargs = dict(include_decoherence=False, include_readout_error=False)
        batched = PauliTrajectorySampler(hardware_calibration, seed=3, **kwargs).run(
            circuit, shots=self.SHOTS
        )
        reference = ReferenceTrajectorySampler(hardware_calibration, seed=3, **kwargs).run(
            circuit, shots=self.SHOTS
        )
        assert total_variation_distance(batched, reference) <= self.TVD_TOLERANCE

    def test_failure_sampler_matches_reference(self, hardware_calibration):
        circuit = toffoli_workload()
        batched = GateFailureSampler(hardware_calibration, seed=11).run(
            circuit, shots=self.SHOTS
        )
        reference = ReferenceGateFailureSampler(hardware_calibration, seed=11).run(
            circuit, shots=self.SHOTS
        )
        assert sum(batched.counts.values()) == self.SHOTS
        assert total_variation_distance(batched, reference) <= self.TVD_TOLERANCE

    def test_trajectory_seeded_runs_are_reproducible(self, hardware_calibration):
        circuit = toffoli_workload()
        sampler = PauliTrajectorySampler(hardware_calibration)
        first = sampler.run_counts(circuit, shots=512, seed=21)
        second = sampler.run_counts(circuit, shots=512, seed=21)
        assert first.counts == second.counts

    def test_high_error_rates_still_sum_to_shots(self, hardware_calibration):
        # Stress the pattern-grouping path: errors on nearly every gate.
        noisy = hardware_calibration.improved(0.05)  # 20x worse
        circuit = toffoli_workload()
        result = PauliTrajectorySampler(noisy, seed=5).run(circuit, shots=256)
        assert sum(result.counts.values()) == 256

    def test_single_shot_run(self, hardware_calibration):
        result = PauliTrajectorySampler(hardware_calibration, seed=1).run(
            toffoli_workload(), shots=1
        )
        assert sum(result.counts.values()) == 1


class TestSimulationBackendProtocol:
    def test_samplers_satisfy_protocol(self, hardware_calibration):
        assert isinstance(PauliTrajectorySampler(hardware_calibration), SimulationBackend)
        assert isinstance(GateFailureSampler(hardware_calibration), SimulationBackend)
        assert isinstance(StatevectorSimulator(), SimulationBackend)

    def test_get_backend_by_name(self, hardware_calibration):
        assert isinstance(get_backend("trajectory", hardware_calibration),
                          PauliTrajectorySampler)
        assert isinstance(get_backend("failure", hardware_calibration),
                          GateFailureSampler)
        assert isinstance(get_backend("ideal"), StatevectorSimulator)
        assert isinstance(get_backend("statevector"), StatevectorSimulator)

    def test_get_backend_unknown_name(self):
        with pytest.raises(SimulationError, match="unknown simulation backend"):
            get_backend("quantum-annealer")

    def test_noisy_backend_requires_calibration(self):
        with pytest.raises(SimulationError, match="requires a device calibration"):
            get_backend("failure")

    def test_ideal_backend_run_counts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        circuit.measure(0, 0).measure(1, 1)
        result = StatevectorSimulator().run_counts(circuit, shots=300, seed=9)
        assert result.shots == 300
        assert set(result.counts) <= {"00", "11"}
        assert sum(result.counts.values()) == 300
        again = StatevectorSimulator().run_counts(circuit, shots=300, seed=9)
        assert again.counts == result.counts

    def test_ideal_backend_draws_fresh_samples_per_call(self):
        # Regression: a seeded instance must advance its RNG across calls
        # (independent batches), matching the noisy samplers' behavior.
        circuit = QuantumCircuit(4)
        for qubit in range(4):
            circuit.h(qubit)
        backend = StatevectorSimulator(seed=5)
        first = backend.run_counts(circuit, shots=4096)
        second = backend.run_counts(circuit, shots=4096)
        assert first.counts != second.counts

    def test_ideal_backend_reduces_wide_circuits(self):
        # A 30-qubit device circuit with two active qubits must not blow the
        # simulator's width limit (the noisy samplers reduce the same way).
        wide = QuantumCircuit(30)
        wide.h(12).cx(12, 17)
        result = StatevectorSimulator().run_counts(wide, shots=64, seed=3)
        assert result.measured_qubits == (12, 17)
        assert set(result.counts) <= {"00", "11"}

    def test_all_backends_agree_on_noiseless_device(self, hardware_calibration):
        perfect = hardware_calibration.improved(1e12)
        circuit = toffoli_workload()
        for name in ("failure", "trajectory"):
            backend = get_backend(name, perfect, seed=2,
                                  include_readout_error=False)
            result = backend.run_counts(circuit, shots=128)
            assert result.counts == {"1111": 128}, name


class TestSatelliteFixes:
    def test_marginal_rejects_duplicate_qubits(self):
        state = zero_state(3)
        with pytest.raises(SimulationError, match="duplicate"):
            marginal_probabilities(state, 3, [0, 0])

    def test_marginal_rejects_out_of_range_qubits(self):
        state = zero_state(3)
        with pytest.raises(SimulationError, match="out of range"):
            marginal_probabilities(state, 3, [0, 3])
        with pytest.raises(SimulationError, match="out of range"):
            marginal_probabilities(state, 3, [-1])

    def test_failure_sampler_max_active_qubits(self, hardware_calibration):
        wide = QuantumCircuit(8)
        for qubit in range(7):
            wide.cx(qubit, qubit + 1)
        sampler = GateFailureSampler(hardware_calibration, seed=0, max_active_qubits=4)
        with pytest.raises(SimulationError, match="exceeds the gate-failure"):
            sampler.run(wide, shots=8)

    def test_counts_from_bit_array(self):
        bits = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.int8)
        assert counts_from_bit_array(bits) == {"01": 2, "10": 1}
