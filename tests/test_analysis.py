"""The static verification layer: lint rules, sabotage mutations, contracts.

Three families of tests:

* **Sabotage**: take a *correct* compiled circuit, corrupt its DAG in a
  specific way (illegal edge, reversed direction, broken wire chain, dropped
  measurement, ...) and assert the linter reports exactly the documented
  ``QLxxx`` code for that corruption.
* **Contracts**: the pass-contract validator must attribute the first broken
  pipeline invariant to the offending pass, for all violation kinds
  (``requires``, per-pass checks, full-mode structure/invariant re-checks).
* **Clean outputs**: whatever ``transpile()`` produces — at every
  optimization level, for both pipelines, on randomized programs — must lint
  without error-severity findings.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit, Target, transpile
from repro.analysis import (
    ALL_RULES,
    PROPERTY_CHECKERS,
    RULES_BY_CODE,
    CircuitLinter,
    ContractValidator,
    Severity,
    lint_circuit,
    resolve_validation_mode,
    structural_linter,
)
from repro.analysis.linter import STRUCTURAL_CODES
from repro.bench_circuits.suite import get_benchmark
from repro.circuits.circuit import Instruction
from repro.circuits.dag import DagCircuit
from repro.circuits.gate import Gate
from repro.circuits.qasm import to_qasm
from repro.exceptions import AnalysisError, ContractViolationError
from repro.hardware import fully_connected, johannesburg, line
from repro.passes import (
    CancelAdjacentInversesPass,
    DecomposeSwapsPass,
    FixedPoint,
    GreedySwapRouter,
    MappingAwareToffoliDecomposePass,
    PassManager,
    PropertySet,
    RemoveIdentitiesPass,
    ToffoliDecomposePass,
    TransformationPass,
)


def compiled_dag(method: str = "trios", seed: int = 11) -> DagCircuit:
    """A freshly routed, legal DAG to corrupt (one per test: mutations stick)."""
    result = transpile(
        get_benchmark("cnx_inplace-4"), johannesburg(), method=method, seed=seed
    )
    return DagCircuit.from_circuit(result.circuit)


def node_with_wire_successor(dag: DagCircuit):
    """Some (node, wire, successor) triple with a live wire-chain link."""
    for node in dag:
        for wire, nxt in node._wnext.items():
            if nxt is not None:
                return node, wire, nxt
    raise AssertionError("compiled DAG has no wire chains at all")


def non_adjacent_pair(coupling_map):
    for a in range(coupling_map.num_qubits):
        for b in range(a + 1, coupling_map.num_qubits):
            if not coupling_map.are_adjacent(a, b):
                return a, b
    raise AssertionError(f"{coupling_map.name} is fully connected")


# ----------------------------------------------------------------------
# Sabotage: structural IR corruption -> exact QL00x code
# ----------------------------------------------------------------------
class TestStructuralSabotage:
    def test_clean_compiled_dag_lints_clean(self):
        report = structural_linter().lint(compiled_dag())
        assert not report.diagnostics

    def test_broken_wire_chain_is_ql001(self):
        dag = compiled_dag()
        node, wire, nxt = node_with_wire_successor(dag)
        nxt._wprev[wire] = None  # successor no longer links back
        report = structural_linter().lint(dag)
        assert "QL001" in report.codes()
        assert report.has_errors

    def test_severed_wire_tail_is_ql001(self):
        dag = compiled_dag()
        node, wire, _ = node_with_wire_successor(dag)
        node._wnext[wire] = None  # chain ends early, recorded back disagrees
        report = structural_linter().lint(dag)
        assert "QL001" in report.codes()

    def test_removed_flag_on_reachable_node_is_ql002(self):
        dag = compiled_dag()
        dag.head._in_dag = False
        report = structural_linter().lint(dag)
        assert report.by_code("QL002"), report.to_table()
        assert "marked as removed" in report.by_code("QL002")[0].message

    def test_duplicate_qubit_args_is_ql003(self):
        dag = compiled_dag()
        for node in dag:
            if len(node.qubits) == 2:
                qubit = node.qubits[0]
                object.__setattr__(node.instruction, "qubits", (qubit, qubit))
                break
        report = structural_linter().lint(dag)
        assert "QL003" in report.codes()
        assert report.has_errors

    def test_out_of_register_qubit_is_ql004(self):
        dag = compiled_dag()
        for node in dag:
            if len(node.qubits) == 1:
                object.__setattr__(
                    node.instruction, "qubits", (dag.num_qubits + 3,)
                )
                break
        report = structural_linter().lint(dag)
        assert "QL004" in report.codes()

    def test_backwards_wire_link_is_ql005(self):
        dag = compiled_dag()
        node, wire, nxt = node_with_wire_successor(dag)
        # A symmetric but backwards link: the wire chain now orders the
        # successor before its predecessor while the linear order disagrees.
        nxt._wnext[wire] = node
        node._wprev[wire] = nxt
        report = structural_linter().lint(dag)
        assert "QL005" in report.codes()

    def test_every_structural_code_has_a_registered_rule(self):
        for code in STRUCTURAL_CODES:
            assert code in RULES_BY_CODE
            assert RULES_BY_CODE[code].severity is Severity.ERROR


# ----------------------------------------------------------------------
# Sabotage: hardware legality -> exact QL1xx code
# ----------------------------------------------------------------------
class TestHardwareLegalitySabotage:
    def test_illegal_edge_is_ql101(self):
        device = johannesburg()
        dag = compiled_dag()
        a, b = non_adjacent_pair(device)
        dag.append_instruction(Instruction(Gate("cx", 2), (a, b)))
        report = CircuitLinter(target=device).lint(dag)
        assert report.by_code("QL101"), report.to_table()
        finding = report.by_code("QL101")[0]
        assert finding.severity is Severity.ERROR
        assert finding.qubits == (a, b)

    def test_reversed_direction_is_ql102(self):
        target = Target(line(3), directed_edges=frozenset({(0, 1), (1, 2)}))
        circuit = QuantumCircuit(3)
        circuit.cx(1, 0)  # against the declared native direction
        report = CircuitLinter(target=target).lint(circuit)
        assert report.by_code("QL102")
        # The right way round is silent.
        ok = QuantumCircuit(3)
        ok.cx(0, 1)
        assert not CircuitLinter(target=target).lint(ok).by_code("QL102")

    def test_symmetric_gates_are_exempt_from_ql102(self):
        target = Target(line(3), directed_edges=frozenset({(0, 1), (1, 2)}))
        circuit = QuantumCircuit(3)
        circuit.swap(1, 0).cz(1, 0)
        assert not CircuitLinter(target=target).lint(circuit).by_code("QL102")

    def test_undirected_target_never_fires_ql102(self):
        circuit = QuantumCircuit(3)
        circuit.cx(1, 0)
        report = CircuitLinter(target=Target(line(3))).lint(circuit)
        assert not report.by_code("QL102")

    def test_non_basis_gates_are_ql103_error_2q_warning_1q(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)  # 1q stray: synthesisable, warning
        circuit.append(Gate("crz", 2, (0.5,)), (0, 1))  # 2q stray: error
        report = CircuitLinter(target=Target(line(3))).lint(circuit)
        findings = report.by_code("QL103")
        assert {f.severity for f in findings} == {
            Severity.WARNING,
            Severity.ERROR,
        }
        assert {f.gate for f in findings} == {"h", "crz"}

    def test_qubit_beyond_device_is_ql104(self):
        device = johannesburg()  # 20 qubits
        circuit = QuantumCircuit(25)
        circuit.x(24)
        report = CircuitLinter(target=device).lint(circuit)
        assert report.by_code("QL104")
        assert report.by_code("QL104")[0].qubits == (24,)

    def test_invalid_layouts_are_ql105(self):
        device = line(4)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        linter = CircuitLinter(target=device)
        off_device = linter.lint(circuit, initial_layout={0: 0, 1: 9})
        assert off_device.by_code("QL105")
        collision = linter.lint(circuit, final_layout={0: 1, 1: 1})
        assert collision.by_code("QL105")
        mismatch = linter.lint(
            circuit, initial_layout={0: 0, 1: 1}, final_layout={0: 0, 2: 1}
        )
        assert mismatch.by_code("QL105")
        clean = linter.lint(
            circuit, initial_layout={0: 0, 1: 1}, final_layout={0: 1, 1: 0}
        )
        assert not clean.by_code("QL105")

    def test_wide_unitary_is_ql106(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        report = CircuitLinter(target=line(3)).lint(circuit)
        assert report.by_code("QL106")
        assert report.has_errors

    def test_hardware_rules_are_skipped_without_a_target(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)  # QL106 if a target were given
        report = CircuitLinter().lint(circuit)
        assert not any(code.startswith("QL1") for code in report.codes())


# ----------------------------------------------------------------------
# Resource / usage rules (QL2xx)
# ----------------------------------------------------------------------
class TestResourceRules:
    def test_idle_qubits_are_one_aggregated_ql201_info(self):
        circuit = QuantumCircuit(4)
        circuit.x(0)
        findings = CircuitLinter().lint(circuit).by_code("QL201")
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert findings[0].qubits == (1, 2, 3)

    def test_unmeasured_circuit_is_a_single_ql202(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        findings = CircuitLinter().lint(circuit).by_code("QL202")
        assert len(findings) == 1
        assert "no measurements" in findings[0].message

    def test_dropped_measurement_is_ql202_naming_the_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).measure_all()
        dag = DagCircuit.from_circuit(circuit)
        for node in dag:
            if node.name == "measure" and node.qubits == (1,):
                dag.remove_node(node)
                break
        findings = CircuitLinter().lint(dag).by_code("QL202")
        assert len(findings) == 1
        assert findings[0].qubits == (1,)

    def test_clobbered_clbit_is_ql203(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).measure(0, 0).measure(1, 0)
        findings = CircuitLinter().lint(circuit).by_code("QL203")
        assert len(findings) == 1
        assert "overwrites" in findings[0].message

    def test_gate_after_measure_is_one_ql204_per_measurement(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0, 0).x(0).x(0)
        findings = CircuitLinter().lint(circuit).by_code("QL204")
        assert len(findings) == 1  # one finding per measurement, not per gate

    def test_perturbed_ancilla_tail_is_ql205(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).x(2)  # wire 2 carries no program qubit at the end
        report = CircuitLinter().lint(circuit, final_layout={0: 0, 1: 1})
        findings = report.by_code("QL205")
        assert len(findings) == 1
        assert findings[0].qubits == (2,)
        # Without a final layout the rule cannot tell ancillas apart.
        assert not CircuitLinter().lint(circuit).by_code("QL205")


# ----------------------------------------------------------------------
# Linter API: suppression, report formats, subject handling
# ----------------------------------------------------------------------
class TestLinterApi:
    def _idle(self) -> QuantumCircuit:
        circuit = QuantumCircuit(3)
        circuit.x(0)
        return circuit

    def test_suppression_removes_findings_and_is_recorded(self):
        report = CircuitLinter(suppress=("QL201", "QL202")).lint(self._idle())
        assert "QL201" not in report.codes()
        assert "QL202" not in report.codes()
        assert report.suppressed == ("QL201", "QL202")

    def test_unknown_suppression_code_is_rejected(self):
        with pytest.raises(AnalysisError, match="QL999"):
            CircuitLinter(suppress=("QL999",))

    def test_unsupported_subject_is_rejected(self):
        with pytest.raises(AnalysisError, match="expects"):
            CircuitLinter().lint(42)

    def test_unsupported_layout_object_is_rejected(self):
        with pytest.raises(AnalysisError, match="layout"):
            CircuitLinter().lint(self._idle(), final_layout=object())

    def test_structural_linter_runs_only_the_ql00x_rules(self):
        linter = structural_linter()
        assert tuple(rule.code for rule in linter.rules) == STRUCTURAL_CODES

    def test_compilation_result_carries_its_own_context(self):
        result = transpile(
            get_benchmark("cnx_inplace-4"), johannesburg(), method="trios",
            seed=11,
        )
        report = result.lint()
        assert not report.has_errors, report.to_table()
        assert "trios" in report.subject
        # Per-rule suppression passes straight through.
        suppressed = result.lint(suppress=("QL201", "QL202"))
        assert not suppressed.codes()

    def test_bare_coupling_map_is_accepted_as_target(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        assert lint_circuit(circuit, target=line(3)).by_code("QL106")

    def test_report_rendering(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        report = CircuitLinter(target=line(3)).lint(circuit, name="demo")
        assert report.has_errors and len(report) > 0
        # Errors sort ahead of warnings and info.
        severities = [d.severity.rank for d in report.sorted()]
        assert severities == sorted(severities, reverse=True)
        table = report.to_table()
        assert "QL106" in table and "severity" in table
        payload = report.to_json()
        assert payload["subject"] == "demo"
        assert any(d["code"] == "QL106" for d in payload["diagnostics"])
        assert "error" in report.summary()
        anchored = report.by_code("QL106")[0]
        assert "QL106" in str(anchored) and "node" in str(anchored)

    def test_rule_registry_is_consistent(self):
        assert len({rule.code for rule in ALL_RULES}) == len(ALL_RULES)
        for code, rule in RULES_BY_CODE.items():
            assert rule.code == code
            assert rule.description


# ----------------------------------------------------------------------
# Pass contracts: violations are attributed to the offending pass
# ----------------------------------------------------------------------
class _NoOpPass(TransformationPass):
    invalidates = ()

    def run_dag(self, dag, properties):
        return dag


class _EstablishThing(_NoOpPass):
    establishes = ("thing",)


class _InvalidateThing(_NoOpPass):
    invalidates = ("thing",)


class _RequireThing(_NoOpPass):
    requires = ("thing",)


class _GrowingPass(TransformationPass):
    """Claims gate_count_nonincreasing but appends a gate anyway."""

    checks = ("gate_count_nonincreasing",)

    def run_dag(self, dag, properties):
        dag.append_instruction(Instruction(Gate("x", 1), (0,)))
        return dag


class _AppendIllegalCx(TransformationPass):
    """Silently un-routes the circuit after the router established 'routed'."""

    def run_dag(self, dag, properties):
        dag.append_instruction(Instruction(Gate("cx", 2), (0, 4)))
        return dag


class _CorruptLinkage(TransformationPass):
    """Marks a reachable node as removed without unlinking it."""

    def run_dag(self, dag, properties):
        dag.head._in_dag = False
        return dag


class TestPassContracts:
    def _toffoli_program(self) -> QuantumCircuit:
        circuit = QuantumCircuit(3)
        circuit.h(0).ccx(0, 1, 2)
        return circuit

    def test_requires_violation_names_both_passes(self):
        device = fully_connected(6)
        manager = PassManager(
            [ToffoliDecomposePass(), MappingAwareToffoliDecomposePass(device)],
            validate="contracts",
        )
        properties = PropertySet()
        with pytest.raises(ContractViolationError, match="routed_toffoli"):
            manager.run(self._toffoli_program(), properties)
        record = properties["contract_violation"]
        assert record["pass"] == "MappingAwareToffoliDecomposePass"
        assert record["kind"] == "requires"
        assert "ToffoliDecomposePass" in record["detail"]

    def test_unknown_property_does_not_violate_requires(self):
        # Partial pipelines start with every property unknown, not absent.
        device = fully_connected(6)
        manager = PassManager(
            [MappingAwareToffoliDecomposePass(device)], validate="contracts"
        )
        out, _ = manager.run(self._toffoli_program())
        assert out.count_ops().get("ccx", 0) == 0

    def test_reestablished_property_satisfies_requires(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        for passes, ok in (
            ([_InvalidateThing(), _RequireThing()], False),
            ([_InvalidateThing(), _EstablishThing(), _RequireThing()], True),
            ([_RequireThing()], True),
        ):
            manager = PassManager(passes, validate="contracts")
            if ok:
                manager.run(circuit)
            else:
                with pytest.raises(ContractViolationError):
                    manager.run(circuit)

    def test_failed_check_is_attributed(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        properties = PropertySet()
        manager = PassManager([_GrowingPass()], validate="contracts")
        with pytest.raises(ContractViolationError, match="grew the circuit"):
            manager.run(circuit, properties)
        record = properties["contract_violation"]
        assert record["pass"] == "_GrowingPass"
        assert record["kind"] == "check"

    def test_full_mode_recheck_catches_unrouting(self):
        device = line(5)
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        properties = PropertySet()
        properties["coupling_map"] = device
        manager = PassManager(
            [GreedySwapRouter(device), _AppendIllegalCx()], validate="full"
        )
        with pytest.raises(ContractViolationError, match="routed"):
            manager.run(circuit, properties)
        record = properties["contract_violation"]
        assert record["pass"] == "_AppendIllegalCx"
        assert record["kind"] == "invariant"
        assert record["invariant"] == "routed"

    def test_full_mode_lints_structure_after_every_pass(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        properties = PropertySet()
        manager = PassManager([_CorruptLinkage()], validate="full")
        with pytest.raises(ContractViolationError, match="corrupted the IR"):
            manager.run(circuit, properties)
        record = properties["contract_violation"]
        assert record["kind"] == "structure"
        assert record["invariant"] == "QL002"

    def test_contracts_mode_does_not_recheck_the_dag(self):
        # The cheaper mode trusts declarations; only "full" catches this.
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        PassManager([_CorruptLinkage()], validate="contracts").run(circuit)

    def test_off_mode_runs_no_validation(self):
        device = fully_connected(6)
        manager = PassManager(
            [ToffoliDecomposePass(), MappingAwareToffoliDecomposePass(device)],
            validate="off",
        )
        manager.run(self._toffoli_program())  # no ContractViolationError

    def test_validator_state_tracking(self):
        validator = ContractValidator("contracts")
        assert validator.enabled
        dag = DagCircuit.from_circuit(QuantumCircuit(2))
        properties = PropertySet()
        validator.after_pass(_EstablishThing(), dag, properties)
        assert validator.held() == {"thing"}
        validator.after_pass(_InvalidateThing(), dag, properties)
        assert validator.held() == set()

    def test_every_checkable_property_has_a_checker_contract(self):
        for prop, checker in PROPERTY_CHECKERS.items():
            dag = DagCircuit.from_circuit(QuantumCircuit(2))
            # Without device context the checkers must abstain, not crash.
            assert checker(dag, PropertySet()) is None or prop in (
                "decomposed",
                "swaps_expanded",
            )


class TestFixedPointContracts:
    def test_checks_are_the_intersection_of_inner_checks(self):
        loop = FixedPoint(
            [CancelAdjacentInversesPass(), RemoveIdentitiesPass()]
        )
        assert loop.checks == ("gate_count_nonincreasing",)
        mixed = FixedPoint([CancelAdjacentInversesPass(), DecomposeSwapsPass()])
        assert mixed.checks == ()

    def test_inner_requires_leak_out_unless_satisfied_earlier(self):
        device = fully_connected(6)
        loop = FixedPoint([MappingAwareToffoliDecomposePass(device)])
        assert "routed_toffoli" in loop.requires
        satisfied = FixedPoint([_EstablishThing(), _RequireThing()])
        assert satisfied.requires == ()
        unsatisfied = FixedPoint([_RequireThing(), _EstablishThing()])
        assert "thing" in unsatisfied.requires

    def test_reestablished_properties_are_not_reported_invalidated(self):
        loop = FixedPoint([_InvalidateThing(), _EstablishThing()])
        assert "thing" in loop.establishes
        assert "thing" not in loop.invalidates
        gone = FixedPoint([_EstablishThing(), _InvalidateThing()])
        assert "thing" in gone.invalidates
        assert "thing" not in gone.establishes


# ----------------------------------------------------------------------
# Validation-mode resolution and the transpile() surface
# ----------------------------------------------------------------------
class TestValidationModes:
    def test_resolution_table(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert resolve_validation_mode(None) == "off"
        assert resolve_validation_mode(True) == "contracts"
        assert resolve_validation_mode(False) == "off"
        assert resolve_validation_mode("none") == "off"
        assert resolve_validation_mode("FULL") == "full"
        assert resolve_validation_mode("contracts") == "contracts"

    def test_env_var_fills_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "contracts")
        assert resolve_validation_mode(None) == "contracts"
        assert PassManager().validate == "contracts"
        # An explicit argument wins over the environment.
        assert PassManager(validate="off").validate == "off"

    def test_invalid_modes_are_rejected(self, monkeypatch):
        with pytest.raises(AnalysisError, match="banana"):
            resolve_validation_mode("banana")
        with pytest.raises(AnalysisError):
            resolve_validation_mode(3)
        monkeypatch.setenv("REPRO_VALIDATE", "banana")
        with pytest.raises(AnalysisError):
            PassManager()

    def test_suite_runs_with_full_validation(self):
        # conftest exports REPRO_VALIDATE=full: every transpile() in the
        # suite is contract-checked, including this one.
        assert PassManager().validate == "full"

    def test_transpile_validate_argument(self):
        program = QuantumCircuit(3)
        program.h(0).ccx(0, 1, 2)
        device = johannesburg()
        for validate in (False, True, "contracts", "full"):
            result = transpile(
                program, device, method="trios", seed=3, validate=validate
            )
            assert not result.lint().has_errors
        with pytest.raises(AnalysisError, match="banana"):
            transpile(program, device, seed=3, validate="banana")


# ----------------------------------------------------------------------
# Clean outputs: everything transpile() emits lints error-free
# ----------------------------------------------------------------------
@st.composite
def lintable_programs(draw, min_qubits=3, max_qubits=5, max_gates=10):
    num_qubits = draw(st.integers(min_value=min_qubits, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, "lintprog")
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        kind = draw(st.sampled_from(["1q", "2q", "2q", "rot", "ccx"]))
        qubits = draw(
            st.lists(st.integers(0, num_qubits - 1), min_size=3, max_size=3,
                     unique=True)
        )
        if kind == "1q":
            getattr(circuit, draw(st.sampled_from(("h", "x", "s", "t"))))(qubits[0])
        elif kind == "2q":
            circuit.cx(qubits[0], qubits[1])
        elif kind == "rot":
            circuit.rz(draw(st.floats(-3, 3, allow_nan=False)), qubits[0])
        else:
            circuit.ccx(qubits[0], qubits[1], qubits[2])
    return circuit


class TestCompiledOutputLintsClean:
    @given(circuit=lintable_programs())
    @settings(max_examples=8, deadline=None)
    def test_every_level_and_pipeline_lints_error_free(self, circuit):
        device = johannesburg()
        for method in ("baseline", "trios"):
            for level in (0, 1, 2):
                result = transpile(
                    circuit, device, method=method, seed=7,
                    optimization_level=level,
                )
                report = result.lint()
                assert not report.has_errors, (
                    f"{method} level {level}:\n{report.to_table()}"
                )

    @pytest.mark.parametrize("method", ["baseline", "trios"])
    def test_level3_output_lints_error_free(self, method):
        program = QuantumCircuit(4)
        program.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3)
        result = transpile(
            program, johannesburg(), method=method, seed=5,
            optimization_level=3, seed_trials=2,
        )
        assert not result.lint().has_errors

    @pytest.mark.parametrize(
        "bench_name, method",
        [("grovers-9", "trios"), ("qft_adder-16", "baseline")],
    )
    def test_representative_fig9_10_cells_lint_error_free(
        self, bench_name, method
    ):
        # The full 88-cell sweep is the CI lint gate (`repro lint --fig9-10`);
        # these two cells keep the property pinned in the unit suite.
        result = transpile(
            get_benchmark(bench_name), johannesburg(), method=method, seed=11
        )
        assert not result.lint().has_errors


# ----------------------------------------------------------------------
# The `repro lint` CLI subcommand
# ----------------------------------------------------------------------
class TestLintCli:
    def test_nothing_to_lint_exits_2(self, capsys):
        from repro.experiments.cli import main

        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_compiled_benchmark_lints_clean(self, capsys):
        from repro.experiments.cli import main

        assert main(["lint", "--benchmark", "cnx_inplace-4"]) == 0
        out = capsys.readouterr().out
        assert "[lint]" in out and "cnx_inplace-4" in out

    def test_json_output_is_parseable(self, capsys):
        from repro.experiments.cli import main

        assert main(
            ["lint", "--benchmark", "cnx_inplace-4", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subject"].startswith("cnx_inplace-4")
        assert "diagnostics" in payload

    def test_illegal_qasm_file_fails_the_gate(self, tmp_path, capsys):
        from repro.experiments.cli import main

        circuit = QuantumCircuit(3)
        circuit.h(0).ccx(0, 1, 2)  # a 3q unitary can never run on hardware
        path = tmp_path / "logical.qasm"
        path.write_text(to_qasm(circuit))
        assert main(["lint", str(path)]) == 1
        assert "QL106" in capsys.readouterr().out
        # Without a device target the hardware rules do not apply.
        assert main(["lint", str(path), "--no-target"]) == 0

    def test_suppression_flag_reaches_the_linter(self, tmp_path, capsys):
        from repro.experiments.cli import main

        circuit = QuantumCircuit(3)
        circuit.h(0)
        path = tmp_path / "idle.qasm"
        path.write_text(to_qasm(circuit))
        assert main(
            ["lint", str(path), "--no-target", "--suppress", "QL201", "QL202"]
        ) == 0
        assert "QL201" not in capsys.readouterr().out
