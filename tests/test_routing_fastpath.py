"""Tests for the cached tied-path routing fast path (vs the frozen legacy picker).

The legacy reference (``benchmarks/_legacy_routing.py``) enumerates every tied
shortest path with networkx; the fast path samples from a cached predecessor
DAG.  These tests pin down the equivalence contract:

* deterministic (non-stochastic) routing is byte-identical to the legacy
  picker on every paper topology,
* the same seed reproduces the same compiled circuit for both pipelines,
* the sampled tied path is uniform over the enumerated tied-path set
  (chi-square), and
* legacy and new stochastic routing agree on the Figure 9/10 CNOT-reduction
  geomeans (different RNG streams, same distribution).
"""

import importlib.util
import random
from pathlib import Path

import networkx as nx
import pytest

from repro.bench_circuits import get_benchmark
from repro.compiler import compile_baseline, compile_trios
from repro.experiments import run_benchmark_experiment
from repro.experiments.benchmarks import clear_compile_cache
from repro.hardware import clusters, grid, johannesburg, johannesburg_aug19_2020, line

_LEGACY_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "_legacy_routing.py"
_spec = importlib.util.spec_from_file_location("_legacy_routing", _LEGACY_PATH)
_legacy = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_legacy)

TOPOLOGIES = {
    "johannesburg": johannesburg,
    "grid": grid,
    "clusters": clusters,
    "line": line,
}


def _signature(result):
    """Byte-comparable form of a compiled circuit."""
    return [
        (inst.name, inst.qubits, inst.gate.params, inst.clbits)
        for inst in result.circuit.instructions
    ]


class TestDeterministicByteIdentity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("name", ["cnx_dirty-11", "grovers-9"])
    def test_both_pipelines_match_legacy(self, topology, name):
        coupling_map = TOPOLOGIES[topology]()
        circuit = get_benchmark(name)
        kwargs = dict(routing="greedy", seed=None)
        new_baseline = compile_baseline(circuit, coupling_map, **kwargs)
        new_trios = compile_trios(circuit, coupling_map, **kwargs)
        with _legacy.legacy_routers():
            old_baseline = compile_baseline(circuit, coupling_map, **kwargs)
            old_trios = compile_trios(circuit, coupling_map, **kwargs)
        assert _signature(new_baseline) == _signature(old_baseline)
        assert _signature(new_trios) == _signature(old_trios)

    def test_noise_aware_routing_matches_legacy(self):
        coupling_map = johannesburg()
        calibration = johannesburg_aug19_2020().with_edge_errors(
            {(0, 1): 0.09, (5, 6): 0.001, (10, 11): 0.03}
        )
        circuit = get_benchmark("cnx_dirty-11")
        kwargs = dict(routing="greedy", seed=None, calibration=calibration,
                      noise_aware=True)
        new = compile_baseline(circuit, coupling_map, **kwargs)
        with _legacy.legacy_routers():
            old = compile_baseline(circuit, coupling_map, **kwargs)
        assert _signature(new) == _signature(old)


class TestSeedDeterminism:
    @pytest.mark.parametrize("compiler", [compile_baseline, compile_trios])
    def test_same_seed_same_circuit(self, compiler):
        coupling_map = grid()
        circuit = get_benchmark("cnx_dirty-11")
        first = compiler(circuit, coupling_map, seed=17)
        second = compiler(circuit, coupling_map, seed=17)
        assert _signature(first) == _signature(second)
        assert first.two_qubit_gate_count == second.two_qubit_gate_count


class TestTiedPathSampling:
    def test_tied_path_count_matches_enumeration(self):
        coupling_map = grid(4, 4)
        for a, b in [(0, 15), (0, 7), (1, 14)]:
            enumerated = len(list(nx.all_shortest_paths(coupling_map.graph, a, b)))
            assert coupling_map.tied_path_count(a, b) == enumerated

    def test_weighted_tied_path_count_matches_enumeration(self):
        coupling_map = johannesburg()
        weight = {edge: 0.25 for edge in coupling_map.edges}

        def edge_weight(u, v, _attrs):
            return weight[(min(u, v), max(u, v))]

        for a, b in [(0, 12), (3, 17), (0, 19)]:
            enumerated = len(
                list(nx.all_shortest_paths(coupling_map.graph, a, b, weight=edge_weight))
            )
            assert coupling_map.tied_path_count(a, b, weight=weight) == enumerated

    def test_sampled_path_is_uniform_over_ties(self):
        # 4x4 grid corner to corner: C(6, 3) = 20 tied shortest paths.  With
        # 4000 samples the expected count per path is 200; the chi-square
        # statistic over 19 degrees of freedom stays below the p=0.001
        # critical value (43.82) when sampling is uniform.  Seeded, so the
        # statistic is reproducible.
        coupling_map = grid(4, 4)
        assert coupling_map.tied_path_count(0, 15) == 20
        rng = random.Random(7)
        samples = 4000
        counts = {}
        for _ in range(samples):
            path = tuple(coupling_map.sample_shortest_path(0, 15, rng))
            assert len(path) == 7
            counts[path] = counts.get(path, 0) + 1
        assert len(counts) == 20, "every tied path should eventually be sampled"
        expected = samples / 20
        chi_square = sum((n - expected) ** 2 / expected for n in counts.values())
        assert chi_square < 43.82, f"tied-path sampling is not uniform ({chi_square=:.1f})"

    def test_sampled_paths_are_valid_shortest_paths(self):
        coupling_map = johannesburg()
        rng = random.Random(3)
        for a, b in [(0, 19), (2, 15), (4, 10)]:
            for _ in range(25):
                path = coupling_map.sample_shortest_path(a, b, rng)
                assert path[0] == a and path[-1] == b
                assert len(path) == coupling_map.distance(a, b) + 1
                for u, v in zip(path, path[1:]):
                    assert coupling_map.are_adjacent(u, v)

    def test_avoid_nodes_are_respected(self):
        coupling_map = grid(4, 4)
        rng = random.Random(11)
        avoid = (5, 6)
        for _ in range(50):
            path = coupling_map.sample_shortest_path(0, 15, rng, avoid=avoid)
            assert not set(avoid) & set(path)
        deterministic = coupling_map.shortest_path(0, 15, avoid=avoid)
        assert not set(avoid) & set(deterministic)


class TestStochasticSweepEquivalence:
    def test_legacy_vs_new_cnot_geomeans_agree(self):
        # The Figure 9/10 metric: geomean CNOT reduction over the
        # Toffoli-containing benchmarks.  The fast path draws from a
        # different RNG stream than the legacy enumeration, so individual
        # circuits differ, but the distribution over tied paths is the same —
        # the per-topology geomeans must agree closely.
        names = ["cnx_dirty-11", "grovers-9", "incrementer_borrowedbit-5"]
        topologies = {"ibmq-johannesburg": johannesburg, "full-grid-5x4": grid}
        clear_compile_cache()
        new = run_benchmark_experiment(topologies=topologies, benchmarks=names, seed=11)
        clear_compile_cache()
        with _legacy.legacy_routers():
            old = run_benchmark_experiment(topologies=topologies, benchmarks=names, seed=11)
        clear_compile_cache()
        for label in topologies:
            new_geomean = new.geomean_cnot_reduction(label)
            old_geomean = old.geomean_cnot_reduction(label)
            assert new_geomean == pytest.approx(old_geomean, abs=0.06), label


class TestParallelSweep:
    def test_parallel_sweep_matches_serial(self):
        names = ["cnx_dirty-11", "bv-20"]
        serial = run_benchmark_experiment(benchmarks=names, seed=11, jobs=1)
        parallel = run_benchmark_experiment(benchmarks=names, seed=11, jobs=2)
        assert serial.topologies() == parallel.topologies()
        for topology in serial.topologies():
            assert serial.comparisons[topology] == parallel.comparisons[topology]
