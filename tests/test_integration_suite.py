"""Integration tests: the full benchmark suite through both compilers.

These exercise the complete stack — benchmark generators, both pipelines, the
connectivity checker and the noisy samplers — on the actual Table 1 workloads,
and verify end-to-end program semantics (Grover still finds its marked item,
Bernstein–Vazirani still recovers its secret) after compilation.
"""

import pytest

from repro.bench_circuits import (
    PAPER_BENCHMARKS,
    TOFFOLI_FREE_BENCHMARKS,
    bernstein_vazirani,
    get_benchmark,
    grovers,
)
from repro.compiler import check_connectivity, compile_baseline, compile_trios
from repro.hardware import grid, johannesburg, near_term_calibration
from repro.sim import GateFailureSampler

DEVICE = johannesburg()
CALIBRATION = near_term_calibration()
#: A noiseless device model, for checking semantics of compiled circuits.
PERFECT = near_term_calibration().improved(1e12)


class TestFullSuiteCompiles:
    @pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
    def test_trios_compiles_every_benchmark(self, name):
        circuit = get_benchmark(name)
        result = compile_trios(circuit, DEVICE, seed=1)
        assert check_connectivity(result.circuit, DEVICE) == []
        counts = result.circuit.count_ops()
        assert counts.get("ccx", 0) == 0 and counts.get("ccz", 0) == 0
        assert counts.get("swap", 0) == 0
        assert 0.0 < result.success_probability(CALIBRATION) <= 1.0

    @pytest.mark.parametrize("name", sorted(PAPER_BENCHMARKS))
    def test_baseline_compiles_every_benchmark(self, name):
        circuit = get_benchmark(name)
        result = compile_baseline(circuit, DEVICE, seed=1)
        assert check_connectivity(result.circuit, DEVICE) == []
        assert result.circuit.count_ops().get("ccx", 0) == 0

    @pytest.mark.parametrize(
        "name", ["cnx_dirty-11", "cnx_halfborrowed-19", "cnx_logancilla-19", "grovers-9"]
    )
    def test_trios_reduces_cnots_on_cnx_style_benchmarks(self, name):
        circuit = get_benchmark(name)
        baseline = compile_baseline(circuit, DEVICE, seed=1)
        trios = compile_trios(circuit, DEVICE, seed=1)
        assert trios.two_qubit_gate_count < baseline.two_qubit_gate_count

    @pytest.mark.parametrize("name", TOFFOLI_FREE_BENCHMARKS)
    def test_toffoli_free_benchmarks_identical_under_both_pipelines(self, name):
        circuit = get_benchmark(name)
        baseline = compile_baseline(circuit, DEVICE, seed=4)
        trios = compile_trios(circuit, DEVICE, seed=4)
        assert baseline.circuit == trios.circuit


class TestCompiledSemantics:
    def test_compiled_grover_still_finds_marked_item(self):
        program = grovers(4)
        result = compile_trios(program, grid(), seed=2)
        sampler = GateFailureSampler(PERFECT, seed=0, include_readout_error=False)
        measured = result.physical_qubits_of(list(range(4)))
        counts = sampler.run(result.circuit, shots=300, measured_qubits=measured)
        assert counts.success_rate("1111") > 0.9

    def test_compiled_bv_recovers_secret(self):
        secret = "110101"
        program = bernstein_vazirani(7, secret=secret)
        result = compile_trios(program, DEVICE, seed=2)
        sampler = GateFailureSampler(PERFECT, seed=0, include_readout_error=False)
        measured = result.physical_qubits_of(list(range(6)))
        counts = sampler.run(result.circuit, shots=100, measured_qubits=measured)
        assert counts.success_rate(secret) > 0.99

    def test_compiled_toffoli_truth_table_on_hardware_wires(self):
        from repro.circuits import QuantumCircuit

        program = QuantumCircuit(3, "and_gate")
        program.x(0)
        program.x(1)
        program.ccx(0, 1, 2)
        result = compile_trios(program, DEVICE, layout={0: 0, 1: 4, 2: 15})
        sampler = GateFailureSampler(PERFECT, seed=0, include_readout_error=False)
        measured = result.physical_qubits_of([0, 1, 2])
        counts = sampler.run(result.circuit, shots=100, measured_qubits=measured)
        assert counts.success_rate("111") > 0.99
