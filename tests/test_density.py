"""Tests for the exact density-matrix backend (``repro.sim.density``).

Three pillars:

1. **Noiseless exactness** — with no calibration the density evolution must
   reproduce the statevector distribution bit for bit (hypothesis over random
   circuits).
2. **Noise semantics** — closed-form single-gate/readout/decoherence cases,
   and the headline acceptance check: on the Figure 6-8 Toffoli workloads the
   trajectory sampler's empirical distribution must agree with the exact one
   within 3σ of its own shot noise (they model identical physics).
3. **Backend plumbing** — registry, exact experiment modes, multiprocess
   pickling, and deterministic (variance-free) exact sweeps.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.exceptions import ReproError, SimulationError
from repro.experiments.benchmarks import run_benchmark_experiment
from repro.experiments.toffoli import (
    CONFIGURATIONS,
    compile_configuration,
    run_toffoli_experiment,
)
from repro.hardware import johannesburg
from repro.sim import (
    BACKEND_NAMES,
    DensityMatrixSimulator,
    PauliTrajectorySampler,
    StatevectorSimulator,
    get_backend,
    supports_exact_probabilities,
)
from repro.sim.estimator import circuit_duration

#: Small Figure 6-8 triplets whose four compiled configurations stay within
#: the dense density-matrix limit (verified sizes 3-6 active qubits).
SMALL_TRIPLETS = [(0, 1, 2), (0, 5, 6), (2, 6, 10)]


def toffoli_workload() -> QuantumCircuit:
    """A decomposed |110⟩-input Toffoli plus a spectator CNOT (4 qubits)."""
    circuit = QuantumCircuit(4)
    circuit.x(0).x(1)
    circuit.h(2).cx(1, 2).tdg(2).cx(0, 2).t(2).cx(1, 2).tdg(2).cx(0, 2)
    circuit.t(1).t(2).h(2).cx(0, 1).t(0).tdg(1).cx(0, 1)
    circuit.cx(2, 3)
    return circuit


# ----------------------------------------------------------------------
# 1. Noiseless exactness
# ----------------------------------------------------------------------
class TestNoiselessEquality:
    def test_matches_statevector_on_fixed_circuits(self):
        for build in (toffoli_workload, self._ghz, self._parametric):
            circuit = build()
            expected = StatevectorSimulator().run_probabilities(circuit)
            actual = DensityMatrixSimulator().run_probabilities(circuit)
            assert set(actual) == set(expected)
            for key, probability in expected.items():
                assert actual[key] == pytest.approx(probability, abs=1e-12)

    @staticmethod
    def _ghz() -> QuantumCircuit:
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 1).cx(1, 2).cx(2, 3)
        return circuit

    @staticmethod
    def _parametric() -> QuantumCircuit:
        circuit = QuantumCircuit(2)
        circuit.rx(0.7, 0).rz(1.1, 1).cx(0, 1).u3(0.3, 0.9, 1.7, 0)
        return circuit

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matches_statevector_on_random_circuits(self, data):
        gates_1q = ["h", "x", "t", "s", "sdg"]
        num_qubits = data.draw(st.integers(2, 4))
        circuit = QuantumCircuit(num_qubits)
        for _ in range(data.draw(st.integers(1, 12))):
            if data.draw(st.booleans()):
                gate = data.draw(st.sampled_from(gates_1q))
                getattr(circuit, gate)(data.draw(st.integers(0, num_qubits - 1)))
            else:
                control = data.draw(st.integers(0, num_qubits - 1))
                target = data.draw(
                    st.integers(0, num_qubits - 1).filter(lambda q: q != control)
                )
                circuit.cx(control, target)
        expected = StatevectorSimulator().run_probabilities(circuit)
        actual = DensityMatrixSimulator().run_probabilities(circuit)
        for key in set(expected) | set(actual):
            assert actual.get(key, 0.0) == pytest.approx(
                expected.get(key, 0.0), abs=1e-9
            )

    def test_evolve_returns_the_pure_density_matrix(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        rho = DensityMatrixSimulator().evolve(circuit)
        state = StatevectorSimulator().run(circuit)
        assert np.allclose(rho, np.outer(state, state.conj()))
        assert np.trace(rho).real == pytest.approx(1.0)


# ----------------------------------------------------------------------
# 2. Noise semantics
# ----------------------------------------------------------------------
class TestNoiseSemantics:
    def test_single_gate_depolarizing_closed_form(self, hardware_calibration):
        """After X with error p, P(0) = 2p/3 (X/Y flip back, Z does not)."""
        circuit = QuantumCircuit(1)
        circuit.x(0)
        backend = DensityMatrixSimulator(
            hardware_calibration,
            include_decoherence=False,
            include_readout_error=False,
        )
        p = hardware_calibration.one_qubit_gate_error
        probs = backend.run_probabilities(circuit)
        assert probs["0"] == pytest.approx(2 * p / 3)
        assert probs["1"] == pytest.approx(1 - 2 * p / 3)

    def test_readout_only_closed_form(self, hardware_calibration):
        quiet = replace(
            hardware_calibration,
            t1=1e9, t2=1e9,
            one_qubit_gate_error=0.0, two_qubit_gate_error=0.0,
            readout_error=0.08,
        )
        circuit = QuantumCircuit(2)
        circuit.x(0).x(1)
        probs = DensityMatrixSimulator(quiet).run_probabilities(circuit)
        r = 0.08
        assert probs["11"] == pytest.approx((1 - r) ** 2)
        assert probs["00"] == pytest.approx(r**2)
        assert probs["01"] == pytest.approx(r * (1 - r))

    def test_global_decoherence_mixes_with_uniform(self, hardware_calibration):
        quiet = replace(
            hardware_calibration,
            one_qubit_gate_error=0.0, two_qubit_gate_error=0.0, readout_error=0.0,
        )
        circuit = QuantumCircuit(2)
        circuit.x(0).x(1)
        duration = circuit_duration(circuit, quiet)
        failure = quiet.decoherence_failure_probability(duration)
        probs = DensityMatrixSimulator(quiet).run_probabilities(circuit)
        assert probs["11"] == pytest.approx((1 - failure) + failure / 4)
        assert probs["00"] == pytest.approx(failure / 4)

    def test_damping_mode_is_a_distribution_and_decays(self, hardware_calibration):
        circuit = toffoli_workload()
        backend = DensityMatrixSimulator(hardware_calibration, decoherence="damping")
        probs = backend.run_probabilities(circuit)
        assert sum(probs.values()) == pytest.approx(1.0)
        noiseless = DensityMatrixSimulator().run_probabilities(circuit)
        best = max(noiseless, key=noiseless.get)
        assert probs[best] < noiseless[best]

    def test_unknown_decoherence_mode_rejected(self, hardware_calibration):
        with pytest.raises(SimulationError):
            DensityMatrixSimulator(hardware_calibration, decoherence="bogus")

    def test_exact_distribution_agrees_with_trajectory_on_fig6_workloads(
        self, hardware_calibration
    ):
        """3σ TVD agreement on the compiled Figure 6-8 Toffoli workloads.

        The trajectory sampler draws from exactly the distribution the density
        backend computes, so the empirical TVD must stay within 3x its own
        expected shot-noise scale, and the |111⟩ success probability within
        3σ of a Bernoulli estimate.
        """
        coupling_map = johannesburg()
        shots = 4096
        checked = 0
        for triplet in SMALL_TRIPLETS:
            placement = {0: triplet[0], 1: triplet[1], 2: triplet[2]}
            for configuration in CONFIGURATIONS:
                compiled = compile_configuration(
                    configuration, coupling_map, placement, seed=7
                )
                circuit = compiled.circuit.without(["measure"])
                measured = compiled.physical_qubits_of([0, 1, 2])
                exact = DensityMatrixSimulator(hardware_calibration).run_probabilities(
                    circuit, measured_qubits=measured
                )
                sampled = PauliTrajectorySampler(
                    hardware_calibration, seed=13
                ).run_counts(circuit, shots=shots, measured_qubits=measured)
                # Success probability: 3σ Bernoulli band.
                p = exact.get("111", 0.0)
                sigma = math.sqrt(p * (1 - p) / shots)
                assert abs(sampled.success_rate("111") - p) <= 3 * sigma + 1e-12
                # Whole distribution: 3x the expected multinomial TVD scale.
                keys = set(exact) | set(sampled.counts)
                tvd = 0.5 * sum(
                    abs(exact.get(k, 0.0) - sampled.counts.get(k, 0) / shots)
                    for k in keys
                )
                tvd_scale = 0.5 * sum(
                    math.sqrt(exact.get(k, 0.0) * (1 - exact.get(k, 0.0)) / shots)
                    for k in keys
                )
                assert tvd <= 3 * tvd_scale, (triplet, configuration, tvd, tvd_scale)
                checked += 1
        assert checked == len(SMALL_TRIPLETS) * len(CONFIGURATIONS)


# ----------------------------------------------------------------------
# 3. Backend plumbing
# ----------------------------------------------------------------------
class TestBackendPlumbing:
    def test_registry_and_capabilities(self, hardware_calibration):
        assert "density" in BACKEND_NAMES
        backend = get_backend("density", hardware_calibration, seed=3)
        assert isinstance(backend, DensityMatrixSimulator)
        assert supports_exact_probabilities(backend)
        assert supports_exact_probabilities(get_backend("ideal"))
        assert not supports_exact_probabilities(
            get_backend("trajectory", hardware_calibration)
        )

    def test_density_requires_calibration(self):
        with pytest.raises(SimulationError, match="requires a device calibration"):
            get_backend("density")

    def test_unknown_backend_lists_the_registry(self):
        with pytest.raises(SimulationError) as excinfo:
            get_backend("nonesuch")
        message = str(excinfo.value)
        for name in BACKEND_NAMES:
            assert name in message

    def test_run_counts_multinomial(self, hardware_calibration):
        backend = get_backend("density", hardware_calibration)
        circuit = toffoli_workload()
        result = backend.run_counts(circuit, shots=512, seed=21)
        assert sum(result.counts.values()) == 512
        assert result.measured_qubits == (0, 1, 2, 3)
        again = backend.run_counts(circuit, shots=512, seed=21)
        assert again.counts == result.counts
        with pytest.raises(SimulationError):
            backend.run_counts(circuit, shots=0)

    def test_counts_converge_to_exact_distribution(self, hardware_calibration):
        backend = get_backend("density", hardware_calibration, seed=5)
        circuit = toffoli_workload()
        exact = backend.run_probabilities(circuit)
        shots = 8192
        counts = backend.run_counts(circuit, shots=shots, seed=5).counts
        for key, probability in exact.items():
            sigma = math.sqrt(probability * (1 - probability) / shots)
            assert abs(counts.get(key, 0) / shots - probability) <= 4 * sigma + 1e-9

    def test_max_active_qubits_enforced(self, hardware_calibration):
        backend = DensityMatrixSimulator(hardware_calibration, max_active_qubits=3)
        with pytest.raises(SimulationError, match="active qubits exceeds"):
            backend.run_probabilities(toffoli_workload())

    def test_success_probability_shortcut(self, hardware_calibration):
        backend = DensityMatrixSimulator(hardware_calibration)
        circuit = toffoli_workload()
        probs = backend.run_probabilities(circuit)
        best = max(probs, key=probs.get)
        assert backend.success_probability(circuit, best) == pytest.approx(probs[best])
        assert backend.success_probability(circuit, "0" * 4) == probs.get("0000", 0.0)

    def test_backend_pickles_for_the_jobs_pool(self, hardware_calibration):
        backend = get_backend("density", hardware_calibration, seed=9)
        circuit = toffoli_workload()
        warm = backend.run_probabilities(circuit)  # warm every channel cache
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.run_probabilities(circuit) == warm

    def test_statevector_run_probabilities_reduces_like_run_counts(self):
        wide = QuantumCircuit(10)
        wide.x(7).h(2).cx(2, 5)
        probs = StatevectorSimulator().run_probabilities(wide, measured_qubits=[7, 2, 5])
        assert probs["100"] == pytest.approx(0.5)
        assert probs["111"] == pytest.approx(0.5)


class TestExactExperimentModes:
    def test_exact_toffoli_experiment_has_zero_variance(self, hardware_calibration):
        runs = [
            run_toffoli_experiment(
                calibration=hardware_calibration,
                triplets=SMALL_TRIPLETS[:2],
                shots=8,
                seed=4,
                sampler="density",
                exact=True,
            )
            for _ in range(2)
        ]
        assert runs[0].exact and runs[1].exact
        assert len(runs[0].rows) == 2
        for row_a, row_b in zip(runs[0].rows, runs[1].rows):
            assert row_a.success_rates == row_b.success_rates
            assert all(0.0 <= p <= 1.0 for p in row_a.success_rates.values())

    def test_exact_requires_probability_backend(self, hardware_calibration):
        with pytest.raises(ReproError, match="analytic run_probabilities"):
            run_toffoli_experiment(
                calibration=hardware_calibration,
                triplets=SMALL_TRIPLETS[:1],
                sampler="failure",
                exact=True,
            )

    def test_oversized_triplets_are_skipped_with_a_warning(self, hardware_calibration):
        with pytest.warns(RuntimeWarning, match="skipping triplet"):
            result = run_toffoli_experiment(
                calibration=hardware_calibration,
                triplets=[(0, 4, 15), SMALL_TRIPLETS[0]],
                seed=7,
                sampler="density",
                exact=True,
            )
        assert [row.triplet for row in result.rows] == [SMALL_TRIPLETS[0]]

    def test_exact_with_sampler_backend_fails_before_compiling(self):
        # The guard must fire up front (by name), not per cell in the pool.
        with pytest.raises(ReproError, match="analytic run_probabilities"):
            run_benchmark_experiment(
                topologies={"ibmq-johannesburg": johannesburg},
                benchmarks=["cnx_inplace-4"],
                backend="failure",
                exact=True,
                jobs=2,
            )

    def test_exact_benchmark_sweep_parallel_equals_serial(self):
        kwargs = dict(
            topologies={"ibmq-johannesburg": johannesburg},
            benchmarks=["cnx_inplace-4"],
            seed=11,
            backend="density",
            exact=True,
        )
        serial = run_benchmark_experiment(jobs=1, **kwargs)
        parallel = run_benchmark_experiment(jobs=2, **kwargs)
        row_s = serial.row("ibmq-johannesburg", "cnx_inplace-4")
        row_p = parallel.row("ibmq-johannesburg", "cnx_inplace-4")
        assert row_s.baseline_success == row_p.baseline_success
        assert row_s.trios_success == row_p.trios_success
        assert 0.0 < row_s.baseline_success <= 1.0

    def test_all_triplets_skipped_raises_instead_of_empty_aggregates(
        self, hardware_calibration
    ):
        with pytest.warns(RuntimeWarning, match="skipping triplet"):
            with pytest.raises(ReproError, match="could not simulate any"):
                run_toffoli_experiment(
                    calibration=hardware_calibration,
                    triplets=[(0, 4, 15)],  # activates 8-14 qubits when routed
                    seed=7,
                    sampler="density",
                    exact=True,
                )

    def test_exact_with_analytic_backend_is_rejected(self):
        with pytest.raises(ReproError, match="analytic"):
            run_benchmark_experiment(
                topologies={"ibmq-johannesburg": johannesburg},
                benchmarks=["cnx_inplace-4"],
                backend="analytic",
                exact=True,
            )
