"""The unified transpile() driver: Target handling, levels, and the frozen
byte-identity guarantee that the paper-reproduction numbers survived the
list-IR → DAG-IR refactor."""

import hashlib
import json
import random
from pathlib import Path

import pytest

from tests.conftest import assert_compilation_equivalent

from repro import QuantumCircuit, Target, compile_baseline, compile_trios, transpile
from repro.bench_circuits.suite import PAPER_BENCHMARKS, get_benchmark
from repro.compiler import check_connectivity
from repro.exceptions import TranspilerError
from repro.hardware import johannesburg, johannesburg_aug19_2020, fully_connected
from repro.hardware.library import PAPER_TOPOLOGIES
from repro.passes import (
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    DecomposeToBasisPass,
    MappingAwareToffoliDecomposePass,
    PropertySet,
    RemoveIdentitiesPass,
    ToffoliDecomposePass,
)
from repro.sim import circuits_equivalent

REFERENCE = Path(__file__).parent / "data" / "fig9_10_compiled_sha256.json"


def canonical_bytes(circuit: QuantumCircuit) -> str:
    """Full-precision canonical serialisation (params as float hex)."""
    lines = [f"{circuit.num_qubits}"]
    for inst in circuit.instructions:
        params = ",".join(float(p).hex() for p in inst.gate.params)
        qubits = ",".join(map(str, inst.qubits))
        clbits = ",".join(map(str, inst.clbits))
        lines.append(f"{inst.name}({params}) q{qubits} c{clbits}")
    return "\n".join(lines)


def sha(circuit: QuantumCircuit) -> str:
    return hashlib.sha256(canonical_bytes(circuit).encode()).hexdigest()


class TestByteIdentityWithPreRefactorPipelines:
    """The Figure 9/10 sweep must be byte-identical to the frozen pre-DAG output."""

    def test_full_fig9_10_sweep_matches_frozen_hashes(self):
        frozen = json.loads(REFERENCE.read_text())
        seed = frozen["seed"]
        hashes = frozen["hashes"]
        checked = 0
        for label, builder in PAPER_TOPOLOGIES.items():
            coupling_map = builder()
            for name in PAPER_BENCHMARKS:
                circuit = get_benchmark(name)
                if circuit.num_qubits > coupling_map.num_qubits:
                    continue
                for method in ("baseline", "trios"):
                    result = transpile(circuit, coupling_map, method=method, seed=seed)
                    key = f"{label}|{name}|{method}"
                    assert sha(result.circuit) == hashes[key], (
                        f"compiled output for {key} drifted from the frozen "
                        "pre-refactor pipeline"
                    )
                    checked += 1
        assert checked == len(hashes)

    def test_fixed_point_loop_converges_across_the_sweep(self):
        device = johannesburg()
        for name in ("grovers-9", "qft_adder-16", "cuccaro_adder-20"):
            result = transpile(get_benchmark(name), device, method="trios", seed=11)
            iterations = result.properties["fixed_point_iterations"]
            assert iterations, "optimisation stage did not run the fixed-point loop"
            assert all(i >= 1 for i in iterations)


class TestTranspileApi:
    def _program(self):
        circuit = QuantumCircuit(4, "prog")
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3)
        return circuit

    def test_accepts_target_and_bare_coupling_map(self, johannesburg_map):
        target = Target(johannesburg_map, johannesburg_aug19_2020())
        via_target = transpile(self._program(), target, method="trios", seed=3)
        via_map = transpile(self._program(), johannesburg_map, method="trios", seed=3)
        assert via_target.circuit == via_map.circuit
        assert via_target.target is target
        assert via_map.target.coupling_map is johannesburg_map

    def test_target_calibration_is_default_for_metrics(self, johannesburg_map):
        calibration = johannesburg_aug19_2020()
        result = transpile(
            self._program(),
            Target(johannesburg_map, calibration),
            method="trios",
            seed=3,
        )
        assert result.duration() == result.duration(calibration)
        assert result.success_probability() == pytest.approx(
            result.success_probability(calibration)
        )
        bare = transpile(self._program(), johannesburg_map, method="trios", seed=3)
        with pytest.raises(TranspilerError):
            bare.duration()

    def test_noise_aware_needs_calibrated_target(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, noise_aware=True)
        calibrated = Target(johannesburg_map, johannesburg_aug19_2020())
        result = transpile(
            self._program(), calibrated, noise_aware=True, layout="noise", seed=3
        )
        assert check_connectivity(result.circuit, johannesburg_map) == []

    def test_shims_match_transpile(self, johannesburg_map):
        program = self._program()
        assert (
            compile_baseline(program, johannesburg_map, seed=7).circuit
            == transpile(program, johannesburg_map, method="baseline", seed=7).circuit
        )
        assert (
            compile_trios(program, johannesburg_map, seed=7).circuit
            == transpile(program, johannesburg_map, method="trios", seed=7).circuit
        )

    @pytest.mark.parametrize("method", ["baseline", "trios"])
    def test_optimization_levels(self, johannesburg_map, method):
        program = self._program()
        by_level = {
            level: transpile(
                program, johannesburg_map, method=method, seed=5,
                optimization_level=level,
            )
            for level in (0, 1, 2)
        }
        for result in by_level.values():
            assert check_connectivity(result.circuit, johannesburg_map) == []
            assert_compilation_equivalent(program, result)
        assert len(by_level[1].circuit) <= len(by_level[0].circuit)
        # Level 1 must equal the legacy optimize=True path.
        legacy = transpile(program, johannesburg_map, method=method, seed=5)
        assert by_level[1].circuit == legacy.circuit

    def test_optimize_and_level_are_mutually_exclusive(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            transpile(
                self._program(), johannesburg_map, optimize=True, optimization_level=1
            )

    def test_unknown_method_layout_and_routing_rejected(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, method="magic")
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, layout="psychic")
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, routing="quantum")

    def test_options_the_pipeline_ignores_are_rejected(self, johannesburg_map):
        # An ablation run must not silently fall back to the defaults.
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(),
                johannesburg_map,
                method="baseline",
                second_decomposition="8cnot",
            )
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(),
                johannesburg_map,
                method="baseline",
                overlap_optimization=False,
            )
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(), johannesburg_map, method="trios", toffoli_mode="8cnot"
            )

    def test_pass_timings_are_exposed(self, johannesburg_map):
        result = transpile(self._program(), johannesburg_map, seed=2)
        timings = result.pass_timings
        assert timings, "transpile recorded no pass telemetry"
        stages = {record["stage"] for record in timings}
        assert {"decompose", "layout", "routing", "optimize"} <= stages
        assert all(record["seconds"] >= 0 for record in timings)


def random_test_circuits(count: int = 8, max_qubits: int = 6, gates: int = 12):
    """Seeded random circuits (≤ ``max_qubits`` qubits) for equivalence checks."""
    rng = random.Random(20260730)
    circuits = []
    for index in range(count):
        num_qubits = rng.randint(3, max_qubits)
        circuit = QuantumCircuit(num_qubits, f"rand{index}")
        for _ in range(gates):
            kind = rng.choice(["1q", "1q", "2q", "2q", "3q", "swap"])
            qubits = rng.sample(range(num_qubits), 3)
            if kind == "1q":
                getattr(circuit, rng.choice(["h", "x", "t", "tdg", "s", "z"]))(qubits[0])
            elif kind == "2q":
                circuit.cx(qubits[0], qubits[1])
            elif kind == "swap":
                circuit.swap(qubits[0], qubits[1])
            else:
                circuit.ccx(qubits[0], qubits[1], qubits[2])
        circuits.append(circuit)
    return circuits


class TestPortedPassesPreserveSemantics:
    """Every DAG-ported pass keeps the circuit unitary on randomized circuits."""

    @pytest.mark.parametrize(
        "make_pass",
        [
            DecomposeSwapsPass,
            CancelAdjacentInversesPass,
            Consolidate1qRunsPass,
            RemoveIdentitiesPass,
            DecomposeToBasisPass,
            lambda: DecomposeToBasisPass(keep=("ccx", "ccz")),
            lambda: ToffoliDecomposePass(mode="6cnot"),
            lambda: ToffoliDecomposePass(mode="8cnot"),
        ],
        ids=[
            "decompose_swaps",
            "cancel_inverses",
            "consolidate_1q",
            "remove_identities",
            "unroll",
            "unroll_keep_toffoli",
            "toffoli_6cnot",
            "toffoli_8cnot",
        ],
    )
    def test_pass_preserves_unitary(self, make_pass):
        for circuit in random_test_circuits():
            out = make_pass().run(circuit, PropertySet())
            assert circuits_equivalent(circuit, out), (
                f"{type(make_pass()).__name__} changed the semantics of "
                f"{circuit.name}"
            )

    def test_mapping_aware_toffoli_preserves_unitary(self):
        # On a fully connected device every trio is a triangle, so the pass is
        # applicable without routing.
        device = fully_connected(6)
        decompose = MappingAwareToffoliDecomposePass(device)
        for circuit in random_test_circuits(count=4):
            out = decompose.run(circuit, PropertySet())
            assert out.count_ops().get("ccx", 0) == 0
            assert circuits_equivalent(circuit, out)
