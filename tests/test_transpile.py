"""The unified transpile() driver: Target handling, levels, and the frozen
byte-identity guarantee that the paper-reproduction numbers survived the
list-IR → DAG-IR refactor."""

import hashlib
import json
import random
from pathlib import Path

import pytest

from tests.conftest import assert_compilation_equivalent

from repro import QuantumCircuit, Target, compile_baseline, compile_trios, transpile
from repro.bench_circuits.suite import PAPER_BENCHMARKS, get_benchmark
from repro.compiler import check_connectivity
from repro.exceptions import TranspilerError
from repro.hardware import johannesburg, johannesburg_aug19_2020, fully_connected
from repro.hardware.library import PAPER_TOPOLOGIES
from repro.passes import (
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    DecomposeToBasisPass,
    MappingAwareToffoliDecomposePass,
    PropertySet,
    RemoveIdentitiesPass,
    ToffoliDecomposePass,
)
from repro.sim import circuits_equivalent

REFERENCE = Path(__file__).parent / "data" / "fig9_10_compiled_sha256.json"

# Frozen at the PR that introduced optimization_level=3: levels 0/1/2 are
# untouched by the level-3 machinery (the commutation loop and the seed
# search are gated behind level >= 3), so these hashes — like the level-1
# reference file — must never change unless a PR *intentionally* changes
# the lower levels' output and says so.
LEVEL_0_2_FROZEN = {
    ("ibmq-johannesburg", "grovers-9", "baseline", 0):
        "ac1c8db6ad7a2fe8bb35d765f0b7b9846b879ce523622de6cce4cbbe8e634839",
    ("ibmq-johannesburg", "grovers-9", "baseline", 2):
        "cab4d77bc0c9f9c07169747ce48d82c1515675c4a98e7899fed2708664a42a3d",
    ("ibmq-johannesburg", "grovers-9", "trios", 0):
        "33400260f8d8d0d401a8e85e5778eb99b93f9f6c9bd8c10d988f06816a563fe6",
    ("ibmq-johannesburg", "grovers-9", "trios", 2):
        "c20c0bfc8e2b1a1927b14ba5ca02c96ddd1e5ea8fa3f7ff292ebcc1d12974fb4",
    ("full-grid-5x4", "cnx_dirty-11", "baseline", 0):
        "acc66e4d190e333ed7cf5186e55e78fdc9d302f6b2e25eb7049231b54606bad9",
    ("full-grid-5x4", "cnx_dirty-11", "baseline", 2):
        "d9d38c5a9d517dbdd6e6ddff0efbbdc175e551a741ed4b7fe2f915c8f01f7ef0",
    ("full-grid-5x4", "cnx_dirty-11", "trios", 0):
        "ecebb31dd81ffdc8d880538130029e86d24bf62cdb3c33d0349ea3c527394dd2",
    ("full-grid-5x4", "cnx_dirty-11", "trios", 2):
        "551011fceb5c119f8e810930958bbad33100d0fd777f5c9917c628c72575618d",
    # Toffoli-free control: baseline and trios compile identically.
    ("clusters-5x4", "qft_adder-16", "baseline", 0):
        "8c6e878edfe12caea852a66b37db6f1f3bca4ae577dd113257431e5a0b7396d8",
    ("clusters-5x4", "qft_adder-16", "baseline", 2):
        "a6f457bd0f211f1ef0d75920570b28d373351462e2a7e08844e3121ff6cde5e2",
    ("clusters-5x4", "qft_adder-16", "trios", 0):
        "8c6e878edfe12caea852a66b37db6f1f3bca4ae577dd113257431e5a0b7396d8",
    ("clusters-5x4", "qft_adder-16", "trios", 2):
        "a6f457bd0f211f1ef0d75920570b28d373351462e2a7e08844e3121ff6cde5e2",
}


def canonical_bytes(circuit: QuantumCircuit) -> str:
    """Full-precision canonical serialisation (params as float hex)."""
    lines = [f"{circuit.num_qubits}"]
    for inst in circuit.instructions:
        params = ",".join(float(p).hex() for p in inst.gate.params)
        qubits = ",".join(map(str, inst.qubits))
        clbits = ",".join(map(str, inst.clbits))
        lines.append(f"{inst.name}({params}) q{qubits} c{clbits}")
    return "\n".join(lines)


def sha(circuit: QuantumCircuit) -> str:
    return hashlib.sha256(canonical_bytes(circuit).encode()).hexdigest()


class TestByteIdentityWithPreRefactorPipelines:
    """The Figure 9/10 sweep must be byte-identical to the frozen pre-DAG output."""

    def test_full_fig9_10_sweep_matches_frozen_hashes(self):
        frozen = json.loads(REFERENCE.read_text())
        seed = frozen["seed"]
        hashes = frozen["hashes"]
        checked = 0
        for label, builder in PAPER_TOPOLOGIES.items():
            coupling_map = builder()
            for name in PAPER_BENCHMARKS:
                circuit = get_benchmark(name)
                if circuit.num_qubits > coupling_map.num_qubits:
                    continue
                for method in ("baseline", "trios"):
                    result = transpile(circuit, coupling_map, method=method, seed=seed)
                    key = f"{label}|{name}|{method}"
                    assert sha(result.circuit) == hashes[key], (
                        f"compiled output for {key} drifted from the frozen "
                        "pre-refactor pipeline. If this PR intentionally "
                        "changes compiled output, say so in the PR and "
                        "regenerate the reference with "
                        "`python benchmarks/freeze_fig9_10_reference.py`; "
                        "otherwise this is a regression in a default-level "
                        "pass."
                    )
                    checked += 1
        assert checked == len(hashes)

    def test_fixed_point_loop_converges_across_the_sweep(self):
        device = johannesburg()
        for name in ("grovers-9", "qft_adder-16", "cuccaro_adder-20"):
            result = transpile(get_benchmark(name), device, method="trios", seed=11)
            iterations = result.properties["fixed_point_iterations"]
            assert iterations, "optimisation stage did not run the fixed-point loop"
            assert all(i >= 1 for i in iterations)

    def test_levels_0_and_2_are_untouched_by_the_level3_machinery(self):
        # Level 3 is additive: the lower optimisation levels' outputs are
        # byte-identical to their pre-level-3 state (frozen above), so the
        # level-1 reference file must NOT be regenerated for this feature.
        for (label, name, method, level), expected in LEVEL_0_2_FROZEN.items():
            coupling_map = PAPER_TOPOLOGIES[label]()
            result = transpile(
                get_benchmark(name), coupling_map, method=method, seed=11,
                optimization_level=level,
            )
            assert sha(result.circuit) == expected, (
                f"level-{level} output for {label}|{name}|{method} drifted; "
                "levels 0-2 must not change when level-3 features evolve. "
                "An intentional change to the lower levels needs these "
                "LEVEL_0_2_FROZEN hashes updated by hand AND the level-1 "
                "reference regenerated with "
                "`python benchmarks/freeze_fig9_10_reference.py`."
            )


class TestTranspileApi:
    def _program(self):
        circuit = QuantumCircuit(4, "prog")
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3)
        return circuit

    def test_accepts_target_and_bare_coupling_map(self, johannesburg_map):
        target = Target(johannesburg_map, johannesburg_aug19_2020())
        via_target = transpile(self._program(), target, method="trios", seed=3)
        via_map = transpile(self._program(), johannesburg_map, method="trios", seed=3)
        assert via_target.circuit == via_map.circuit
        assert via_target.target is target
        assert via_map.target.coupling_map is johannesburg_map

    def test_target_calibration_is_default_for_metrics(self, johannesburg_map):
        calibration = johannesburg_aug19_2020()
        result = transpile(
            self._program(),
            Target(johannesburg_map, calibration),
            method="trios",
            seed=3,
        )
        assert result.duration() == result.duration(calibration)
        assert result.success_probability() == pytest.approx(
            result.success_probability(calibration)
        )
        bare = transpile(self._program(), johannesburg_map, method="trios", seed=3)
        with pytest.raises(TranspilerError):
            bare.duration()

    def test_noise_aware_needs_calibrated_target(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, noise_aware=True)
        calibrated = Target(johannesburg_map, johannesburg_aug19_2020())
        result = transpile(
            self._program(), calibrated, noise_aware=True, layout="noise", seed=3
        )
        assert check_connectivity(result.circuit, johannesburg_map) == []

    def test_shims_match_transpile(self, johannesburg_map):
        program = self._program()
        assert (
            compile_baseline(program, johannesburg_map, seed=7).circuit
            == transpile(program, johannesburg_map, method="baseline", seed=7).circuit
        )
        assert (
            compile_trios(program, johannesburg_map, seed=7).circuit
            == transpile(program, johannesburg_map, method="trios", seed=7).circuit
        )

    @pytest.mark.parametrize("method", ["baseline", "trios"])
    def test_optimization_levels(self, johannesburg_map, method):
        program = self._program()
        by_level = {
            level: transpile(
                program, johannesburg_map, method=method, seed=5,
                optimization_level=level,
            )
            for level in (0, 1, 2)
        }
        for result in by_level.values():
            assert check_connectivity(result.circuit, johannesburg_map) == []
            assert_compilation_equivalent(program, result)
        assert len(by_level[1].circuit) <= len(by_level[0].circuit)
        # Level 1 must equal the legacy optimize=True path.
        legacy = transpile(program, johannesburg_map, method=method, seed=5)
        assert by_level[1].circuit == legacy.circuit

    def test_optimize_and_level_are_mutually_exclusive(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            transpile(
                self._program(), johannesburg_map, optimize=True, optimization_level=1
            )

    def test_unknown_method_layout_and_routing_rejected(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, method="magic")
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, layout="psychic")
        with pytest.raises(TranspilerError):
            transpile(self._program(), johannesburg_map, routing="quantum")

    def test_options_the_pipeline_ignores_are_rejected(self, johannesburg_map):
        # An ablation run must not silently fall back to the defaults.
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(),
                johannesburg_map,
                method="baseline",
                second_decomposition="8cnot",
            )
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(),
                johannesburg_map,
                method="baseline",
                overlap_optimization=False,
            )
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(), johannesburg_map, method="trios", toffoli_mode="8cnot"
            )

    def test_pass_timings_are_exposed(self, johannesburg_map):
        result = transpile(self._program(), johannesburg_map, seed=2)
        timings = result.pass_timings
        assert timings, "transpile recorded no pass telemetry"
        stages = {record["stage"] for record in timings}
        assert {"decompose", "layout", "routing", "optimize"} <= stages
        assert all(record["seconds"] >= 0 for record in timings)


def random_test_circuits(count: int = 8, max_qubits: int = 6, gates: int = 12):
    """Seeded random circuits (≤ ``max_qubits`` qubits) for equivalence checks."""
    rng = random.Random(20260730)
    circuits = []
    for index in range(count):
        num_qubits = rng.randint(3, max_qubits)
        circuit = QuantumCircuit(num_qubits, f"rand{index}")
        for _ in range(gates):
            kind = rng.choice(["1q", "1q", "2q", "2q", "3q", "swap"])
            qubits = rng.sample(range(num_qubits), 3)
            if kind == "1q":
                getattr(circuit, rng.choice(["h", "x", "t", "tdg", "s", "z"]))(qubits[0])
            elif kind == "2q":
                circuit.cx(qubits[0], qubits[1])
            elif kind == "swap":
                circuit.swap(qubits[0], qubits[1])
            else:
                circuit.ccx(qubits[0], qubits[1], qubits[2])
        circuits.append(circuit)
    return circuits


class TestPortedPassesPreserveSemantics:
    """Every DAG-ported pass keeps the circuit unitary on randomized circuits."""

    @pytest.mark.parametrize(
        "make_pass",
        [
            DecomposeSwapsPass,
            CancelAdjacentInversesPass,
            Consolidate1qRunsPass,
            RemoveIdentitiesPass,
            DecomposeToBasisPass,
            lambda: DecomposeToBasisPass(keep=("ccx", "ccz")),
            lambda: ToffoliDecomposePass(mode="6cnot"),
            lambda: ToffoliDecomposePass(mode="8cnot"),
        ],
        ids=[
            "decompose_swaps",
            "cancel_inverses",
            "consolidate_1q",
            "remove_identities",
            "unroll",
            "unroll_keep_toffoli",
            "toffoli_6cnot",
            "toffoli_8cnot",
        ],
    )
    def test_pass_preserves_unitary(self, make_pass):
        for circuit in random_test_circuits():
            out = make_pass().run(circuit, PropertySet())
            assert circuits_equivalent(circuit, out), (
                f"{type(make_pass()).__name__} changed the semantics of "
                f"{circuit.name}"
            )

    def test_mapping_aware_toffoli_preserves_unitary(self):
        # On a fully connected device every trio is a triangle, so the pass is
        # applicable without routing.
        device = fully_connected(6)
        decompose = MappingAwareToffoliDecomposePass(device)
        for circuit in random_test_circuits(count=4):
            out = decompose.run(circuit, PropertySet())
            assert out.count_ops().get("ccx", 0) == 0
            assert circuits_equivalent(circuit, out)


class TestOptimizationLevel3:
    """The commutation-aware level plus its multi-seed layout/routing search."""

    def _program(self):
        circuit = QuantumCircuit(4, "prog")
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3).tdg(2).ccx(0, 1, 2)
        return circuit

    @pytest.mark.parametrize("method", ["baseline", "trios"])
    def test_never_worse_than_level2_and_equivalent(self, johannesburg_map, method):
        program = self._program()
        level2 = transpile(
            program, johannesburg_map, method=method, seed=5, optimization_level=2
        )
        level3 = transpile(
            program, johannesburg_map, method=method, seed=5, optimization_level=3
        )
        assert level3.two_qubit_gate_count <= level2.two_qubit_gate_count
        assert level3.depth <= level2.depth
        level3.assert_equivalent(program)

    def test_seed_search_telemetry(self, johannesburg_map):
        result = transpile(
            self._program(), johannesburg_map, method="baseline", seed=5,
            optimization_level=3, seed_trials=3,
        )
        search = result.seed_search
        assert search is not None
        assert len(search["seeds"]) == 3
        assert search["seeds"][0] == 5  # the caller's seed is the base candidate
        assert search["chosen_seed"] in search["seeds"]
        base = search["candidates"][0]
        assert base["admissible"], "the base-seed candidate is always admissible"
        chosen = search["candidates"][search["chosen_index"]]
        assert chosen["admissible"]
        # The winner never regresses the base candidate on the paper metrics.
        assert chosen["cnots"] <= base["cnots"]
        assert chosen["depth"] <= base["depth"]
        # And the telemetry matches the circuit that was actually returned.
        assert chosen["cnots"] == result.two_qubit_gate_count
        assert chosen["depth"] == result.depth
        # Below level 3 there is no search.
        level1 = transpile(self._program(), johannesburg_map, seed=5)
        assert level1.seed_search is None

    def test_parallel_search_equals_serial(self, johannesburg_map):
        serial = transpile(
            self._program(), johannesburg_map, method="trios", seed=5,
            optimization_level=3,
        )
        parallel = transpile(
            self._program(), johannesburg_map, method="trios", seed=5,
            optimization_level=3, jobs=3,
        )
        assert serial.circuit == parallel.circuit
        assert serial.seed_search["chosen_seed"] == parallel.seed_search["chosen_seed"]

    def test_prefix_reuse_is_byte_identical_to_full_per_seed_pipeline(
        self, johannesburg_map
    ):
        # The search runs the seed-independent prefix (decomposition +
        # pre-placement clean-up) once and resumes each candidate from the
        # decomposed circuit.  Every candidate must be byte-identical to
        # what the full monolithic pipeline produces for the same seed —
        # the optimisation is a pure cost cut, never a result change.
        from repro.compiler.pipeline import (
            _TranspileContext,
            _build_partial_manager,
            _candidate_seeds,
            _seed_candidate,
            _split_stage_names,
        )
        from repro.hardware.target import Target

        program = self._program()
        target = Target(johannesburg_map)
        for method in ("baseline", "trios"):
            ctx = _TranspileContext(
                target=target, layout="greedy", optimization_level=3, seed=5,
                routing="stochastic", toffoli_mode="6cnot",
                second_decomposition="mapping_aware", overlap_optimization=True,
                edge_weights=None, validate_mode="full",
            )
            prefix_names, suffix_names = _split_stage_names(method)
            assert prefix_names, "every registered pipeline has a layout stage"
            assert suffix_names[0] == "layout"
            pre_circuit, pre_properties = _build_partial_manager(
                prefix_names, ctx
            ).run(program)
            for candidate_seed in _candidate_seeds(5, 3):
                reference = _seed_candidate(
                    (ctx, method, program, None, candidate_seed)
                )
                reused = _seed_candidate(
                    (ctx, method, pre_circuit, pre_properties, candidate_seed)
                )
                assert canonical_bytes(reused[0]) == canonical_bytes(reference[0])
                # cnots, depth, estimated success — the admissibility inputs.
                assert reused[2:] == reference[2:]

    def test_seed_search_telemetry_records_prefix_stages(self, johannesburg_map):
        result = transpile(
            self._program(), johannesburg_map, method="trios", seed=5,
            optimization_level=3, seed_trials=2,
        )
        assert result.seed_search["prefix_stages"] == [
            "unroll_keep_toffoli", "pre_optimize",
        ]

    def test_seedless_search_degenerates_to_one_candidate(self, johannesburg_map):
        result = transpile(
            self._program(), johannesburg_map, method="trios", seed=None,
            optimization_level=3, routing="greedy",
        )
        assert result.seed_search["seeds"] == [None]

    def test_search_knobs_rejected_below_level3(self, johannesburg_map):
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(self._program(), johannesburg_map, optimization_level=2, jobs=2)
        with pytest.raises(TranspilerError, match="no effect"):
            transpile(
                self._program(), johannesburg_map, optimization_level=1,
                seed_trials=2,
            )
        with pytest.raises(TranspilerError, match="invalid optimization_level"):
            transpile(self._program(), johannesburg_map, optimization_level=4)
        with pytest.raises(TranspilerError, match="seed_trials"):
            transpile(
                self._program(), johannesburg_map, optimization_level=3,
                seed_trials=0,
            )

    def test_level3_output_respects_coupling_map(self, johannesburg_map):
        result = transpile(
            self._program(), johannesburg_map, method="trios", seed=5,
            optimization_level=3,
        )
        assert check_connectivity(result.circuit, johannesburg_map) == []

    def test_level3_on_random_circuits_is_equivalent(self, johannesburg_map):
        for circuit in random_test_circuits(count=3, max_qubits=5):
            for method in ("baseline", "trios"):
                level2 = transpile(
                    circuit, johannesburg_map, method=method, seed=9,
                    optimization_level=2,
                )
                level3 = transpile(
                    circuit, johannesburg_map, method=method, seed=9,
                    optimization_level=3, seed_trials=2,
                )
                assert level3.two_qubit_gate_count <= level2.two_qubit_gate_count
                assert level3.depth <= level2.depth
                level3.assert_equivalent(circuit, trials=2)


class TestGreedyDepthPipeline:
    """The registered deterministic "greedy-depth" flow (ROADMAP follow-on)."""

    def test_registered_in_pipelines(self):
        from repro.compiler import PIPELINES

        assert "greedy-depth" in PIPELINES

    def test_compiles_deterministically_and_equivalently(self, johannesburg_map):
        program = QuantumCircuit(4, "prog")
        program.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3)
        first = transpile(program, johannesburg_map, method="greedy-depth", seed=1)
        second = transpile(program, johannesburg_map, method="greedy-depth", seed=2)
        # Deterministic: the routing ignores the stochastic seed entirely.
        assert first.circuit == second.circuit
        assert first.method == "greedy-depth"
        assert check_connectivity(first.circuit, johannesburg_map) == []
        assert_compilation_equivalent(program, first)

    def test_cli_compile_accepts_greedy_depth(self, capsys):
        from repro.experiments.cli import main

        assert main(["compile", "cnx_inplace-4", "--pipeline", "greedy-depth"]) == 0
        out = capsys.readouterr().out
        assert "greedy-depth" in out
        assert "CNOTs" in out

    def test_cli_compile_opt_level_3(self, capsys):
        from repro.experiments.cli import main

        assert main(
            ["compile", "cnx_inplace-4", "--opt-level", "3", "--seed-trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "seed search" in out
