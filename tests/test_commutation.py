"""Commutation analysis and commutative cancellation (`repro.passes.commutation`).

The satellite property the ISSUE pins: the memoized commutation table must
agree with explicit matrix commutators for *every* library gate pair, and
every optimisation pass — the old cleanup passes and the new
commutation-aware one — must preserve unitary equivalence on randomized
circuits, checked through the `repro.sim.equivalence` harness.
"""

from __future__ import annotations

import itertools
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits import library
from repro.exceptions import TranspilerError
from repro.passes import (
    CancelAdjacentInversesPass,
    CommutationAnalysisPass,
    CommutativeCancellationPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    FixedPoint,
    PropertySet,
    RemoveIdentitiesPass,
    clear_commutation_cache,
    commutation_cache_size,
    gates_commute,
    instructions_commute,
)
from repro.sim import assert_unitary_equivalent, circuit_unitary, circuits_equivalent

# ----------------------------------------------------------------------
# The full library gate inventory (parameter-free gates plus sampled angles
# for every parameterised gate) used by the exhaustive commutator check.
# ----------------------------------------------------------------------
_SAMPLE_ANGLE = 0.9337  # deliberately not a symmetry angle
_LIBRARY_GATES = [
    # 1q parameter-free
    *(Gate(name, 1) for name in
      ("id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg")),
    # 1q parameterised
    Gate("rx", 1, (_SAMPLE_ANGLE,)),
    Gate("ry", 1, (_SAMPLE_ANGLE,)),
    Gate("rz", 1, (_SAMPLE_ANGLE,)),
    Gate("u1", 1, (_SAMPLE_ANGLE,)),
    Gate("p", 1, (_SAMPLE_ANGLE,)),
    Gate("u2", 1, (_SAMPLE_ANGLE, 0.31)),
    Gate("u3", 1, (_SAMPLE_ANGLE, 0.31, -1.2)),
    # 2q
    *(Gate(name, 2) for name in ("cx", "cz", "cy", "ch", "swap")),
    Gate("cp", 2, (_SAMPLE_ANGLE,)),
    Gate("crz", 2, (_SAMPLE_ANGLE,)),
    Gate("rzz", 2, (_SAMPLE_ANGLE,)),
    # 3q
    *(Gate(name, 3) for name in ("ccx", "ccz", "cswap")),
]


def _overlapping_placements(arity_a: int, arity_b: int, rng: random.Random):
    """Placements of gate B's qubits against gate A on ``[0, arity_a)``.

    Enumerates every placement for small joint arities and samples for the
    big (3q, 3q) combinations, always keeping at least one shared wire.
    """
    pool = range(arity_a + arity_b)
    placements = [
        perm
        for perm in itertools.permutations(pool, arity_b)
        if set(perm) & set(range(arity_a))
    ]
    if arity_a + arity_b > 5:
        placements = rng.sample(placements, 12)
    return placements


def _explicit_commutator_vanishes(
    gate_a: Gate, qubits_a, gate_b: Gate, qubits_b, num_qubits: int
) -> bool:
    """Reference verdict: embed each gate alone, multiply dense matrices."""
    lone_a = QuantumCircuit(num_qubits)
    lone_a.append(gate_a, qubits_a)
    lone_b = QuantumCircuit(num_qubits)
    lone_b.append(gate_b, qubits_b)
    matrix_a = circuit_unitary(lone_a)
    matrix_b = circuit_unitary(lone_b)
    return bool(np.allclose(matrix_a @ matrix_b, matrix_b @ matrix_a, atol=1e-10))


class TestCommutationTable:
    def test_agrees_with_explicit_commutators_for_all_library_pairs(self):
        rng = random.Random(42)
        checked = 0
        for gate_a, gate_b in itertools.combinations_with_replacement(
            _LIBRARY_GATES, 2
        ):
            qubits_a = tuple(range(gate_a.num_qubits))
            for qubits_b in _overlapping_placements(
                gate_a.num_qubits, gate_b.num_qubits, rng
            ):
                num_qubits = max((*qubits_a, *qubits_b)) + 1
                expected = _explicit_commutator_vanishes(
                    gate_a, qubits_a, gate_b, qubits_b, num_qubits
                )
                assert gates_commute(gate_a, qubits_a, gate_b, qubits_b) == expected, (
                    f"{gate_a} on {qubits_a} vs {gate_b} on {qubits_b}: "
                    f"table says {not expected}, matrices say {expected}"
                )
                # Symmetry: the table must agree with itself both ways.
                assert gates_commute(gate_b, qubits_b, gate_a, qubits_a) == expected
                checked += 1
        assert checked > 1000  # the sweep really is library-wide

    def test_known_commutation_facts(self):
        cx = library.cx_gate()
        assert gates_commute(cx, (0, 1), library.z_gate(), (0,))
        assert gates_commute(cx, (0, 1), library.t_gate(), (0,))
        assert gates_commute(cx, (0, 1), library.x_gate(), (1,))
        assert gates_commute(cx, (0, 1), library.rx_gate(0.3), (1,))
        assert not gates_commute(cx, (0, 1), library.x_gate(), (0,))
        assert not gates_commute(cx, (0, 1), library.z_gate(), (1,))
        assert not gates_commute(cx, (0, 1), library.h_gate(), (0,))
        # Shared control commutes; control-on-target does not.
        assert gates_commute(cx, (0, 1), cx, (0, 2))
        assert not gates_commute(cx, (0, 1), cx, (1, 2))
        # A Toffoli commutes with a CNOT sharing only a control wire, but not
        # with one whose target rewrites a Toffoli control.
        assert gates_commute(library.ccx_gate(), (0, 1, 2), cx, (0, 3))
        assert not gates_commute(library.ccx_gate(), (0, 1, 2), cx, (0, 1))
        # Disjoint supports commute trivially.
        assert gates_commute(cx, (0, 1), cx, (2, 3))

    def test_non_unitary_operations_never_commute(self):
        measure = library.measure_op()
        assert not gates_commute(measure, (0,), library.z_gate(), (0,))
        assert not gates_commute(library.z_gate(), (0,), measure, (0,))
        assert not gates_commute(
            library.barrier_op(2), (0, 1), library.z_gate(), (0,)
        )

    def test_memoization_shares_relative_placements(self):
        clear_commutation_cache()
        cx = library.cx_gate()
        rz = library.rz_gate(0.25)
        gates_commute(cx, (3, 7), rz, (3,))
        size_after_first = commutation_cache_size()
        assert size_after_first > 0
        # Same relative placement on different absolute wires: cache hit.
        gates_commute(cx, (10, 2), rz, (10,))
        # Symmetric query: also primed.
        gates_commute(rz, (5,), cx, (5, 6))
        assert commutation_cache_size() == size_after_first

    def test_instruction_wrapper_rejects_classical_bits(self):
        from repro.circuits.circuit import Instruction

        measure = Instruction(library.measure_op(), (0,), (0,))
        gate = Instruction(library.z_gate(), (0,))
        assert not instructions_commute(measure, gate)


class TestCommutationAnalysisPass:
    def test_runs_partition_the_wire_chains(self):
        circuit = QuantumCircuit(2)
        circuit.t(0).cx(0, 1).rz(0.5, 0).h(0).cx(0, 1)
        properties = PropertySet()
        CommutationAnalysisPass().run(circuit, properties)
        sets = properties["commutation_sets"]
        runs0 = sets.runs(0)
        # Wire 0: [t, cx, rz] all commute (diagonals against the control);
        # h commutes with neither side, so it is a singleton run, and the
        # final cx starts another run after it.
        assert [[node.name for node in run] for run in runs0] == [
            ["t", "cx", "rz"], ["h"], ["cx"]
        ]
        # Signatures: the two cx gates sit in different runs on wire 0.
        first_cx = runs0[0][1]
        second_cx = runs0[2][0]
        assert sets.run_index(first_cx, 0) == 0
        assert sets.run_index(second_cx, 0) == 2
        stats = properties["commutation_stats"]
        assert stats["wires"] == 2
        assert stats["max_run"] >= 3

    def test_non_unitary_instructions_are_singleton_runs(self):
        circuit = QuantumCircuit(1)
        circuit.z(0).measure(0).z(0)
        properties = PropertySet()
        CommutationAnalysisPass().run(circuit, properties)
        assert [len(run) for run in properties["commutation_sets"].runs(0)] == [1, 1, 1]

    def test_run_index_unknown_wire_raises(self):
        circuit = QuantumCircuit(2)
        circuit.z(0)
        properties = PropertySet()
        CommutationAnalysisPass().run(circuit, properties)
        sets = properties["commutation_sets"]
        node = sets.runs(0)[0][0]
        with pytest.raises(TranspilerError):
            sets.run_index(node, 1)


class TestCommutativeCancellationPass:
    def run_pass(self, circuit: QuantumCircuit) -> QuantumCircuit:
        properties = PropertySet()
        out = CommutativeCancellationPass(verify=True).run(circuit, properties)
        # The node-bearing analysis entry must not leak into the property set
        # (it would break pickling across the level-3 --jobs pool).
        assert "commutation_sets" not in properties
        return out

    def test_cancels_cnot_pair_through_commuting_gates(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).t(0).x(1).rz(0.7, 0).cx(0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops().get("cx", 0) == 0
        assert circuits_equivalent(circuit, out)

    def test_does_not_cancel_through_blocking_gates(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).h(0).cx(0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops()["cx"] == 2

    def test_cancels_inverse_pairs_not_just_self_inverses(self):
        circuit = QuantumCircuit(2)
        circuit.cp(0.4, 0, 1).rz(1.1, 0).z(1).cp(-0.4, 0, 1)
        out = self.run_pass(circuit)
        assert "cp" not in out.count_ops()
        assert circuits_equivalent(circuit, out)

    def test_odd_gate_counts_keep_one(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).t(0).cx(0, 1).x(1).cx(0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops()["cx"] == 1
        assert circuits_equivalent(circuit, out)

    def test_merges_z_family_rotations_through_cx_controls(self):
        circuit = QuantumCircuit(2)
        circuit.t(0).cx(0, 1).s(0).cx(0, 1).tdg(0)
        out = self.run_pass(circuit)
        counts = out.count_ops()
        # The cx pair annihilates and t·s·tdg merges to a single u1(pi/2).
        assert counts == {"u1": 1}
        assert out.instructions[0].gate.params[0] == pytest.approx(math.pi / 2)

    def test_merges_x_family_on_cx_targets(self):
        circuit = QuantumCircuit(2)
        circuit.rx(0.4, 1).cx(0, 1).rx(-0.4, 1)
        out = self.run_pass(circuit)
        assert "rx" not in out.count_ops()
        assert out.count_ops()["cx"] == 1
        assert circuits_equivalent(circuit, out)

    def test_full_turn_rotation_is_dropped(self):
        circuit = QuantumCircuit(2)
        circuit.z(0).cx(0, 1).z(0)
        out = self.run_pass(circuit)
        assert out.count_ops() == {"cx": 1}

    def test_hadamard_pair_through_commuting_neighbour(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rz(0.3, 1).h(0)
        out = self.run_pass(circuit)
        assert "h" not in out.count_ops()

    def test_gate_count_depth_and_cnots_never_increase(self):
        rng = random.Random(99)
        for _ in range(25):
            num_qubits = rng.randint(2, 5)
            circuit = QuantumCircuit(num_qubits)
            for _ in range(rng.randint(1, 20)):
                choice = rng.random()
                qubits = rng.sample(range(num_qubits), 2)
                if choice < 0.5:
                    getattr(circuit, rng.choice(["t", "s", "z", "x", "h"]))(qubits[0])
                else:
                    circuit.cx(qubits[0], qubits[1])
            out = self.run_pass(circuit)
            assert len(out) <= len(circuit)
            assert out.depth() <= circuit.depth()
            assert (out.two_qubit_gate_count(count_swap_as=3)
                    <= circuit.two_qubit_gate_count(count_swap_as=3))

    def test_verify_mode_catches_a_broken_rewrite(self):
        class BrokenCancellation(CommutativeCancellationPass):
            def _merge_rotations(self, dag, sets, removed):
                # Sabotage: drop the first surviving CNOT outright.
                for node in list(dag):
                    if node.name == "cx" and node not in removed:
                        dag.remove_node(node)
                        return

        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).t(0)
        with pytest.raises(TranspilerError, match="non-equivalent"):
            BrokenCancellation(verify=True).run(circuit, PropertySet())
        # The same sabotage without verify goes unnoticed — the debug mode is
        # what turns the harness into a pass-level safety net.
        BrokenCancellation(verify=False).run(circuit, PropertySet())


class TestDiagonalTwoQubitMerges:
    """cp/rzz/crz pairs on the same qubits merge by angle addition."""

    def run_pass(self, circuit: QuantumCircuit) -> QuantumCircuit:
        return CommutativeCancellationPass(verify=True).run(
            circuit, PropertySet()
        )

    def test_cp_pair_merges_through_commuting_gates(self):
        circuit = QuantumCircuit(2)
        circuit.cp(0.3, 0, 1).rz(0.5, 0).z(1).cp(0.5, 0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops()["cp"] == 1
        (merged,) = [i for i in out.instructions if i.name == "cp"]
        assert merged.gate.params[0] == pytest.approx(0.8)
        assert circuits_equivalent(circuit, out)

    def test_rzz_full_turn_is_dropped(self):
        # rzz(2*pi) = -I: identity up to global phase, so the pair vanishes.
        circuit = QuantumCircuit(2)
        circuit.rzz(math.pi, 0, 1).rz(0.4, 0).rzz(math.pi, 0, 1)
        out = self.run_pass(circuit)
        assert "rzz" not in out.count_ops()
        assert circuits_equivalent(circuit, out)

    def test_crz_full_turn_is_kept(self):
        # crz(2*pi) = diag(1, 1, -1, -1) is NOT the identity (the phase is
        # conditional, not global) — the merged gate must survive.
        circuit = QuantumCircuit(2)
        circuit.crz(math.pi, 0, 1).crz(math.pi, 0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops().get("crz", 0) == 1
        assert out.instructions[0].gate.params[0] == pytest.approx(2 * math.pi)
        assert circuits_equivalent(circuit, out)

    def test_crz_is_direction_sensitive(self):
        # crz(a, 0, 1) and crz(b, 1, 0) are different unitaries; the merge
        # groups by the exact qubit tuple, so nothing happens here.
        circuit = QuantumCircuit(2)
        circuit.crz(0.3, 0, 1).crz(0.4, 1, 0)
        out = self.run_pass(circuit)
        assert out.count_ops()["crz"] == 2
        assert circuits_equivalent(circuit, out)

    def test_blocking_gate_prevents_the_merge(self):
        circuit = QuantumCircuit(2)
        circuit.cp(0.3, 0, 1).h(0).cp(0.5, 0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops()["cp"] == 2
        assert circuits_equivalent(circuit, out)

    def test_three_way_merge_accumulates_all_angles(self):
        circuit = QuantumCircuit(3)
        circuit.cp(0.2, 0, 1).rz(1.0, 0).cp(0.3, 0, 1).z(1).cp(0.4, 0, 1)
        out = self.run_pass(circuit)
        assert out.count_ops()["cp"] == 1
        (merged,) = [i for i in out.instructions if i.name == "cp"]
        assert merged.gate.params[0] == pytest.approx(0.9)
        assert circuits_equivalent(circuit, out)


# ----------------------------------------------------------------------
# Satellite: every optimisation pass (old and new) preserves equivalence on
# random circuits, via the sim.equivalence helpers.
# ----------------------------------------------------------------------
_OPTIMIZATION_PASSES = {
    "decompose_swaps": DecomposeSwapsPass,
    "cancel_adjacent": CancelAdjacentInversesPass,
    "consolidate_1q": Consolidate1qRunsPass,
    "remove_identities": RemoveIdentitiesPass,
    "commutative_cancellation": CommutativeCancellationPass,
    "commutation_loop": lambda: FixedPoint(
        [
            CommutativeCancellationPass(),
            CancelAdjacentInversesPass(),
            Consolidate1qRunsPass(),
            RemoveIdentitiesPass(),
        ]
    ),
}


@st.composite
def optimization_workloads(draw, max_qubits: int = 6, max_gates: int = 18):
    """Random ≤6-qubit circuits biased toward cancellable structure."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, "workload")
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        kind = draw(st.sampled_from(
            ["1q", "1q", "rot", "cx", "cx", "cz", "swap", "ccx", "cp"]
        ))
        qubits = draw(
            st.lists(st.integers(0, num_qubits - 1), min_size=min(3, num_qubits),
                     max_size=min(3, num_qubits), unique=True)
        )
        if kind == "1q":
            getattr(circuit, draw(st.sampled_from(
                ("h", "x", "y", "z", "s", "sdg", "t", "tdg")
            )))(qubits[0])
        elif kind == "rot":
            angle = draw(st.floats(-math.pi, math.pi, allow_nan=False))
            if draw(st.booleans()):
                circuit.rz(angle, qubits[0])
            else:
                circuit.rx(angle, qubits[0])
        elif kind == "cx":
            circuit.cx(qubits[0], qubits[1])
        elif kind == "cz":
            circuit.cz(qubits[0], qubits[1])
        elif kind == "swap":
            circuit.swap(qubits[0], qubits[1])
        elif kind == "cp":
            circuit.cp(draw(st.floats(-3, 3, allow_nan=False)), qubits[0], qubits[1])
        elif num_qubits >= 3:
            circuit.ccx(qubits[0], qubits[1], qubits[2])
    return circuit


class TestEveryOptimizationPassPreservesEquivalence:
    @pytest.mark.parametrize("pass_name", sorted(_OPTIMIZATION_PASSES))
    @given(circuit=optimization_workloads())
    @settings(max_examples=20, deadline=None)
    def test_pass_preserves_unitary_equivalence(self, pass_name, circuit):
        out = _OPTIMIZATION_PASSES[pass_name]().run(circuit, PropertySet())
        # atol accommodates Consolidate1qRunsPass's ZYZ resynthesis, whose
        # float error is ~1e-6 on adversarial angle combinations; genuine
        # rewrite bugs deviate by O(1).
        assert_unitary_equivalent(
            circuit, out, atol=1e-5, context=f"optimisation pass {pass_name}"
        )
