"""Tests for coupling maps, the paper's topologies and device calibrations."""

import math

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    CouplingMap,
    DeviceCalibration,
    by_name,
    clusters,
    fully_connected,
    grid,
    johannesburg,
    johannesburg_aug19_2020,
    line,
    near_term_calibration,
    PAPER_TOPOLOGIES,
)


class TestCouplingMap:
    def test_rejects_self_loops_and_out_of_range(self):
        with pytest.raises(HardwareError):
            CouplingMap(3, [(0, 0)])
        with pytest.raises(HardwareError):
            CouplingMap(3, [(0, 5)])

    def test_adjacency_and_distance(self):
        cmap = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cmap.are_adjacent(1, 2)
        assert not cmap.are_adjacent(0, 3)
        assert cmap.distance(0, 3) == 3
        assert cmap.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_weighted_shortest_path_prefers_reliable_edges(self):
        cmap = CouplingMap(4, [(0, 1), (1, 3), (0, 2), (2, 3)])
        weights = {(0, 1): 10.0, (1, 3): 10.0, (0, 2): 1.0, (2, 3): 1.0}
        assert cmap.shortest_path(0, 3, weights) == [0, 2, 3]

    def test_triangle_and_linear_middle(self):
        cmap = CouplingMap(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert cmap.has_triangle(0, 1, 2)
        assert not cmap.has_triangle(1, 2, 3)
        assert cmap.linear_middle(1, 2, 3) == 2
        assert cmap.linear_middle(0, 1, 3) is None

    def test_total_distance(self):
        cmap = CouplingMap(4, [(0, 1), (1, 2), (2, 3)])
        assert cmap.total_distance([0, 1, 3]) == 1 + 2 + 3

    def test_subgraph_connectivity(self):
        cmap = CouplingMap(5, [(0, 1), (1, 2), (3, 4)])
        assert cmap.subgraph_is_connected([0, 1, 2])
        assert not cmap.subgraph_is_connected([0, 1, 3])


class TestPaperTopologies:
    @pytest.mark.parametrize("name", sorted(PAPER_TOPOLOGIES))
    def test_all_have_20_connected_qubits(self, name):
        cmap = by_name(name)
        assert cmap.num_qubits == 20
        assert cmap.is_connected()

    def test_johannesburg_is_sparse_rings(self):
        cmap = johannesburg()
        assert len(cmap.edges) == 23
        # Four rings, no triangles: the mapping-aware pass must always pick the
        # 8-CNOT decomposition on this device.
        assert cmap.triangles() == []

    def test_grid_edge_count(self):
        assert len(grid(4, 5).edges) == 31

    def test_line_is_a_path(self):
        cmap = line(20)
        assert len(cmap.edges) == 19
        assert cmap.distance(0, 19) == 19

    def test_clusters_are_dense_locally(self):
        cmap = clusters(4, 5)
        # Within a cluster every pair is adjacent.
        for a in range(5):
            for b in range(a + 1, 5):
                assert cmap.are_adjacent(a, b)
        # Crossing clusters requires the ring links.
        assert not cmap.are_adjacent(0, 7)
        assert len(cmap.triangles()) > 0

    def test_fully_connected_has_no_routing_needs(self):
        cmap = fully_connected(6)
        assert all(cmap.are_adjacent(a, b) for a in range(6) for b in range(a + 1, 6))

    def test_unknown_topology_name(self):
        with pytest.raises(HardwareError):
            by_name("torus-1000")


class TestCalibration:
    def test_paper_snapshot_values(self):
        calibration = johannesburg_aug19_2020()
        assert calibration.t1 == pytest.approx(70.87)
        assert calibration.t2 == pytest.approx(72.72)
        assert calibration.two_qubit_gate_time == pytest.approx(0.559)
        assert calibration.one_qubit_gate_time == pytest.approx(0.07)
        assert calibration.two_qubit_gate_error == pytest.approx(0.0147)
        assert calibration.one_qubit_gate_error == pytest.approx(0.0004)

    def test_improved_scales_errors_and_coherence(self):
        calibration = johannesburg_aug19_2020().improved(20)
        assert calibration.two_qubit_gate_error == pytest.approx(0.0147 / 20)
        assert calibration.t1 == pytest.approx(70.87 * 20)
        assert near_term_calibration().two_qubit_gate_error == pytest.approx(0.0147 / 20)

    def test_improved_rejects_nonpositive_factor(self):
        with pytest.raises(HardwareError):
            johannesburg_aug19_2020().improved(0)

    def test_gate_error_lookup(self):
        calibration = johannesburg_aug19_2020()
        assert calibration.gate_error("cx", (0, 1)) == pytest.approx(0.0147)
        assert calibration.gate_error("u3", (4,)) == pytest.approx(0.0004)
        assert calibration.gate_error("measure", (0,)) == pytest.approx(0.02)
        with pytest.raises(HardwareError):
            calibration.gate_error("ccx", (0, 1, 2))

    def test_per_edge_errors_override_average(self):
        calibration = johannesburg_aug19_2020().with_edge_errors({(1, 0): 0.05})
        assert calibration.gate_error("cx", (0, 1)) == pytest.approx(0.05)
        assert calibration.gate_error("cx", (2, 3)) == pytest.approx(0.0147)

    def test_noise_aware_edge_weights(self):
        cmap = line(4)
        calibration = johannesburg_aug19_2020().with_edge_errors({(0, 1): 0.1})
        weights = calibration.edge_weight_neg_log_success(cmap)
        assert weights[(0, 1)] == pytest.approx(-math.log(0.9))
        assert weights[(1, 2)] == pytest.approx(-math.log(1 - 0.0147))
        assert weights[(0, 1)] > weights[(1, 2)]

    def test_swap_duration_is_three_cnots(self):
        calibration = johannesburg_aug19_2020()
        assert calibration.gate_duration("swap", (0, 1)) == pytest.approx(3 * 0.559)

    def test_invalid_calibration_rejected(self):
        with pytest.raises(HardwareError):
            DeviceCalibration(
                name="bad", t1=-1, t2=1, one_qubit_gate_time=1, two_qubit_gate_time=1,
                one_qubit_gate_error=0, two_qubit_gate_error=0, readout_error=0,
                readout_time=1,
            )
        with pytest.raises(HardwareError):
            DeviceCalibration(
                name="bad", t1=1, t2=1, one_qubit_gate_time=1, two_qubit_gate_time=1,
                one_qubit_gate_error=0, two_qubit_gate_error=1.5, readout_error=0,
                readout_time=1,
            )
