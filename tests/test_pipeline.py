"""End-to-end tests for the baseline and Trios compilation pipelines."""

import pytest

from tests.conftest import assert_compilation_equivalent

from repro import QuantumCircuit, compile_baseline, compile_trios, transpile
from repro.compiler import check_connectivity, gate_reduction
from repro.exceptions import TranspilerError
from repro.hardware import clusters, grid, johannesburg, line


def single_toffoli(name="toffoli"):
    circuit = QuantumCircuit(3, name)
    circuit.ccx(0, 1, 2)
    return circuit


def small_program():
    circuit = QuantumCircuit(4, "small_program")
    circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3).ccx(1, 2, 3)
    return circuit


class TestBaselinePipeline:
    def test_output_respects_coupling_map(self, johannesburg_map):
        result = compile_baseline(small_program(), johannesburg_map, seed=1)
        assert check_connectivity(result.circuit, johannesburg_map) == []
        assert result.circuit.count_ops().get("ccx", 0) == 0
        assert result.circuit.count_ops().get("swap", 0) == 0

    def test_basis_is_hardware_native(self, johannesburg_map):
        result = compile_baseline(small_program(), johannesburg_map, seed=1)
        names = set(result.circuit.count_ops())
        assert names <= {"u1", "u2", "u3", "cx", "measure", "barrier"}

    def test_semantics_preserved(self, johannesburg_map):
        logical = small_program()
        result = compile_baseline(logical, johannesburg_map, seed=1)
        assert_compilation_equivalent(logical, result)

    @pytest.mark.parametrize("toffoli_mode", ["6cnot", "8cnot"])
    def test_toffoli_modes(self, johannesburg_map, toffoli_mode):
        result = compile_baseline(
            single_toffoli(), johannesburg_map, toffoli_mode=toffoli_mode,
            layout={0: 5, 1: 6, 2: 7}, seed=1,
        )
        assert result.method == f"baseline-{toffoli_mode}"
        assert check_connectivity(result.circuit, johannesburg_map) == []

    def test_unknown_routing_policy_rejected(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            compile_baseline(single_toffoli(), johannesburg_map, routing="quantum")

    def test_stochastic_routing_reproducible(self, johannesburg_map):
        a = compile_baseline(small_program(), johannesburg_map, seed=5)
        b = compile_baseline(small_program(), johannesburg_map, seed=5)
        assert a.circuit == b.circuit


class TestTriosPipeline:
    def test_output_respects_coupling_map(self, johannesburg_map):
        result = compile_trios(small_program(), johannesburg_map)
        assert check_connectivity(result.circuit, johannesburg_map) == []
        assert result.circuit.count_ops().get("ccx", 0) == 0

    def test_semantics_preserved(self, johannesburg_map):
        logical = small_program()
        result = compile_trios(logical, johannesburg_map)
        assert_compilation_equivalent(logical, result)

    def test_semantics_preserved_on_line(self, line_map):
        logical = small_program()
        result = compile_trios(logical, line_map)
        assert_compilation_equivalent(logical, result)

    def test_mapping_aware_legalization_adds_no_swaps(self, johannesburg_map):
        # With the mapping-aware second decomposition every emitted CNOT is
        # already legal, so the legalisation router must be a no-op.
        circuit = single_toffoli()
        trios = compile_trios(circuit, johannesburg_map, layout={0: 0, 1: 4, 2: 15})
        trios_no_legalization_needed = compile_trios(
            circuit, johannesburg_map, layout={0: 0, 1: 4, 2: 15},
            second_decomposition="mapping_aware",
        )
        assert trios.two_qubit_gate_count == trios_no_legalization_needed.two_qubit_gate_count

    @pytest.mark.parametrize("second", ["mapping_aware", "6cnot", "8cnot"])
    def test_second_decomposition_variants_are_correct(self, johannesburg_map, second):
        logical = single_toffoli()
        result = compile_trios(
            logical, johannesburg_map, second_decomposition=second,
            layout={0: 6, 1: 17, 2: 3},
        )
        assert check_connectivity(result.circuit, johannesburg_map) == []
        assert_compilation_equivalent(logical, result)

    def test_mapping_aware_beats_forced_6cnot_off_triangle(self, johannesburg_map):
        placement = {0: 6, 1: 17, 2: 3}
        aware = compile_trios(single_toffoli(), johannesburg_map,
                              second_decomposition="mapping_aware", layout=placement)
        forced = compile_trios(single_toffoli(), johannesburg_map,
                               second_decomposition="6cnot", layout=placement)
        assert aware.two_qubit_gate_count <= forced.two_qubit_gate_count

    def test_unknown_second_decomposition_rejected(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            compile_trios(single_toffoli(), johannesburg_map, second_decomposition="9cnot")


class TestPipelineComparison:
    def test_trios_reduces_cnots_for_distant_toffoli(self, johannesburg_map):
        placement = {0: 0, 1: 4, 2: 15}
        baseline = compile_baseline(single_toffoli(), johannesburg_map,
                                    layout=placement, seed=2)
        trios = compile_trios(single_toffoli(), johannesburg_map, layout=placement)
        assert trios.two_qubit_gate_count < baseline.two_qubit_gate_count
        assert gate_reduction(baseline, trios) > 0.2

    def test_trios_improves_estimated_success(self, johannesburg_map, hardware_calibration):
        placement = {0: 0, 1: 4, 2: 15}
        baseline = compile_baseline(single_toffoli(), johannesburg_map,
                                    layout=placement, seed=2)
        trios = compile_trios(single_toffoli(), johannesburg_map, layout=placement)
        assert trios.success_probability(hardware_calibration) > baseline.success_probability(
            hardware_calibration
        )

    def test_toffoli_free_circuit_compiles_identically(self, johannesburg_map):
        circuit = QuantumCircuit(5, "no_toffoli")
        circuit.h(0)
        for qubit in range(4):
            circuit.cx(qubit, qubit + 1)
        baseline = compile_baseline(circuit, johannesburg_map, seed=9)
        trios = compile_trios(circuit, johannesburg_map, seed=9)
        assert baseline.circuit == trios.circuit
        assert baseline.two_qubit_gate_count == trios.two_qubit_gate_count

    @pytest.mark.parametrize("builder", [johannesburg, grid, line, clusters])
    def test_both_pipelines_work_on_all_topologies(self, builder):
        device = builder()
        logical = small_program()
        for result in (
            compile_baseline(logical, device, seed=3),
            compile_trios(logical, device, seed=3),
        ):
            assert check_connectivity(result.circuit, device) == []
            assert_compilation_equivalent(logical, result)

    def test_transpile_dispatch(self, johannesburg_map):
        circuit = single_toffoli()
        assert transpile(circuit, johannesburg_map, method="trios").method.startswith("trios")
        assert transpile(circuit, johannesburg_map, method="baseline", seed=1).method.startswith(
            "baseline"
        )
        with pytest.raises(TranspilerError):
            transpile(circuit, johannesburg_map, method="magic")


class TestCompilationResult:
    def test_summary_and_metrics(self, johannesburg_map, hardware_calibration):
        result = compile_trios(small_program(), johannesburg_map)
        summary = result.summary()
        assert summary["device"] == "ibmq-johannesburg"
        assert summary["two_qubit_gates"] == result.two_qubit_gate_count
        assert result.depth > 0
        assert result.duration(hardware_calibration) > 0
        estimate = result.success_estimate(hardware_calibration)
        assert 0 < estimate.probability < 1

    def test_noise_aware_options(self, johannesburg_map, hardware_calibration):
        noisy_calibration = hardware_calibration.with_edge_errors({(5, 6): 0.2})
        result = compile_trios(
            small_program(), johannesburg_map, calibration=noisy_calibration,
            noise_aware=True, layout="noise",
        )
        assert check_connectivity(result.circuit, johannesburg_map) == []

    def test_noise_aware_requires_calibration(self, johannesburg_map):
        with pytest.raises(TranspilerError):
            compile_trios(small_program(), johannesburg_map, noise_aware=True)
        with pytest.raises(TranspilerError):
            compile_baseline(small_program(), johannesburg_map, layout="noise")
