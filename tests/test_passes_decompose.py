"""Tests for unitary synthesis, basis decomposition and the Toffoli decompositions."""


import numpy as np
import pytest

from repro.circuits import Gate, QuantumCircuit
from repro.circuits.library import GATE_ARITY
from repro.exceptions import TranspilerError
from repro.hardware import CouplingMap, johannesburg
from repro.passes import (
    DecomposeToBasisPass,
    MappingAwareToffoliDecomposePass,
    PropertySet,
    ToffoliDecomposePass,
    ccz_6cnot,
    ccz_8cnot_line,
    matrix_is_identity,
    toffoli_6cnot,
    toffoli_8cnot_line,
    u3_from_matrix,
    zyz_angles,
)
from repro.sim import circuits_equivalent, equal_up_to_global_phase


def random_unitary_2x2(rng: np.random.Generator) -> np.ndarray:
    matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))


class TestZyzSynthesis:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_unitaries_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        unitary = random_unitary_2x2(rng)
        theta, phi, lam, phase = zyz_angles(unitary)
        rebuilt = np.exp(1j * phase) * Gate("u3", 1, (theta, phi, lam)).matrix()
        assert np.allclose(rebuilt, unitary, atol=1e-9)

    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "t", "sx"])
    def test_named_gates_roundtrip(self, name):
        matrix = Gate(name, 1).matrix()
        rebuilt = u3_from_matrix(matrix).matrix()
        assert equal_up_to_global_phase(rebuilt, matrix)

    def test_diagonal_and_antidiagonal_edge_cases(self):
        assert equal_up_to_global_phase(
            u3_from_matrix(Gate("z", 1).matrix()).matrix(), Gate("z", 1).matrix()
        )
        assert equal_up_to_global_phase(
            u3_from_matrix(Gate("x", 1).matrix()).matrix(), Gate("x", 1).matrix()
        )

    def test_identity_detection(self):
        assert matrix_is_identity(np.eye(2))
        assert matrix_is_identity(np.exp(1j * 0.3) * np.eye(2))
        assert not matrix_is_identity(Gate("x", 1).matrix())

    def test_non_unitary_rejected(self):
        with pytest.raises(TranspilerError):
            zyz_angles(np.array([[1, 0], [0, 2]], dtype=complex))


class TestToffoliDecompositions:
    def test_6cnot_toffoli_is_exact(self):
        reference = QuantumCircuit(3)
        reference.ccx(0, 1, 2)
        candidate = QuantumCircuit(3)
        candidate.extend(toffoli_6cnot(0, 1, 2))
        assert circuits_equivalent(reference, candidate)
        assert candidate.count_ops()["cx"] == 6

    @pytest.mark.parametrize("middle", [0, 1, 2])
    def test_8cnot_toffoli_is_exact_for_any_middle(self, middle):
        reference = QuantumCircuit(3)
        reference.ccx(0, 1, 2)
        candidate = QuantumCircuit(3)
        candidate.extend(toffoli_8cnot_line(0, 1, 2, middle=middle))
        assert circuits_equivalent(reference, candidate)
        assert candidate.count_ops()["cx"] == 8

    def test_8cnot_toffoli_only_touches_line_pairs(self):
        instructions = toffoli_8cnot_line(0, 1, 2, middle=1)
        pairs = {inst.qubits for inst in instructions if inst.name == "cx"}
        assert pairs <= {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_ccz_decompositions_are_exact(self):
        reference = QuantumCircuit(3)
        reference.ccz(0, 1, 2)
        for instructions in (ccz_6cnot(0, 1, 2), ccz_8cnot_line(0, 1, 2)):
            candidate = QuantumCircuit(3)
            candidate.extend(instructions)
            assert circuits_equivalent(reference, candidate)

    def test_8cnot_middle_must_be_a_gate_qubit(self):
        with pytest.raises(TranspilerError):
            toffoli_8cnot_line(0, 1, 2, middle=5)

    def test_fixed_mode_pass_expands_every_toffoli(self):
        circuit = QuantumCircuit(4)
        circuit.ccx(0, 1, 2).ccx(1, 2, 3)
        expanded = ToffoliDecomposePass(mode="8cnot").run(circuit, PropertySet())
        assert expanded.count_ops().get("ccx", 0) == 0
        assert expanded.count_ops()["cx"] == 16


class TestMappingAwareDecomposition:
    def test_triangle_selects_6cnot(self):
        cmap = CouplingMap(3, [(0, 1), (1, 2), (0, 2)])
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        out = MappingAwareToffoliDecomposePass(cmap).run(circuit, PropertySet())
        assert out.count_ops()["cx"] == 6

    def test_line_selects_8cnot_with_correct_middle(self):
        cmap = CouplingMap(3, [(0, 1), (1, 2)])
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 2, 1)  # middle hardware qubit is 1, the Toffoli target
        out = MappingAwareToffoliDecomposePass(cmap).run(circuit, PropertySet())
        assert out.count_ops()["cx"] == 8
        pairs = {tuple(sorted(inst.qubits)) for inst in out.instructions if inst.name == "cx"}
        assert pairs <= {(0, 1), (1, 2)}
        reference = QuantumCircuit(3)
        reference.ccx(0, 2, 1)
        assert circuits_equivalent(reference, out)

    def test_disconnected_trio_rejected(self):
        cmap = CouplingMap(4, [(0, 1), (2, 3)])
        circuit = QuantumCircuit(4)
        circuit.ccx(0, 1, 3)
        with pytest.raises(TranspilerError):
            MappingAwareToffoliDecomposePass(cmap).run(circuit, PropertySet())

    def test_johannesburg_always_uses_8cnot(self):
        cmap = johannesburg()
        circuit = QuantumCircuit(20)
        circuit.ccx(0, 1, 6)  # 1 is adjacent to both 0 and 6? (0-1 yes, 1-6 no)
        circuit.instructions.clear()
        circuit.ccx(5, 6, 7)  # a line 5-6-7 on Johannesburg
        out = MappingAwareToffoliDecomposePass(cmap).run(circuit, PropertySet())
        assert out.count_ops()["cx"] == 8


class TestBasisDecomposition:
    @pytest.mark.parametrize(
        "name",
        [n for n, arity in GATE_ARITY.items() if n not in ("measure", "reset")],
    )
    def test_every_gate_decomposes_to_basis_and_stays_exact(self, name):
        arity = GATE_ARITY[name]
        params = tuple(0.37 * (i + 1) for i in range(_num_params(name)))
        circuit = QuantumCircuit(arity)
        circuit.append(Gate(name, arity, params), tuple(range(arity)))
        decomposed = DecomposeToBasisPass().run(circuit, PropertySet())
        allowed = {"u1", "u2", "u3", "cx", "swap"}
        assert {inst.name for inst in decomposed.instructions} <= allowed
        assert circuits_equivalent(circuit, decomposed)

    def test_keep_leaves_toffolis_intact(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).ccx(0, 1, 2).t(2)
        kept = DecomposeToBasisPass(keep=("ccx", "ccz")).run(circuit, PropertySet())
        assert kept.count_ops().get("ccx") == 1
        assert "h" not in kept.count_ops()

    def test_toffoli_mode_selects_decomposition_size(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        six = DecomposeToBasisPass(toffoli_mode="6cnot").run(circuit, PropertySet())
        eight = DecomposeToBasisPass(toffoli_mode="8cnot").run(circuit, PropertySet())
        assert six.count_ops()["cx"] == 6
        assert eight.count_ops()["cx"] == 8

    def test_measure_and_barrier_pass_through(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().measure(0, 0)
        out = DecomposeToBasisPass().run(circuit, PropertySet())
        assert out.count_ops().get("measure") == 1
        assert out.count_ops().get("barrier") == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(TranspilerError):
            DecomposeToBasisPass(toffoli_mode="7cnot")


def _num_params(name: str) -> int:
    return {"rx": 1, "ry": 1, "rz": 1, "u1": 1, "p": 1, "cp": 1, "crz": 1,
            "rzz": 1, "u2": 2, "u3": 3}.get(name, 0)
