"""Tests for the experiment harnesses (Figures 6-12, Table 1)."""

import math

import pytest

from repro.bench_circuits import all_benchmark_statistics
from repro.experiments import (
    CONFIGURATIONS,
    compile_configuration,
    default_factors,
    geometric_mean,
    percent_change,
    percent_reduction,
    random_triplets,
    run_benchmark_experiment,
    run_sensitivity_experiment,
    run_toffoli_experiment,
    single_case,
    toffoli_test_circuit,
)
from repro.experiments.report import (
    format_benchmark_normalized,
    format_benchmark_reduction,
    format_benchmark_success,
    format_sensitivity,
    format_table1,
    format_toffoli_gate_counts,
    format_toffoli_normalized,
    format_toffoli_success,
)
from repro.hardware import johannesburg


class TestStatsHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_clamps_zero(self):
        assert geometric_mean([0.0, 1.0]) > 0.0

    def test_percent_helpers(self):
        assert percent_change(2.0, 3.0) == pytest.approx(0.5)
        assert percent_reduction(10, 6) == pytest.approx(0.4)
        assert percent_change(0.0, 1.0) == math.inf


class TestToffoliExperiment:
    def test_test_circuit_prepares_110(self):
        circuit = toffoli_test_circuit()
        names = [inst.name for inst in circuit.instructions]
        assert names.count("x") == 2
        assert names.count("ccx") == 1
        assert names.count("measure") == 3

    def test_random_triplets_are_distinct_qubits(self):
        for triplet in random_triplets(johannesburg(), 10, seed=1):
            assert len(set(triplet)) == 3

    def test_all_configurations_compile(self, johannesburg_map):
        placement = {0: 0, 1: 9, 2: 16}
        for configuration in CONFIGURATIONS:
            result = compile_configuration(configuration, johannesburg_map, placement, seed=0)
            assert result.two_qubit_gate_count > 0

    def test_small_run_reproduces_headline_shape(self):
        result = run_toffoli_experiment(num_triplets=6, shots=256, seed=4)
        assert len(result.rows) == 6
        # Trios (8-CNOT) uses fewer CNOTs than the Qiskit baseline on average.
        assert result.geomean_cnots("Trios (8-CNOT Toffoli)") < result.geomean_cnots(
            "Qiskit (baseline)"
        )
        assert result.gate_reduction() > 0.1
        # And its measured success rate is at least as good.
        assert result.geomean_improvement() > 1.0
        for row in result.rows:
            for configuration in CONFIGURATIONS:
                assert 0.0 <= row.success_rates[configuration] <= 1.0

    def test_single_case_walkthrough(self):
        summary = single_case()
        assert summary["Trios (8-CNOT Toffoli)"]["swaps"] < summary["Qiskit (baseline)"]["swaps"]

    def test_reports_render(self):
        result = run_toffoli_experiment(num_triplets=3, shots=64, seed=2)
        for formatter in (format_toffoli_gate_counts, format_toffoli_success,
                          format_toffoli_normalized):
            text = formatter(result)
            assert "geo-mean" in text


class TestBenchmarkExperiment:
    @pytest.fixture(scope="class")
    def small_result(self):
        return run_benchmark_experiment(
            benchmarks=["cnx_dirty-11", "cuccaro_adder-20", "bv-20"]
        )

    def test_covers_all_four_topologies(self, small_result):
        assert sorted(small_result.topologies()) == sorted(
            ["ibmq-johannesburg", "full-grid-5x4", "line-20", "clusters-5x4"]
        )

    def test_toffoli_benchmarks_improve(self, small_result):
        for topology in small_result.topologies():
            row = small_result.row(topology, "cnx_dirty-11")
            assert row.cnot_reduction > 0.0
            assert row.success_ratio >= 1.0

    def test_toffoli_free_benchmarks_are_unchanged(self, small_result):
        for topology in small_result.topologies():
            row = small_result.row(topology, "bv-20")
            assert row.cnot_reduction == pytest.approx(0.0)
            assert row.success_ratio == pytest.approx(1.0)

    def test_geomeans_positive(self, small_result):
        for topology in small_result.topologies():
            assert small_result.geomean_cnot_reduction(topology) > 0.0
            assert small_result.geomean_success_ratio(topology) >= 1.0
            assert 0 < small_result.geomean_success(topology, "trios") <= 1.0

    def test_reports_render(self, small_result):
        for formatter in (format_benchmark_success, format_benchmark_reduction,
                          format_benchmark_normalized):
            assert "cnx_dirty-11" in formatter(small_result)


class TestSensitivityExperiment:
    def test_ratio_decreases_as_errors_improve(self):
        result = run_sensitivity_experiment(
            benchmarks=["cnx_dirty-11"], factors=[1.0, 20.0, 100.0]
        )
        curve = result.curves["cnx_dirty-11"]
        assert curve.ratios[0] >= curve.ratios[-1]
        assert curve.ratios[-1] >= 1.0
        assert curve.ratio_at(20.0) == curve.ratios[1]

    def test_default_factors_are_log_spaced(self):
        factors = default_factors(5, maximum=100.0)
        assert factors[0] == pytest.approx(1.0)
        assert factors[-1] == pytest.approx(100.0)
        assert len(factors) == 5

    def test_report_renders(self):
        result = run_sensitivity_experiment(
            benchmarks=["cnx_dirty-11"], factors=[1.0, 10.0]
        )
        assert "cnx_dirty-11" in format_sensitivity(result)


class TestTable1Report:
    def test_table1_lists_all_benchmarks(self):
        text = format_table1(all_benchmark_statistics())
        for name in ("cnx_dirty-11", "grovers-9", "bv-20"):
            assert name in text
