"""Tests for the text circuit drawer and the command-line interface."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.drawing import draw
from repro.experiments.cli import main


class TestDrawing:
    def test_every_qubit_gets_a_line(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2)
        text = draw(circuit)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0")
        assert lines[2].startswith("q2")

    def test_gate_symbols_appear(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).measure(2, 0)
        text = draw(circuit)
        assert "h" in text
        assert "o" in text  # control dots
        assert "X" in text  # CNOT / Toffoli target
        assert "M" in text  # measurement

    def test_two_qubit_span_is_marked_on_intermediate_wires(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        text = draw(circuit)
        middle_line = text.splitlines()[1]
        assert "|" in middle_line

    def test_swap_symbols(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        text = draw(circuit)
        assert text.count("x") >= 2

    def test_long_circuit_is_truncated(self):
        circuit = QuantumCircuit(1)
        for _ in range(50):
            circuit.x(0)
        text = draw(circuit, max_columns=10)
        assert text.endswith("...")

    def test_parametric_gate_label(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.25, 0)
        assert "rz(0.25)" in draw(circuit)


class TestCli:
    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "cnx_dirty-11" in output
        assert "grovers-9" in output

    def test_toffoli_command_small(self, capsys):
        assert main(["toffoli", "--triplets", "3", "--shots", "64", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "[Figure 7]" in output
        assert "[Figure 6]" in output
        assert "[Figure 8]" in output
        assert "Geomean gate reduction" in output

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "--factors", "1", "20"]) == 0
        output = capsys.readouterr().out
        assert "[Figure 12]" in output
        assert "cnx_dirty-11" in output

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_list_backends(self, capsys):
        assert main(["--list-backends"]) == 0
        output = capsys.readouterr().out
        for name in ("failure", "trajectory", "density", "ideal"):
            assert name in output

    def test_compile_command_with_pipeline(self, capsys):
        assert main(["compile", "cnx_inplace-4", "--pipeline", "baseline",
                     "--topology", "line-20", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "'baseline' pipeline" in output
        assert "CNOTs" in output
        assert "analytic success" in output

    def test_compile_command_rejects_unknown_pipeline(self):
        with pytest.raises(SystemExit):
            main(["compile", "cnx_inplace-4", "--pipeline", "nonesuch"])

    def test_toffoli_exact_density(self, capsys):
        assert main(["toffoli", "--triplets", "2", "--seed", "2", "--exact"]) == 0
        output = capsys.readouterr().out
        assert "exact probabilities, zero shot variance" in output
        assert "[Figure 6]" in output
        # The default 'failure' sampler cannot serve --exact; the CLI must
        # say so rather than silently switching engines.
        assert "using the 'density' backend" in output

    def test_density_backend_rejected_nowhere(self):
        # "density" must be a valid choice for every experiment subcommand.
        with pytest.raises(SystemExit):
            main(["toffoli", "--sampler", "nonesuch"])
        with pytest.raises(SystemExit):
            main(["benchmarks", "--backend", "nonesuch"])
