"""Tests for the statevector/unitary simulators and the analytic success model."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim import (
    GateFailureSampler,
    PauliTrajectorySampler,
    StatevectorSimulator,
    basis_state,
    circuit_duration,
    circuit_unitary,
    circuits_equivalent,
    equal_up_to_global_phase,
    estimate_success,
    marginal_probabilities,
    permutation_unitary,
    statevector_fidelity,
    success_probability,
    success_ratio,
    zero_state,
)


class TestStatevector:
    def test_zero_state(self):
        state = zero_state(3)
        assert state[0] == 1 and np.count_nonzero(state) == 1

    def test_basis_state_ordering(self):
        # Qubit 0 is the most significant bit.
        state = basis_state([1, 0, 1])
        assert state[0b101] == 1

    def test_bell_state_probabilities(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        probs = StatevectorSimulator().probabilities(circuit)
        assert probs == pytest.approx({"00": 0.5, "11": 0.5})

    def test_ghz_state(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        for qubit in range(3):
            circuit.cx(qubit, qubit + 1)
        probs = StatevectorSimulator().probabilities(circuit)
        assert probs == pytest.approx({"0000": 0.5, "1111": 0.5})

    def test_marginal_probabilities_subset_and_order(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        state = StatevectorSimulator().run(circuit)
        assert marginal_probabilities(state, 3, [0]) == pytest.approx({"1": 1.0})
        assert marginal_probabilities(state, 3, [1, 0]) == pytest.approx({"01": 1.0})

    def test_sample_counts_sum_to_shots(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        counts = StatevectorSimulator().sample_counts(circuit, shots=200, seed=1)
        assert sum(counts.values()) == 200
        assert set(counts) <= {"00", "11"}

    def test_toffoli_truth_table(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        sim = StatevectorSimulator()
        out = sim.run(circuit, basis_state([1, 1, 0]))
        assert statevector_fidelity(out, basis_state([1, 1, 1])) == pytest.approx(1.0)
        out = sim.run(circuit, basis_state([1, 0, 0]))
        assert statevector_fidelity(out, basis_state([1, 0, 0])) == pytest.approx(1.0)

    def test_simulator_qubit_limit(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator(num_qubits_limit=4).run(QuantumCircuit(5))


class TestUnitary:
    def test_identity_circuit(self):
        circuit = QuantumCircuit(2)
        assert np.allclose(circuit_unitary(circuit), np.eye(4))

    def test_global_phase_equality(self):
        a = np.eye(2)
        b = np.exp(1j * 0.7) * np.eye(2)
        assert equal_up_to_global_phase(a, b)
        assert not equal_up_to_global_phase(a, np.array([[0, 1], [1, 0]]))

    def test_permutation_unitary_moves_data(self):
        perm = permutation_unitary({0: 1, 1: 0}, 2)
        state = perm @ basis_state([1, 0])
        assert statevector_fidelity(state, basis_state([0, 1])) == pytest.approx(1.0)

    def test_circuits_equivalent_with_permutation(self):
        original = QuantumCircuit(2)
        original.cx(0, 1)
        swapped = QuantumCircuit(2)
        swapped.swap(0, 1)
        swapped.cx(1, 0)
        assert circuits_equivalent(original, swapped, final_permutation={0: 1, 1: 0})
        assert not circuits_equivalent(original, swapped)

    def test_non_unitary_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        with pytest.raises(SimulationError):
            circuit_unitary(circuit)


class TestSuccessEstimator:
    def test_gate_error_product(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        estimate = estimate_success(circuit, hardware_calibration)
        assert estimate.num_two_qubit_gates == 2
        assert estimate.gate_success == pytest.approx((1 - 0.0147) ** 2)

    def test_duration_and_coherence(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        duration = circuit_duration(circuit, hardware_calibration)
        assert duration == pytest.approx(2 * 0.559)
        estimate = estimate_success(circuit, hardware_calibration)
        expected = math.exp(-(duration / 70.87 + duration / 72.72))
        assert estimate.coherence_success == pytest.approx(expected)

    def test_swap_counts_as_three_cnots(self, hardware_calibration):
        with_swap = QuantumCircuit(2)
        with_swap.swap(0, 1)
        expanded = QuantumCircuit(2)
        expanded.cx(0, 1).cx(1, 0).cx(0, 1)
        assert success_probability(with_swap, hardware_calibration) == pytest.approx(
            success_probability(expanded, hardware_calibration)
        )

    def test_readout_error_included_when_measuring(self, hardware_calibration):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        with_readout = estimate_success(circuit, hardware_calibration, include_readout=True)
        without = estimate_success(circuit, hardware_calibration, include_readout=False)
        assert with_readout.probability < without.probability

    def test_three_qubit_gate_rejected(self, hardware_calibration):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(SimulationError):
            estimate_success(circuit, hardware_calibration)

    def test_fewer_gates_means_higher_success(self, hardware_calibration):
        short = QuantumCircuit(2)
        short.cx(0, 1)
        long = QuantumCircuit(2)
        for _ in range(20):
            long.cx(0, 1)
        assert success_probability(short, hardware_calibration) > success_probability(
            long, hardware_calibration
        )
        assert success_ratio(short, long, hardware_calibration) > 1.0

    def test_improved_calibration_raises_success(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        for _ in range(30):
            circuit.cx(0, 1)
        better = hardware_calibration.improved(20)
        assert success_probability(circuit, better) > success_probability(
            circuit, hardware_calibration
        )


class TestNoisySamplers:
    def _toffoli_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.x(0).x(1)
        circuit.h(2).cx(1, 2).tdg(2).cx(0, 2).t(2).cx(1, 2).tdg(2).cx(0, 2)
        circuit.t(1).t(2).h(2).cx(0, 1).t(0).tdg(1).cx(0, 1)
        return circuit

    def test_noiseless_trajectory_sampler_is_exact(self, hardware_calibration):
        perfect = hardware_calibration.improved(1e9)
        sampler = PauliTrajectorySampler(perfect, seed=3, include_decoherence=False,
                                         include_readout_error=False)
        result = sampler.run(self._toffoli_circuit(), shots=64, measured_qubits=[0, 1, 2])
        assert result.counts == {"111": 64}

    def test_noisy_trajectory_sampler_degrades_success(self, hardware_calibration):
        sampler = PauliTrajectorySampler(hardware_calibration, seed=3)
        result = sampler.run(self._toffoli_circuit(), shots=256, measured_qubits=[0, 1, 2])
        assert 0.3 < result.success_rate("111") < 1.0

    def test_gate_failure_sampler_matches_analytic_scale(self, hardware_calibration):
        circuit = self._toffoli_circuit()
        sampler = GateFailureSampler(hardware_calibration, seed=5,
                                     include_readout_error=False)
        result = sampler.run(circuit, shots=4000, measured_qubits=[0, 1, 2])
        analytic = estimate_success(circuit, hardware_calibration, include_readout=False)
        # Trouble-free shots give |111>; errored shots land on |111> 1/8 of the time.
        expected = analytic.probability + (1 - analytic.probability) / 8
        assert result.success_rate("111") == pytest.approx(expected, abs=0.05)

    def test_sampler_counts_sum_to_shots(self, hardware_calibration):
        sampler = GateFailureSampler(hardware_calibration, seed=1)
        result = sampler.run(self._toffoli_circuit(), shots=123)
        assert sum(result.counts.values()) == 123
        assert result.shots == 123

    def test_sampler_restricts_to_active_qubits(self, hardware_calibration):
        wide = QuantumCircuit(20)
        wide.x(3).cx(3, 4)
        sampler = PauliTrajectorySampler(hardware_calibration, seed=2)
        result = sampler.run(wide, shots=32, measured_qubits=[3, 4])
        assert set(result.counts) <= {"00", "01", "10", "11"}
