"""Property-based tests (hypothesis) on the core data structures and passes.

Invariants checked on randomly generated circuits and placements:

* decomposition to the hardware basis never changes the circuit's unitary;
* optimisation passes never change the unitary and never add two-qubit gates;
* both compilation pipelines always emit circuits that respect the coupling
  map and preserve the program semantics (up to the routing permutation);
* the Trios router always delivers each Toffoli onto a connected trio;
* the layout passes always produce a valid bijection.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import assert_compilation_equivalent

from repro import QuantumCircuit, compile_baseline, compile_trios
from repro.compiler import check_connectivity
from repro.hardware import grid, johannesburg, line
from repro.passes import (
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeToBasisPass,
    GreedyInteractionLayoutPass,
    PropertySet,
)
from repro.sim import circuits_equivalent

DEVICES = {"johannesburg": johannesburg(), "grid": grid(), "line": line()}

_ONE_QUBIT_GATES = ("h", "x", "t", "tdg", "s", "z")
_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_circuits(draw, max_qubits: int = 4, max_gates: int = 10):
    """Random circuits over {1q Cliffords+T, CX, CCX} on up to ``max_qubits`` qubits."""
    num_qubits = draw(st.integers(min_value=3, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, "random")
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["1q", "2q", "3q"]))
        qubits = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_qubits - 1),
                min_size=3, max_size=3, unique=True,
            )
        )
        if kind == "1q":
            name = draw(st.sampled_from(_ONE_QUBIT_GATES))
            getattr(circuit, name)(qubits[0])
        elif kind == "2q":
            circuit.cx(qubits[0], qubits[1])
        else:
            circuit.ccx(qubits[0], qubits[1], qubits[2])
    return circuit


class TestDecompositionProperties:
    @given(circuit=small_circuits())
    @settings(**_SETTINGS)
    def test_basis_decomposition_preserves_unitary(self, circuit):
        decomposed = DecomposeToBasisPass().run(circuit, PropertySet())
        assert {inst.name for inst in decomposed.instructions} <= {"u1", "u2", "u3", "cx"}
        assert circuits_equivalent(circuit, decomposed)

    @given(circuit=small_circuits())
    @settings(**_SETTINGS)
    def test_keeping_toffolis_preserves_unitary(self, circuit):
        kept = DecomposeToBasisPass(keep=("ccx", "ccz")).run(circuit, PropertySet())
        assert circuits_equivalent(circuit, kept)


class TestOptimizationProperties:
    @given(circuit=small_circuits(max_gates=14))
    @settings(**_SETTINGS)
    def test_cancellation_preserves_unitary_and_never_grows(self, circuit):
        optimized = CancelAdjacentInversesPass().run(circuit, PropertySet())
        assert len(optimized) <= len(circuit)
        assert circuits_equivalent(circuit, optimized)

    @given(circuit=small_circuits(max_gates=14))
    @settings(**_SETTINGS)
    def test_consolidation_preserves_unitary_and_2q_count(self, circuit):
        optimized = Consolidate1qRunsPass().run(circuit, PropertySet())
        assert optimized.two_qubit_gate_count() == circuit.two_qubit_gate_count()
        assert circuits_equivalent(circuit, optimized)


class TestLayoutProperties:
    @given(circuit=small_circuits(), device=st.sampled_from(sorted(DEVICES)))
    @settings(**_SETTINGS)
    def test_greedy_layout_is_a_bijection_onto_the_device(self, circuit, device):
        coupling_map = DEVICES[device]
        properties = PropertySet()
        GreedyInteractionLayoutPass(coupling_map).run(circuit, properties)
        layout = properties["layout"]
        placements = [layout.physical(q) for q in range(circuit.num_qubits)]
        assert len(set(placements)) == circuit.num_qubits
        assert all(0 <= p < coupling_map.num_qubits for p in placements)


class TestPipelineProperties:
    @given(
        circuit=small_circuits(max_gates=8),
        device=st.sampled_from(sorted(DEVICES)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**_SETTINGS)
    def test_baseline_pipeline_is_sound(self, circuit, device, seed):
        coupling_map = DEVICES[device]
        result = compile_baseline(circuit, coupling_map, seed=seed)
        assert check_connectivity(result.circuit, coupling_map) == []
        assert_compilation_equivalent(circuit, result, trials=1)

    @given(
        circuit=small_circuits(max_gates=8),
        device=st.sampled_from(sorted(DEVICES)),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**_SETTINGS)
    def test_trios_pipeline_is_sound(self, circuit, device, seed):
        coupling_map = DEVICES[device]
        result = compile_trios(circuit, coupling_map, seed=seed)
        assert check_connectivity(result.circuit, coupling_map) == []
        assert_compilation_equivalent(circuit, result, trials=1)

    @given(
        placement=st.lists(st.integers(min_value=0, max_value=19),
                           min_size=3, max_size=3, unique=True),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**_SETTINGS)
    def test_trios_never_uses_more_cnots_for_a_single_toffoli(self, placement, seed):
        coupling_map = DEVICES["johannesburg"]
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        layout = {i: placement[i] for i in range(3)}
        # Under deterministic routing the paper's claim holds exactly.
        baseline = compile_baseline(
            circuit, coupling_map, layout=layout, routing="greedy", seed=seed
        )
        trios = compile_trios(
            circuit, coupling_map, layout=layout, routing="greedy", seed=seed
        )
        assert trios.two_qubit_gate_count <= baseline.two_qubit_gate_count
        # Stochastic routing draws each pipeline's tied shortest paths
        # independently, so an unlucky trios draw can trail a lucky baseline
        # draw by up to one SWAP on adversarial placements (e.g. placement
        # [12, 0, 16] with seed 1 gives 26 vs 24, identically on the
        # pre-DAG-IR pipelines).
        baseline = compile_baseline(circuit, coupling_map, layout=layout, seed=seed)
        trios = compile_trios(circuit, coupling_map, layout=layout, seed=seed)
        assert trios.two_qubit_gate_count <= baseline.two_qubit_gate_count + 3
