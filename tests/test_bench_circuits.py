"""Tests for the Table 1 benchmark circuit generators."""

import itertools

import numpy as np
import pytest

from repro.bench_circuits import (
    PAPER_BENCHMARKS,
    PAPER_TABLE1,
    TOFFOLI_BENCHMARKS,
    TOFFOLI_FREE_BENCHMARKS,
    all_benchmark_statistics,
    benchmark_statistics,
    bernstein_vazirani,
    cnx_dirty,
    cnx_halfborrowed,
    cnx_inplace,
    cnx_logancilla,
    cuccaro_adder,
    cuccaro_layout,
    get_benchmark,
    grovers,
    incrementer_borrowedbit,
    qaoa_complete,
    qft_adder,
    qft_adder_layout,
    takahashi_adder,
    takahashi_layout,
)
from repro.exceptions import BenchmarkError
from repro.sim import StatevectorSimulator, basis_state

SIMULATOR = StatevectorSimulator()


def classical_output(circuit, input_bits):
    """Run a classical-reversible circuit on a basis state, return the output bits."""
    n = circuit.num_qubits
    out = SIMULATOR.run(circuit, basis_state(input_bits))
    index = int(np.argmax(np.abs(out)))
    assert abs(abs(out[index]) - 1.0) < 1e-6, "output is not a basis state"
    return [(index >> (n - 1 - q)) & 1 for q in range(n)]


class TestCnxConstructions:
    @pytest.mark.parametrize("builder,dirty", [(cnx_dirty, True), (cnx_halfborrowed, True)])
    def test_dirty_cnx_truth_table(self, builder, dirty):
        circuit = builder(3)
        n = circuit.num_qubits
        controls, target = list(range(3)), n - 1
        for bits in itertools.product([0, 1], repeat=n):
            out = classical_output(circuit, list(bits))
            expected = list(bits)
            if all(bits[c] for c in controls):
                expected[target] ^= 1
            assert out == expected

    def test_clean_ancilla_cnx_truth_table(self):
        circuit = cnx_logancilla(4)
        n = circuit.num_qubits
        controls, ancillas, target = list(range(4)), list(range(4, n - 1)), n - 1
        for control_bits in itertools.product([0, 1], repeat=4):
            for target_bit in (0, 1):
                bits = [0] * n
                for qubit, bit in zip(controls, control_bits):
                    bits[qubit] = bit
                bits[target] = target_bit
                out = classical_output(circuit, bits)
                expected = list(bits)
                if all(control_bits):
                    expected[target] ^= 1
                assert out == expected
                # Clean ancillas must be returned to |0>.
                assert all(out[a] == 0 for a in ancillas)

    def test_inplace_cnx_truth_table(self):
        circuit = cnx_inplace(3)
        for bits in itertools.product([0, 1], repeat=4):
            out = classical_output(circuit, list(bits))
            expected = list(bits)
            if bits[0] and bits[1] and bits[2]:
                expected[3] ^= 1
            assert out == expected

    def test_parameter_validation(self):
        with pytest.raises(BenchmarkError):
            cnx_dirty(2)
        with pytest.raises(BenchmarkError):
            cnx_inplace(1)

    def test_toffoli_counts(self):
        assert cnx_dirty(6).count_ops()["ccx"] == 16
        assert cnx_halfborrowed(10).count_ops()["ccx"] == 32
        assert cnx_logancilla(10).count_ops()["ccx"] == 17


class TestAdders:
    @pytest.mark.parametrize("num_bits", [2, 3])
    def test_cuccaro_adds(self, num_bits):
        circuit = cuccaro_adder(num_bits)
        layout = cuccaro_layout(num_bits)
        for a in range(2**num_bits):
            for b in range(2**num_bits):
                bits = [0] * circuit.num_qubits
                for i in range(num_bits):
                    bits[layout.a[i]] = (a >> i) & 1
                    bits[layout.b[i]] = (b >> i) & 1
                out = classical_output(circuit, bits)
                result = sum(out[layout.b[i]] << i for i in range(num_bits))
                result += out[layout.carry_out] << num_bits
                assert result == a + b
                # The a register is restored.
                assert sum(out[layout.a[i]] << i for i in range(num_bits)) == a

    @pytest.mark.parametrize("num_bits", [2, 3, 4])
    def test_takahashi_adds(self, num_bits):
        circuit = takahashi_adder(num_bits, pad_to=2 * num_bits + 1)
        layout = takahashi_layout(num_bits)
        for a in range(2**num_bits):
            for b in range(2**num_bits):
                bits = [0] * circuit.num_qubits
                for i in range(num_bits):
                    bits[layout.a[i]] = (a >> i) & 1
                    bits[layout.b[i]] = (b >> i) & 1
                out = classical_output(circuit, bits)
                result = sum(out[layout.b[i]] << i for i in range(num_bits))
                result += out[layout.carry_out] << num_bits
                assert result == a + b

    @pytest.mark.parametrize("num_bits", [2, 3])
    def test_qft_adder_adds_mod_2n(self, num_bits):
        circuit = qft_adder(num_bits)
        layout = qft_adder_layout(num_bits)
        for a in range(2**num_bits):
            for b in range(2**num_bits):
                bits = [0] * circuit.num_qubits
                for i in range(num_bits):
                    bits[layout.a[i]] = (a >> i) & 1
                    bits[layout.b[i]] = (b >> i) & 1
                out = SIMULATOR.run(circuit, basis_state(bits))
                index = int(np.argmax(np.abs(out)))
                outbits = [(index >> (circuit.num_qubits - 1 - q)) & 1
                           for q in range(circuit.num_qubits)]
                result = sum(outbits[layout.b[i]] << i for i in range(num_bits))
                assert result == (a + b) % (2**num_bits)

    def test_qft_adder_has_no_toffolis(self):
        assert "ccx" not in qft_adder(8).count_ops()

    def test_adder_validation(self):
        with pytest.raises(BenchmarkError):
            cuccaro_adder(0)
        with pytest.raises(BenchmarkError):
            takahashi_adder(1)


class TestAlgorithms:
    def test_grover_amplifies_marked_state(self):
        circuit = grovers(4)
        data = list(range(4))
        probabilities = SIMULATOR.probabilities(circuit, qubits=data)
        assert probabilities.get("1111", 0.0) > 0.9

    def test_grover_custom_marked_state(self):
        circuit = grovers(4, marked="1010")
        probabilities = SIMULATOR.probabilities(circuit, qubits=list(range(4)))
        assert probabilities.get("1010", 0.0) > 0.9

    def test_bv_recovers_secret(self):
        secret = "10110"
        circuit = bernstein_vazirani(6, secret=secret)
        probabilities = SIMULATOR.probabilities(circuit, qubits=list(range(5)))
        assert probabilities.get(secret, 0.0) == pytest.approx(1.0)

    def test_bv_gate_counts(self):
        circuit = bernstein_vazirani(20)
        assert circuit.count_ops()["cx"] == 19
        assert "ccx" not in circuit.count_ops()

    def test_qaoa_structure(self):
        circuit = qaoa_complete(10)
        counts = circuit.count_ops()
        assert counts["rzz"] == 45
        assert counts["h"] == 10
        assert "ccx" not in counts

    def test_qaoa_multiple_rounds_and_seed(self):
        circuit = qaoa_complete(4, rounds=2, seed=3)
        assert circuit.count_ops()["rzz"] == 12

    def test_incrementer_increments(self):
        circuit = incrementer_borrowedbit(3)
        for value in range(8):
            for borrowed in (0, 1):
                bits = [(value >> 0) & 1, (value >> 1) & 1, (value >> 2) & 1, borrowed]
                out = classical_output(circuit, bits)
                result = out[0] + 2 * out[1] + 4 * out[2]
                assert result == (value + 1) % 8
                assert out[3] == borrowed  # the borrowed bit is restored

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            grovers(2)
        with pytest.raises(BenchmarkError):
            bernstein_vazirani(1)
        with pytest.raises(BenchmarkError):
            qaoa_complete(1)
        with pytest.raises(BenchmarkError):
            incrementer_borrowedbit(1)
        with pytest.raises(BenchmarkError):
            grovers(4, marked="abc")


class TestSuite:
    def test_all_benchmarks_build(self):
        for name in PAPER_BENCHMARKS:
            circuit = get_benchmark(name)
            assert len(circuit) > 0

    def test_qubit_counts_match_table1(self):
        for stats in all_benchmark_statistics():
            assert stats.qubits == PAPER_TABLE1[stats.name]["qubits"], stats.name

    @pytest.mark.parametrize(
        "name", ["cnx_dirty-11", "cnx_halfborrowed-19", "cnx_logancilla-19",
                 "cuccaro_adder-20", "grovers-9"]
    )
    def test_toffoli_counts_match_table1_exactly(self, name):
        stats = benchmark_statistics(name)
        assert stats.toffolis == PAPER_TABLE1[name]["toffolis"]

    def test_toffoli_free_benchmarks_have_no_toffolis(self):
        for name in TOFFOLI_FREE_BENCHMARKS:
            assert benchmark_statistics(name).toffolis == 0

    def test_toffoli_benchmarks_have_toffolis(self):
        for name in TOFFOLI_BENCHMARKS:
            assert benchmark_statistics(name).toffolis > 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(BenchmarkError):
            get_benchmark("shor-2048")
