"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.circuits import QuantumCircuit
from repro.compiler.result import CompilationResult
from repro.hardware import (
    CouplingMap,
    clusters,
    grid,
    johannesburg,
    johannesburg_aug19_2020,
    line,
    near_term_calibration,
)
from repro.sim.equivalence import assert_routed_equivalent

# The whole suite runs with pass-contract validation at its strictest: every
# PassManager built anywhere in the tests (directly or via transpile) checks
# declared contracts, lints the IR structurally after every pass, and
# re-verifies held invariants.  CI exports the same variable, so a pass that
# corrupts the DAG or breaks a pipeline contract fails loudly at the
# offending pass instead of via a downstream symptom.
os.environ.setdefault("REPRO_VALIDATE", "full")

# ----------------------------------------------------------------------
# Hypothesis profiles
# ----------------------------------------------------------------------
# "dev" (default): the interactive profile — random seeds, no deadline (the
# simulators' first-call numpy warm-up trips per-example deadlines).
# "ci": fully reproducible — derandomized (the seed is fixed by hypothesis
# from each test's structure), no deadline, and failure blobs printed so a CI
# log alone is enough to replay a falsifying example locally.
# Select with HYPOTHESIS_PROFILE=ci (the CI workflow exports it).
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def johannesburg_map() -> CouplingMap:
    return johannesburg()


@pytest.fixture
def grid_map() -> CouplingMap:
    return grid()


@pytest.fixture
def line_map() -> CouplingMap:
    return line()


@pytest.fixture
def clusters_map() -> CouplingMap:
    return clusters()


@pytest.fixture
def hardware_calibration():
    return johannesburg_aug19_2020()


@pytest.fixture
def near_term():
    return near_term_calibration()


def assert_compilation_equivalent(
    logical: QuantumCircuit,
    result: CompilationResult,
    trials: int = 3,
    seed: int = 7,
    max_active: int = 14,
) -> None:
    """Check a compiled circuit acts like the original on random product inputs.

    Thin shim over :func:`repro.sim.equivalence.assert_routed_equivalent`
    (the library's own equivalence harness, which grew out of this helper):
    the logical circuit's qubit ``q`` starts on device wire ``initial[q]``
    and its data must end on wire ``final[q]``, with every other involved
    wire returned to |0⟩.
    """
    assert_routed_equivalent(
        logical,
        result.circuit,
        result.initial_layout.to_dict(),
        result.final_layout.to_dict(),
        trials=trials,
        seed=seed,
        max_active=max_active,
    )
