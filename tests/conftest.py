"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.compiler.result import CompilationResult
from repro.hardware import (
    CouplingMap,
    clusters,
    grid,
    johannesburg,
    johannesburg_aug19_2020,
    line,
    near_term_calibration,
)
from repro.sim import StatevectorSimulator, statevector_fidelity, zero_state


@pytest.fixture
def johannesburg_map() -> CouplingMap:
    return johannesburg()


@pytest.fixture
def grid_map() -> CouplingMap:
    return grid()


@pytest.fixture
def line_map() -> CouplingMap:
    return line()


@pytest.fixture
def clusters_map() -> CouplingMap:
    return clusters()


@pytest.fixture
def hardware_calibration():
    return johannesburg_aug19_2020()


@pytest.fixture
def near_term():
    return near_term_calibration()


def _reduce_to_wires(circuit: QuantumCircuit, wires) -> QuantumCircuit:
    """Re-express a circuit on a compact set of wires (wires[i] -> i)."""
    compact = {wire: index for index, wire in enumerate(wires)}
    mapping = {w: compact[w] for w in circuit.active_qubits()}
    return circuit.remap_qubits(mapping, num_qubits=len(wires))


def assert_compilation_equivalent(
    logical: QuantumCircuit,
    result: CompilationResult,
    trials: int = 3,
    seed: int = 7,
    max_active: int = 14,
) -> None:
    """Check a compiled circuit acts like the original on random product inputs.

    The logical circuit's qubit ``q`` starts on device wire ``initial[q]`` and
    its data ends on wire ``final[q]``; every other involved wire starts in
    |0⟩ and must end in |0⟩ (SWAP chains only move those zeros around).  The
    check prepares random single-qubit product states on the logical inputs,
    runs both circuits, and compares amplitudes wire by wire.
    """
    rng = np.random.default_rng(seed)
    simulator = StatevectorSimulator(num_qubits_limit=max_active + 2)
    compiled = result.circuit.without(["measure", "barrier"])
    logical = logical.without(["measure", "barrier"])
    initial = result.initial_layout.to_dict()
    final = result.final_layout.to_dict()
    active = sorted(
        compiled.active_qubits() | set(initial.values()) | set(final.values())
    )
    assert len(active) <= max_active, (
        f"{len(active)} active wires is too many for an equivalence check"
    )
    compact = {wire: index for index, wire in enumerate(active)}
    compiled_small = _reduce_to_wires(compiled, active)
    num_wires = len(active)
    num_logical = logical.num_qubits

    for _ in range(trials):
        angles = rng.uniform(0, 2 * np.pi, size=(num_logical, 3))
        # Reference: preparation + logical circuit on the logical register.
        reference = QuantumCircuit(num_logical)
        for qubit in range(num_logical):
            reference.u3(*angles[qubit], qubit)
        reference.extend(logical.instructions)
        expected_small = simulator.run(reference)
        # Compiled: the same preparation applied on the initial wires.
        prep = QuantumCircuit(num_wires)
        for qubit in range(num_logical):
            prep.u3(*angles[qubit], compact[initial[qubit]])
        prep.extend(compiled_small.instructions)
        actual = simulator.run(prep)
        # Build the expected full state: logical output amplitudes live on the
        # final wires, every other wire is |0⟩.
        expected = np.zeros(2**num_wires, dtype=complex)
        for index in range(2**num_logical):
            wire_index = 0
            for qubit in range(num_logical):
                bit = (index >> (num_logical - 1 - qubit)) & 1
                if bit:
                    wire_index |= 1 << (num_wires - 1 - compact[final[qubit]])
            expected[wire_index] = expected_small[index]
        fidelity = statevector_fidelity(actual, expected)
        assert fidelity > 1 - 1e-7, (
            f"compiled circuit for {logical.name!r} deviates from the original "
            f"(fidelity {fidelity:.6f})"
        )
