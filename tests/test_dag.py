"""Unit and property tests for the mutable DagCircuit IR."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import DagCircuit, Instruction, QuantumCircuit, library
from repro.exceptions import CircuitError
from repro.passes.toffoli import toffoli_6cnot
from repro.sim import circuits_equivalent

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_ONE_QUBIT = ("h", "x", "t", "tdg", "s", "z")


@st.composite
def circuits_with_everything(draw, max_qubits: int = 5, max_gates: int = 16):
    """Random circuits over 1q/2q/3q gates plus measure and barrier."""
    num_qubits = draw(st.integers(min_value=3, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, "random")
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["1q", "2q", "3q", "measure", "barrier"]))
        qubits = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_qubits - 1),
                min_size=3, max_size=3, unique=True,
            )
        )
        if kind == "1q":
            getattr(circuit, draw(st.sampled_from(_ONE_QUBIT)))(qubits[0])
        elif kind == "2q":
            circuit.cx(qubits[0], qubits[1])
        elif kind == "3q":
            circuit.ccx(qubits[0], qubits[1], qubits[2])
        elif kind == "measure":
            circuit.measure(qubits[0], draw(st.integers(min_value=0, max_value=3)))
        else:
            circuit.barrier()
    return circuit


def wire_orders(circuit: QuantumCircuit):
    """Per-wire instruction sequences (qubit wires and clbit wires)."""
    orders = {}
    for instruction in circuit.instructions:
        for qubit in instruction.qubits:
            orders.setdefault(("q", qubit), []).append(instruction)
        for clbit in instruction.clbits:
            orders.setdefault(("c", clbit), []).append(instruction)
    return orders


class TestRoundTrip:
    @given(circuit=circuits_with_everything())
    @settings(**_SETTINGS)
    def test_to_circuit_of_from_circuit_is_identity(self, circuit):
        dag = DagCircuit.from_circuit(circuit)
        back = dag.to_circuit()
        assert back.num_qubits == circuit.num_qubits
        assert back.instructions == circuit.instructions

    @given(circuit=circuits_with_everything())
    @settings(**_SETTINGS)
    def test_from_circuit_of_to_circuit_preserves_wire_order(self, circuit):
        dag = DagCircuit.from_circuit(circuit)
        rebuilt = DagCircuit.from_circuit(dag.to_circuit())
        assert wire_orders(rebuilt.to_circuit()) == wire_orders(circuit)

    @given(circuit=circuits_with_everything())
    @settings(**_SETTINGS)
    def test_wire_chain_matches_instruction_order(self, circuit):
        dag = DagCircuit.from_circuit(circuit)
        for qubit in range(circuit.num_qubits):
            chain = []
            node = dag.wire_front(qubit)
            while node is not None:
                chain.append(node.instruction)
                node = node.next_on(qubit)
            expected = [
                inst for inst in circuit.instructions if qubit in inst.qubits
            ]
            assert chain == expected


class TestMutation:
    def _hcx(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(1).cx(1, 2)
        return DagCircuit.from_circuit(circuit)

    def test_remove_relinks_wires(self):
        dag = self._hcx()
        t_node = [n for n in dag if n.name == "t"][0]
        dag.remove_node(t_node)
        names = [n.name for n in dag]
        assert names == ["h", "cx", "cx"]
        first_cx, second_cx = [n for n in dag if n.name == "cx"]
        assert first_cx.next_on(1) is second_cx
        assert second_cx.prev_on(1) is first_cx
        with pytest.raises(CircuitError):
            dag.remove_node(t_node)

    def test_insert_before_and_after(self):
        dag = self._hcx()
        t_node = [n for n in dag if n.name == "t"][0]
        dag.insert_before(t_node, Instruction(library.x_gate(), (1,)))
        dag.insert_after(t_node, Instruction(library.z_gate(), (1,)))
        assert [n.name for n in dag] == ["h", "cx", "x", "t", "z", "cx"]
        # Wire 1 chain must interleave correctly.
        chain = []
        node = dag.wire_front(1)
        while node is not None:
            chain.append(node.name)
            node = node.next_on(1)
        assert chain == ["cx", "x", "t", "z", "cx"]

    def test_insert_on_unshared_wire_scans_for_neighbours(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(2)
        dag = DagCircuit.from_circuit(circuit)
        anchor = [n for n in dag if n.qubits == (2,)][0]
        node = dag.insert_before(anchor, Instruction(library.x_gate(), (0,)))
        assert [n.name for n in dag] == ["h", "x", "h"]
        assert node.prev_on(0).name == "h"
        assert node.next_on(0) is None
        assert dag.wire_back(0) is node

    def test_substitute_with_circuit_preserves_semantics(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).ccx(0, 2, 3).cx(3, 1)
        dag = DagCircuit.from_circuit(circuit)
        ccx_node = [n for n in dag if n.name == "ccx"][0]
        replacement = QuantumCircuit(3)
        replacement.extend(toffoli_6cnot(0, 1, 2))
        dag.substitute_node_with_circuit(ccx_node, replacement)
        out = dag.to_circuit()
        assert out.count_ops().get("ccx", 0) == 0
        assert circuits_equivalent(circuit, out)
        # The replacement occupies the old node's slot: h first, cx(3,1) last.
        assert out.instructions[0].name == "h"
        assert out.instructions[-1].qubits == (3, 1)

    def test_substitute_rejects_foreign_wires(self):
        dag = self._hcx()
        t_node = [n for n in dag if n.name == "t"][0]
        with pytest.raises(CircuitError):
            dag.substitute_node_with_instructions(
                t_node, [Instruction(library.x_gate(), (2,))]
            )

    def test_modification_count_tracks_edits(self):
        dag = self._hcx()
        before = dag.modification_count
        node = [n for n in dag if n.name == "t"][0]
        dag.remove_node(node)
        assert dag.modification_count == before + 1
        dag.append(library.x_gate(), (0,))
        assert dag.modification_count == before + 2


class TestQueries:
    def test_front_layer_and_per_wire_queries(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(2).cx(0, 1).cx(1, 2)
        dag = DagCircuit.from_circuit(circuit)
        assert sorted(n.name for n in dag.front_layer()) == ["h", "h"]
        first_cx = [n for n in dag if n.name == "cx"][0]
        assert [n.name for n in dag.predecessors(first_cx)] == ["h"]
        assert [n.name for n in dag.successors(first_cx)] == ["cx"]

    def test_interactions_match_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2).cx(0, 1)
        dag = DagCircuit.from_circuit(circuit)
        assert dag.interactions(toffoli_weight=2) == circuit.interactions(
            toffoli_weight=2
        )

    def test_count_ops_and_len(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).measure(0)
        dag = DagCircuit.from_circuit(circuit)
        assert len(dag) == 3
        assert dag.count_ops() == {"h": 1, "cx": 1, "measure": 1}


class TestFrozen:
    def test_frozen_dag_rejects_mutation(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        dag = circuit.dag()
        assert dag.frozen
        with pytest.raises(CircuitError):
            dag.append(library.x_gate(), (1,))
        with pytest.raises(CircuitError):
            dag.remove_node(dag.head)


class TestCircuitMemoization:
    def test_depth_invalidated_by_append_after_query(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert circuit.depth() == 1
        circuit.cx(0, 1)  # append *after* a depth() call must invalidate
        assert circuit.depth() == 2
        circuit.x(1)
        assert circuit.depth() == 3

    def test_count_ops_invalidated_by_append(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert circuit.count_ops() == {"h": 1}
        circuit.h(0)
        assert circuit.count_ops() == {"h": 2}

    def test_count_ops_result_is_not_aliased(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        counts = circuit.count_ops()
        counts["h"] = 99
        assert circuit.count_ops() == {"h": 1}

    def test_shared_dag_is_memoized_and_invalidated(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        first = circuit.dag()
        assert circuit.dag() is first  # shared, not rebuilt per call
        assert first.depth() == 2
        circuit.x(1)
        second = circuit.dag()
        assert second is not first
        assert second.depth() == 3

    def test_copy_does_not_share_cache(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        assert circuit.depth() == 1
        clone = circuit.copy()
        clone.h(0)
        assert clone.depth() == 2
        assert circuit.depth() == 1


class TestPickling:
    """Circuits and DAGs must survive pickling (the --jobs pool boundary)."""

    def _deep_circuit(self, depth: int = 6000) -> QuantumCircuit:
        circuit = QuantumCircuit(2)
        for _ in range(depth // 2):
            circuit.h(0).cx(0, 1)
        return circuit

    def test_circuit_with_cached_dag_pickles(self):
        import pickle

        circuit = self._deep_circuit()
        circuit.depth()
        circuit.dag()  # populates the cache with the linked-node DAG
        restored = pickle.loads(pickle.dumps(circuit))
        assert [str(i) for i in restored.instructions] == [
            str(i) for i in circuit.instructions
        ]
        assert restored.depth() == circuit.depth()

    def test_dag_pickle_round_trip(self):
        import pickle

        dag = DagCircuit.from_circuit(self._deep_circuit()).freeze()
        restored = pickle.loads(pickle.dumps(dag))
        assert restored.frozen
        assert [str(i) for i in restored.instructions] == [
            str(i) for i in dag.instructions
        ]

    def test_deepcopy_with_cached_dag(self):
        import copy

        circuit = self._deep_circuit()
        circuit.dag()
        clone = copy.deepcopy(circuit)
        clone.h(0)
        assert clone.depth() == circuit.depth() + 1


class TestSubstituteAtomicity:
    def test_failed_substitution_leaves_dag_untouched(self):
        dag = DagCircuit(3)
        dag.append(library.h_gate(), (0,))
        node = dag.append(library.cx_gate(), (0, 1))
        before = [str(i) for i in dag.instructions]
        bad = [
            Instruction(library.cx_gate(), (0, 1), ()),
            Instruction(library.cx_gate(), (0, 2), ()),  # wire 2: not the node's
        ]
        with pytest.raises(CircuitError):
            dag.substitute_node_with_instructions(node, bad)
        assert [str(i) for i in dag.instructions] == before
