"""Tests for the unified observability layer (``repro.obs``).

Covers the tracer and metrics primitives, the Chrome trace-event export, and
the three cross-layer guarantees the instrumentation makes:

- worker spans survive the process-pool boundary and arrive re-parented under
  the driver's per-attempt ``cell`` spans;
- a faulted (retried / timed-out) cell's trace shows every attempt plus the
  backoff spans between them;
- a parallel (``jobs=N``) experiment sweep records the same span multiset as
  the serial sweep.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro import obs
from repro.experiments import run_benchmark_experiment
from repro.experiments.benchmarks import clear_compile_cache
from repro.hardware.library import johannesburg
from repro.runtime import CellRunner, FailurePolicy, Fault, FaultPlan

# Near-zero backoff so retry loops don't sleep (mirrors test_runtime).
FAST = dict(backoff_base=0.001, backoff_cap=0.002, backoff_jitter=0.0)


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    """Every test starts and ends with telemetry off and no stray env."""
    monkeypatch.delenv(obs.TRACE_ENV_VAR, raising=False)
    obs.disable()
    yield
    obs.disable()


def traced_cell(payload):
    """Pool worker that emits its own span and simulator-style metrics."""
    with obs.span("worker_op", category="test", payload=payload):
        obs.counter("test.cells").inc()
    return payload + 1


# ----------------------------------------------------------------------
# Tracer primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_are_parented(self):
        obs.enable()
        with obs.span("outer", category="test") as outer:
            outer.add_attrs(level=0)
            with obs.span("inner", category="test"):
                pass
        spans = {s.name: s for s in obs.trace_spans()}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attrs["level"] == 0
        assert spans["inner"].start >= spans["outer"].start
        assert spans["inner"].end <= spans["outer"].end + 1e-6

    def test_disabled_is_a_noop(self):
        assert not obs.is_enabled()
        with obs.span("ghost", category="test") as handle:
            handle.add_attrs(ignored=True)
        assert obs.trace_spans() == []
        obs.counter("ghost.counter").inc()
        obs.histogram("ghost.hist").observe(1.0)
        assert obs.metrics_summary() == {}

    def test_clear_keeps_collection_on(self):
        obs.enable()
        with obs.span("before", category="test"):
            pass
        obs.clear()
        assert obs.trace_spans() == []
        assert obs.is_enabled()
        with obs.span("after", category="test"):
            pass
        assert [s.name for s in obs.trace_spans()] == ["after"]

    def test_spans_pickle_safely(self):
        obs.enable()
        with obs.span("picklable", category="test", payload=[1, 2]):
            pass
        (span,) = obs.trace_spans()
        clone = pickle.loads(pickle.dumps(span))
        assert clone == span
        assert clone.attrs["payload"] == [1, 2]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge_summary_shape(self):
        obs.enable()
        obs.counter("compiles").inc()
        obs.counter("compiles").inc(2)
        obs.gauge("pool.workers").set(4)
        summary = obs.metrics_summary()
        assert summary["compiles"] == {"count": 3}
        assert summary["pool.workers"] == {"value": 4}

    def test_histogram_percentiles(self):
        obs.enable()
        hist = obs.histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        stats = obs.metrics_summary()["latency"]
        assert stats["count"] == 100
        assert stats["min"] == 1.0 and stats["max"] == 100.0
        assert stats["sum"] == pytest.approx(5050.0)
        assert 49.0 <= stats["p50"] <= 51.0
        assert 89.0 <= stats["p90"] <= 91.0
        assert stats["p90"] <= stats["p99"] <= 100.0


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_export_and_validate(self, tmp_path):
        obs.enable()
        with obs.span("root", category="test"):
            with obs.span("child", category="test"):
                pass
        out = tmp_path / "trace.json"
        assert obs.export_chrome_trace(str(out)) == 2
        report = obs.validate_chrome_trace(str(out))
        assert report["events"] == 2
        assert report["categories"] == {"test": 2}

    def test_parent_links_resolve(self, tmp_path):
        obs.enable()
        with obs.span("root", category="test"):
            with obs.span("child", category="test"):
                pass
        out = tmp_path / "trace.json"
        obs.export_chrome_trace(str(out))
        events = json.loads(out.read_text())["traceEvents"]
        ids = {e["args"]["span_id"] for e in events}
        for event in events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in ids

    def test_empty_trace_is_still_valid(self, tmp_path):
        obs.enable()
        out = tmp_path / "trace.json"
        assert obs.export_chrome_trace(str(out)) == 0
        assert obs.validate_chrome_trace(str(out))["events"] == 0

    def test_env_var_exports_at_interpreter_exit(self, tmp_path):
        """REPRO_TRACE=trace.json traces a plain library script, no CLI."""
        out = tmp_path / "trace.json"
        script = (
            "from repro import obs\n"
            "obs.maybe_enable_from_env()\n"
            "with obs.span('library_work', category='test'):\n"
            "    pass\n"
        )
        env = dict(os.environ)
        env[obs.TRACE_ENV_VAR] = str(out)
        env["PYTHONPATH"] = str(Path(obs.__file__).resolve().parents[2])
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        report = obs.validate_chrome_trace(out)
        assert report["events"] == 1
        assert report["categories"] == {"test": 1}


# ----------------------------------------------------------------------
# Spans across the process-pool boundary
# ----------------------------------------------------------------------
class TestPoolTelemetry:
    def test_worker_spans_survive_the_pool_boundary(self):
        obs.enable()
        runner = CellRunner(jobs=2, faults=None, label="obs pool test")
        records = runner.run(list(range(4)), traced_cell)
        assert [r.value for r in records] == [1, 2, 3, 4]

        spans = obs.trace_spans()
        by_id = {s.span_id: s for s in spans}
        worker_spans = [s for s in spans if s.name == "worker_op"]
        assert len(worker_spans) == 4
        # The spans were recorded in worker processes, then adopted.
        driver = os.getpid()
        assert all(s.pid != driver for s in worker_spans)
        # Each one is re-parented under a driver-side per-attempt cell span.
        for span in worker_spans:
            parent = by_id[span.parent_id]
            assert parent.name == "cell"
            assert parent.category == "runtime.cell"
            assert parent.pid == driver
        # Worker metric increments merged into the driver registry.
        assert obs.metrics_summary()["test.cells"] == {"count": 4}

    def test_retried_cell_trace_shows_attempts_and_backoff(self):
        obs.enable()
        plan = FaultPlan.single(1, Fault("raise", attempts=(1,)))
        runner = CellRunner(
            jobs=2,
            policy=FailurePolicy(retries=2, **FAST),
            faults=plan,
            label="obs retry test",
        )
        records = runner.run(list(range(3)), traced_cell)
        assert records[1].ok and records[1].attempts == 2

        spans = obs.trace_spans()
        cell_1 = [
            s for s in spans
            if s.name == "cell" and s.attrs.get("index") == 1
        ]
        assert sorted(s.attrs["attempt"] for s in cell_1) == [1, 2]
        statuses = {s.attrs["attempt"]: s.attrs["status"] for s in cell_1}
        assert statuses == {1: "failed", 2: "ok"}
        backoffs = [s for s in spans if s.category == "runtime.backoff"]
        assert [s.attrs.get("index") for s in backoffs] == [1]

    def test_timed_out_cell_trace_shows_timeout_attempts(self):
        obs.enable()
        plan = FaultPlan.single(1, Fault("hang", duration=60.0))
        runner = CellRunner(
            jobs=2,
            policy=FailurePolicy(timeout=0.5, retries=1, on_error="skip", **FAST),
            faults=plan,
            label="obs timeout test",
        )
        records = runner.run(list(range(3)), traced_cell)
        assert records[1].status == "timed_out"

        spans = obs.trace_spans()
        timed_out = [
            s for s in spans
            if s.name == "cell" and s.attrs.get("status") == "timed_out"
        ]
        assert sorted(s.attrs["attempt"] for s in timed_out) == [1, 2]
        assert all(s.attrs["index"] == 1 for s in timed_out)
        backoffs = [s for s in spans if s.category == "runtime.backoff"]
        assert [s.attrs.get("index") for s in backoffs] == [1]
        # The hung worker was killed, so the pool had to respawn.
        assert any(s.category == "runtime.pool" for s in spans)


# ----------------------------------------------------------------------
# Parallel sweep == serial sweep (span multiset)
# ----------------------------------------------------------------------
class TestParallelTraceEquivalence:
    def test_jobs2_sweep_matches_serial_span_multiset(self):
        topologies = {"johannesburg": johannesburg}
        benchmarks = ["cnx_inplace-4", "incrementer_borrowedbit-5"]

        def traced_sweep(jobs):
            obs.disable()
            obs.enable()
            clear_compile_cache()
            run_benchmark_experiment(
                topologies=topologies, benchmarks=benchmarks, jobs=jobs
            )
            names = Counter((s.category, s.name) for s in obs.trace_spans())
            metrics = obs.metrics_summary()
            obs.disable()
            return names, metrics

        serial_names, serial_metrics = traced_sweep(jobs=1)
        pool_names, pool_metrics = traced_sweep(jobs=2)
        assert pool_names == serial_names
        assert serial_names[("compiler.pass", "TriosRouter")] > 0
        assert pool_metrics == serial_metrics
        assert serial_metrics["sim.estimator.calls"]["count"] > 0
