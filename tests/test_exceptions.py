"""The exception hierarchy must survive process boundaries intact.

The fault-tolerant runtime ships worker exceptions back to the driver through
``multiprocessing`` pickling, so every :class:`~repro.exceptions.ReproError`
subclass — current and future — must round-trip through pickle with its type,
message and arguments preserved.  The discovery is recursive over
``__subclasses__()`` so a new exception added anywhere in the package is
covered automatically.
"""

from __future__ import annotations

import pickle

import pytest

import repro  # noqa: F401  (registers the whole package's exception classes)
from repro.exceptions import ReproError
from repro.runtime import ExceptionRecord


def all_repro_errors():
    """Every class in the ReproError hierarchy, depth-first, no duplicates."""
    seen = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.append(cls)
        stack.extend(cls.__subclasses__())
    return seen


ERROR_CLASSES = all_repro_errors()


def test_hierarchy_is_nontrivial():
    # Guard against the discovery silently collapsing: the seed hierarchy
    # has ReproError plus at least a dozen concrete subclasses.
    assert len(ERROR_CLASSES) >= 13
    names = {cls.__name__ for cls in ERROR_CLASSES}
    assert {"ReproError", "TranspilerError", "SimulationError",
            "ExecutionError", "FaultInjectionError"} <= names


@pytest.mark.parametrize(
    "cls", ERROR_CLASSES, ids=lambda cls: cls.__name__
)
def test_pickle_roundtrip_preserves_type_and_message(cls):
    original = cls("the calibration file is from the wrong device")
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert clone.args == original.args
    assert str(clone) == str(original)
    assert isinstance(clone, ReproError)


@pytest.mark.parametrize(
    "cls", ERROR_CLASSES, ids=lambda cls: cls.__name__
)
def test_pickle_roundtrip_preserves_extra_args(cls):
    # Workers may raise with structured payloads, not just a message; the
    # default Exception reduce protocol must carry every positional arg.
    original = cls("message", {"pass": "router", "invariant": "connectivity"}, 7)
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert clone.args == original.args


def test_exception_record_roundtrip():
    # The runtime's pickle-safe stand-in for a worker exception: type name,
    # message and formatted traceback survive, and the record itself pickles.
    try:
        raise ReproError("worker blew up")
    except ReproError as exc:
        record = ExceptionRecord.from_exception(exc)
    assert record.type_name == "ReproError"
    assert record.message == "worker blew up"
    assert "worker blew up" in record.traceback_text
    assert "ReproError" in record.traceback_text
    clone = pickle.loads(pickle.dumps(record))
    assert clone == record
    assert str(clone) == "ReproError: worker blew up"
