"""Tests for layout, routing (baseline and Trios), optimisation and scheduling passes."""

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import LayoutError, RoutingError
from repro.hardware import CouplingMap, line
from repro.passes import (
    ASAPSchedulePass,
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    FixedLayoutPass,
    GreedyInteractionLayoutPass,
    GreedySwapRouter,
    Layout,
    LegalizationRouter,
    NoiseAwareLayoutPass,
    PassManager,
    PropertySet,
    RemoveIdentitiesPass,
    TrivialLayoutPass,
    TriosRouter,
    asap_schedule,
)
from repro.sim import circuits_equivalent


class TestLayout:
    def test_bijection_enforced(self):
        with pytest.raises(LayoutError):
            Layout({0: 3, 1: 3})

    def test_physical_and_logical_lookup(self):
        layout = Layout({0: 5, 1: 2})
        assert layout.physical(0) == 5
        assert layout.logical(2) == 1
        assert layout.logical(9) is None
        with pytest.raises(LayoutError):
            layout.physical(7)

    def test_swap_physical_moves_data(self):
        layout = Layout({0: 5, 1: 2})
        layout.swap_physical(5, 2)
        assert layout.physical(0) == 2
        assert layout.physical(1) == 5
        # Swapping with an empty wire moves the data there.
        layout.swap_physical(2, 9)
        assert layout.physical(0) == 9

    def test_trivial(self):
        assert Layout.trivial(3).to_dict() == {0: 0, 1: 1, 2: 2}


class TestLayoutPasses:
    def test_trivial_layout_pass(self, johannesburg_map):
        circuit = QuantumCircuit(5)
        properties = PropertySet()
        TrivialLayoutPass(johannesburg_map).run(circuit, properties)
        assert properties["layout"].to_dict() == {i: i for i in range(5)}

    def test_fixed_layout_pass_validates(self, johannesburg_map):
        circuit = QuantumCircuit(3)
        with pytest.raises(LayoutError):
            FixedLayoutPass(johannesburg_map, {0: 1, 1: 2}).run(circuit, PropertySet())
        with pytest.raises(LayoutError):
            FixedLayoutPass(johannesburg_map, {0: 1, 1: 2, 2: 99}).run(circuit, PropertySet())

    def test_circuit_larger_than_device_rejected(self):
        small = CouplingMap(2, [(0, 1)])
        with pytest.raises(LayoutError):
            TrivialLayoutPass(small).run(QuantumCircuit(3), PropertySet())

    def test_greedy_layout_places_interacting_qubits_nearby(self, johannesburg_map):
        circuit = QuantumCircuit(3)
        for _ in range(5):
            circuit.ccx(0, 1, 2)
        properties = PropertySet()
        GreedyInteractionLayoutPass(johannesburg_map).run(circuit, properties)
        layout = properties["layout"]
        placed = [layout.physical(q) for q in range(3)]
        assert len(set(placed)) == 3
        assert johannesburg_map.total_distance(placed) <= 4

    def test_noise_aware_layout_avoids_bad_edges(self, hardware_calibration):
        cmap = line(4)
        noisy = hardware_calibration.with_edge_errors({(0, 1): 0.4, (1, 2): 0.001, (2, 3): 0.001})
        circuit = QuantumCircuit(2)
        for _ in range(3):
            circuit.cx(0, 1)
        properties = PropertySet()
        NoiseAwareLayoutPass(cmap, noisy).run(circuit, properties)
        layout = properties["layout"]
        pair = {layout.physical(0), layout.physical(1)}
        assert pair != {0, 1}


class TestBaselineRouter:
    def test_adjacent_gates_need_no_swaps(self, line_map):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        routed, properties = PassManager(
            [TrivialLayoutPass(line_map), GreedySwapRouter(line_map)]
        ).run(circuit)
        assert properties["swaps_inserted"] == 0
        assert routed.count_ops().get("swap", 0) == 0

    def test_distant_gate_gets_swaps_and_respects_coupling(self, line_map):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        routed, properties = PassManager(
            [TrivialLayoutPass(line_map), GreedySwapRouter(line_map)]
        ).run(circuit)
        assert properties["swaps_inserted"] == 3
        for inst in routed.instructions:
            if inst.gate.num_qubits == 2:
                assert line_map.are_adjacent(*inst.qubits)

    def test_final_layout_tracks_data_movement(self, line_map):
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        _, properties = PassManager(
            [TrivialLayoutPass(line_map), GreedySwapRouter(line_map)]
        ).run(circuit)
        final = properties["final_layout"]
        # Qubit 0's data walked down the line to sit next to qubit 4.
        assert final.physical(0) == 3
        assert final.physical(4) == 4

    def test_routed_circuit_is_equivalent(self, line_map):
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 3).t(3).cx(1, 2).cx(0, 1)
        routed, properties = PassManager(
            [TrivialLayoutPass(line_map), GreedySwapRouter(line_map), DecomposeSwapsPass()]
        ).run(circuit)
        initial = properties["initial_layout"].to_dict()
        final = properties["final_layout"].to_dict()
        embedded = circuit.remap_qubits(initial, num_qubits=line_map.num_qubits)
        # Compare on the induced 4-qubit subspace of the line (wires 0..3).
        assert circuits_equivalent(
            embedded.remap_qubits({i: i for i in range(4)}, num_qubits=4),
            routed.remap_qubits({i: i for i in range(4)}, num_qubits=4),
            final_permutation={initial[q]: final[q] for q in initial},
        )

    def test_stochastic_mode_is_deterministic_per_seed(self, johannesburg_map):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2).cx(1, 2).cx(0, 1)
        def route(seed):
            return PassManager([
                FixedLayoutPass(johannesburg_map, {0: 0, 1: 9, 2: 15}),
                GreedySwapRouter(johannesburg_map, stochastic=True, seed=seed),
            ]).run(circuit)[1]["swaps_inserted"]
        assert route(3) == route(3)

    def test_measure_and_barrier_are_remapped(self, line_map):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).barrier().measure(0, 0).measure(1, 1)
        routed, _ = PassManager(
            [FixedLayoutPass(line_map, {0: 4, 1: 5}), GreedySwapRouter(line_map)]
        ).run(circuit)
        measured = [inst.qubits[0] for inst in routed.instructions if inst.name == "measure"]
        assert measured == [4, 5]

    def test_three_qubit_gate_rejected(self, line_map):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(RoutingError):
            PassManager([TrivialLayoutPass(line_map), GreedySwapRouter(line_map)]).run(circuit)


class TestTriosRouter:
    @pytest.mark.parametrize("placement", [
        {0: 0, 1: 4, 2: 15},
        {0: 6, 1: 17, 2: 3},
        {0: 19, 1: 0, 2: 10},
        {0: 5, 1: 6, 2: 7},
    ])
    def test_toffoli_lands_on_connected_qubits(self, johannesburg_map, placement):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        routed, properties = PassManager(
            [FixedLayoutPass(johannesburg_map, placement), TriosRouter(johannesburg_map)]
        ).run(circuit)
        toffolis = [inst for inst in routed.instructions if inst.name == "ccx"]
        assert len(toffolis) == 1
        assert johannesburg_map.subgraph_is_connected(list(toffolis[0].qubits))

    def test_already_connected_trio_needs_no_swaps(self, johannesburg_map):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        _, properties = PassManager(
            [FixedLayoutPass(johannesburg_map, {0: 5, 1: 6, 2: 7}), TriosRouter(johannesburg_map)]
        ).run(circuit)
        assert properties["swaps_inserted"] == 0

    def test_trios_uses_fewer_swaps_than_pairwise_routing(self, johannesburg_map):
        # The Figure 1 pathology: a distant Toffoli routed as a unit needs far
        # fewer SWAPs than routing its six decomposed CNOTs one by one.
        from repro.passes import DecomposeToBasisPass

        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        placement = {0: 0, 1: 4, 2: 15}
        _, trios_props = PassManager(
            [FixedLayoutPass(johannesburg_map, placement), TriosRouter(johannesburg_map)]
        ).run(circuit)
        _, baseline_props = PassManager(
            [
                DecomposeToBasisPass(),
                FixedLayoutPass(johannesburg_map, placement),
                GreedySwapRouter(johannesburg_map, stochastic=True, seed=0),
            ]
        ).run(circuit)
        assert trios_props["swaps_inserted"] < baseline_props["swaps_inserted"]

    def test_two_qubit_gates_still_routed(self, line_map):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2).ccx(0, 1, 2)
        routed, _ = PassManager(
            [FixedLayoutPass(line_map, {0: 0, 1: 10, 2: 19}), TriosRouter(line_map)]
        ).run(circuit)
        for inst in routed.instructions:
            if inst.name in ("cx", "swap"):
                assert line_map.are_adjacent(*inst.qubits)

    def test_overlap_optimization_never_increases_swaps(self, johannesburg_map):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        for placement in ({0: 0, 1: 4, 2: 15}, {0: 2, 1: 13, 2: 18}, {0: 16, 1: 1, 2: 8}):
            def swaps(optimize: bool) -> int:
                _, props = PassManager([
                    FixedLayoutPass(johannesburg_map, placement),
                    TriosRouter(johannesburg_map, overlap_optimization=optimize),
                ]).run(circuit)
                return props["swaps_inserted"]
            assert swaps(True) <= swaps(False)


class TestLegalizationRouter:
    def test_no_op_on_legal_circuit(self, line_map):
        circuit = QuantumCircuit(20)
        circuit.cx(3, 4).cx(4, 5)
        properties = PropertySet()
        properties["final_layout"] = Layout.trivial(20)
        routed = LegalizationRouter(line_map).run(circuit, properties)
        assert properties["swaps_inserted"] == 0
        assert routed.count_ops() == circuit.count_ops()

    def test_fixes_illegal_cnots(self, line_map):
        circuit = QuantumCircuit(20)
        circuit.cx(0, 3)
        properties = PropertySet()
        properties["final_layout"] = Layout.trivial(20)
        routed = LegalizationRouter(line_map).run(circuit, properties)
        for inst in routed.instructions:
            if inst.gate.num_qubits == 2:
                assert line_map.are_adjacent(*inst.qubits)
        # The recorded final layout composes the extra movement.
        assert properties["final_layout"].physical(0) == 2

    def test_no_placeholder_layout_leaks(self, line_map):
        # Regression: with no prior layout, the router's temporary full-device
        # trivial layout must not remain in the property set afterwards.
        circuit = QuantumCircuit(20)
        circuit.cx(0, 3)
        properties = PropertySet()
        LegalizationRouter(line_map).run(circuit, properties)
        assert "layout" not in properties
        assert "initial_layout" not in properties

    def test_prior_layout_is_preserved(self, line_map):
        circuit = QuantumCircuit(20)
        circuit.cx(3, 4)
        properties = PropertySet()
        prior = Layout({0: 3, 1: 4})
        properties["layout"] = prior
        properties["initial_layout"] = prior.copy()
        properties["final_layout"] = Layout.trivial(20)
        LegalizationRouter(line_map).run(circuit, properties)
        assert properties["layout"].to_dict() == prior.to_dict()
        assert properties["initial_layout"].to_dict() == prior.to_dict()


class TestOptimizationPasses:
    def test_swap_decomposition(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        out = DecomposeSwapsPass().run(circuit, PropertySet())
        assert out.count_ops() == {"cx": 3}
        assert circuits_equivalent(circuit, out)

    def test_adjacent_cnot_pair_cancels(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 1).h(2)
        out = CancelAdjacentInversesPass().run(circuit, PropertySet())
        assert out.count_ops() == {"h": 1}

    def test_t_tdg_pair_cancels(self):
        circuit = QuantumCircuit(1)
        circuit.t(0).tdg(0)
        out = CancelAdjacentInversesPass().run(circuit, PropertySet())
        assert len(out) == 0

    def test_cancellation_respects_intervening_gates(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).x(1).cx(0, 1)
        out = CancelAdjacentInversesPass().run(circuit, PropertySet())
        assert out.count_ops() == {"cx": 2, "x": 1}

    def test_cascading_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).cx(0, 1).h(0)
        out = CancelAdjacentInversesPass().run(circuit, PropertySet())
        assert len(out) == 0

    def test_consolidate_1q_runs_preserves_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).t(0).h(0).s(1).cx(0, 1).tdg(1).h(1)
        out = Consolidate1qRunsPass().run(circuit, PropertySet())
        one_qubit = [inst for inst in out.instructions if inst.gate.num_qubits == 1]
        assert all(inst.name == "u3" for inst in one_qubit)
        assert len(one_qubit) <= 4
        assert circuits_equivalent(circuit, out)

    def test_consolidate_drops_identity_runs(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).h(0)
        out = Consolidate1qRunsPass().run(circuit, PropertySet())
        assert len(out) == 0

    def test_remove_identities(self):
        circuit = QuantumCircuit(1)
        circuit.i(0).rz(0.0, 0).x(0)
        out = RemoveIdentitiesPass().run(circuit, PropertySet())
        assert out.count_ops() == {"x": 1}


class TestScheduling:
    def test_serial_chain_duration(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1).measure(0, 0)
        schedule = asap_schedule(circuit, hardware_calibration)
        assert schedule.duration == pytest.approx(2 * 0.559 + 3.5)

    def test_parallel_gates_overlap(self, hardware_calibration):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)
        schedule = asap_schedule(circuit, hardware_calibration)
        assert schedule.duration == pytest.approx(0.559)
        assert schedule.parallelism() == pytest.approx(4.0)

    def test_schedule_pass_records_duration(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        _, properties = PassManager([ASAPSchedulePass(hardware_calibration)]).run(circuit)
        assert properties["duration"] == pytest.approx(0.559)

    def test_barrier_synchronises_without_time(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        circuit.u3(0.1, 0.2, 0.3, 0).barrier().cx(0, 1)
        schedule = asap_schedule(circuit, hardware_calibration)
        assert schedule.duration == pytest.approx(0.07 + 0.559)
