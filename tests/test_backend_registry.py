"""Consistency of the backend registry (``repro.sim``).

Every registered backend name must carry a description and an explicit
exact/sampled capability classification, and the derived structures
(``EXACT_PROBABILITY_BACKENDS``, ``supports_exact_probabilities``, the
``require_exact_capable_backend`` guard) must agree with that classification
— so a new backend can't silently drift out of ``--list-backends`` or the
``--exact`` validation.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError, SimulationError
from repro.experiments.benchmarks import require_exact_capable_backend
from repro.hardware import johannesburg_aug19_2020
from repro.sim import (
    BACKEND_CAPABILITIES,
    BACKEND_DESCRIPTIONS,
    BACKEND_NAMES,
    EXACT_PROBABILITY_BACKENDS,
    SimulationBackend,
    get_backend,
    supports_exact_probabilities,
)


class TestRegistryConsistency:
    def test_every_name_has_a_description(self):
        for name in BACKEND_NAMES:
            assert name in BACKEND_DESCRIPTIONS
            assert BACKEND_DESCRIPTIONS[name].strip()

    def test_every_name_has_a_capability_classification(self):
        for name in BACKEND_NAMES:
            assert name in BACKEND_CAPABILITIES, (
                f"backend {name!r} has no exact/sampled classification; add "
                "it to BACKEND_CAPABILITIES"
            )
            assert BACKEND_CAPABILITIES[name] in ("exact", "sampled")

    def test_no_orphan_descriptions_or_capabilities(self):
        assert set(BACKEND_DESCRIPTIONS) == set(BACKEND_NAMES)
        assert set(BACKEND_CAPABILITIES) == set(BACKEND_NAMES)

    def test_exact_probability_backends_match_classification(self):
        exact = {
            name for name, kind in BACKEND_CAPABILITIES.items() if kind == "exact"
        }
        # EXACT_PROBABILITY_BACKENDS is the exact set plus the "statevector"
        # alias for "ideal".
        assert set(EXACT_PROBABILITY_BACKENDS) == exact | {"statevector"}

    def test_constructed_backends_match_their_classification(self):
        calibration = johannesburg_aug19_2020()
        for name in BACKEND_NAMES:
            backend = get_backend(name, calibration, seed=7)
            assert isinstance(backend, SimulationBackend)
            expected_exact = BACKEND_CAPABILITIES[name] == "exact"
            assert supports_exact_probabilities(backend) == expected_exact, (
                f"backend {name!r} is classified "
                f"{BACKEND_CAPABILITIES[name]!r} but "
                f"supports_exact_probabilities says {not expected_exact}"
            )

    def test_statevector_alias_resolves_like_ideal(self):
        ideal = get_backend("ideal", seed=3)
        alias = get_backend("statevector", seed=3)
        assert type(alias) is type(ideal)
        assert supports_exact_probabilities(alias)

    def test_unknown_name_error_lists_every_backend(self):
        with pytest.raises(SimulationError) as excinfo:
            get_backend("qpu")
        for name in BACKEND_NAMES:
            assert name in str(excinfo.value)

    def test_noisy_backends_require_calibration(self):
        for name, kind in BACKEND_CAPABILITIES.items():
            if name == "ideal":
                continue  # the only calibration-free backend
            with pytest.raises(SimulationError, match="calibration"):
                get_backend(name)


class TestExactCapableGuard:
    def test_accepts_every_exact_backend(self):
        for name in EXACT_PROBABILITY_BACKENDS:
            require_exact_capable_backend(name)
            require_exact_capable_backend(name.upper())  # case-insensitive

    def test_rejects_every_sampled_backend(self):
        for name, kind in BACKEND_CAPABILITIES.items():
            if kind == "exact":
                continue
            with pytest.raises(ReproError, match="analytic"):
                require_exact_capable_backend(name)
        with pytest.raises(ReproError, match="analytic"):
            require_exact_capable_backend("analytic")
