"""Tests for the Pauli-transfer-matrix backend (``repro.sim.ptm``).

Three layers of evidence that ``"ptm"`` is an exact drop-in for
``"density"``:

1. the basis change itself — PTM ↔ superoperator round-trips for every
   channel constructor (hypothesis, full parameter ranges) and closed-form
   PTMs for the channels with textbook forms;
2. the engine — noiseless agreement with the statevector and ``1e-9``
   agreement with the density backend on the compiled Figure 6-8 cells,
   with fusion on or off;
3. the plumbing — registry construction, capability classification, the
   fusion/truncation knobs and the error paths.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.exceptions import SimulationError
from repro.experiments.toffoli import CONFIGURATIONS, compile_configuration
from repro.hardware import johannesburg, johannesburg_aug19_2020
from repro.sim import (
    DensityMatrixSimulator,
    PauliTransferMatrixSimulator,
    StatevectorSimulator,
    get_backend,
    supports_exact_probabilities,
)
from repro.sim.channels import (
    amplitude_damping_channel,
    amplitude_phase_damping_channel,
    depolarizing_channel,
    idle_channel,
    pauli_basis_matrix,
    pauli_channel,
    pauli_matrix,
    phase_damping_channel,
    ptm_from_superoperator,
    unitary_channel,
    unitary_ptm,
)
from repro.sim.ptm import (
    apply_ptm,
    fuse_ptm_ops,
    pauli_probabilities,
    ptm_wires,
    zero_pauli_state,
)
from tests.test_density import SMALL_TRIPLETS, toffoli_workload

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


def assert_round_trips(channel) -> None:
    """PTM = A S A† must be real and invert back to the superoperator."""
    superoperator = channel.superoperator()
    ptm = channel.ptm()
    num_qubits = channel.num_qubits
    assert ptm.shape == (4**num_qubits, 4**num_qubits)
    assert ptm.dtype == np.float64
    basis = pauli_basis_matrix(num_qubits)
    recovered = basis.conj().T @ ptm @ basis
    assert np.abs(recovered - superoperator).max() < 1e-9, channel
    # Trace preservation reads as a [1, 0, ..., 0] top row in the Pauli basis.
    top = np.zeros(4**num_qubits)
    top[0] = 1.0
    assert np.abs(ptm[0] - top).max() < 1e-9, channel


class TestBasisChangeRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(p=probabilities, num_qubits=st.integers(1, 2))
    def test_depolarizing(self, p, num_qubits):
        assert_round_trips(depolarizing_channel(p, num_qubits))

    @settings(max_examples=60, deadline=None)
    @given(weights=st.lists(probabilities, min_size=3, max_size=3))
    def test_pauli(self, weights):
        total = sum(weights) or 1.0
        scaled = [w / total * 0.9 for w in weights]
        channel = pauli_channel(
            {"X": scaled[0], "Y": scaled[1], "Z": scaled[2]}, num_qubits=1
        )
        assert_round_trips(channel)

    @settings(max_examples=60, deadline=None)
    @given(gamma=probabilities, lam=probabilities)
    def test_amplitude_phase_damping(self, gamma, lam):
        if gamma + lam > 1.0:
            gamma, lam = gamma / 2, lam / 2
        assert_round_trips(amplitude_phase_damping_channel(gamma, lam))

    @settings(max_examples=40, deadline=None)
    @given(gamma=probabilities)
    def test_amplitude_damping(self, gamma):
        assert_round_trips(amplitude_damping_channel(gamma))

    @settings(max_examples=40, deadline=None)
    @given(lam=probabilities)
    def test_phase_damping(self, lam):
        assert_round_trips(phase_damping_channel(lam))

    @settings(max_examples=40, deadline=None)
    @given(
        duration=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        t1=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
        t2=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )
    def test_idle(self, duration, t1, t2):
        assert_round_trips(idle_channel(duration, t1, min(t2, 2 * t1)))

    @settings(max_examples=40, deadline=None)
    @given(theta=angles, phi=angles, lam=angles)
    def test_unitary(self, theta, phi, lam):
        from repro.circuits.library import u3_gate

        assert_round_trips(unitary_channel(u3_gate(theta, phi, lam).matrix()))

    def test_every_calibrated_gate_channel(self):
        from repro.circuits.library import cx_gate, h_gate
        from repro.circuits.circuit import Instruction
        from repro.sim.channels import NoiseModel

        model = NoiseModel(johannesburg_aug19_2020())
        for gate, qubits in ((h_gate(), (0,)), (cx_gate(), (0, 1))):
            channel = model.gate_channel(Instruction(gate, qubits))
            if channel is not None:
                assert_round_trips(channel)

    def test_rejects_non_square_superoperator(self):
        with pytest.raises(SimulationError, match="4\\^k"):
            ptm_from_superoperator(np.eye(3))

    def test_rejects_non_hermiticity_preserving_map(self):
        # A superoperator with a complex PTM residue: vec-basis matrix units
        # are not Hermiticity-preserving.
        bad = np.zeros((4, 4), dtype=complex)
        bad[0, 0] = 1.0
        bad[1, 2] = 1.0j
        bad[2, 1] = 1.0j
        bad[3, 3] = 1.0
        with pytest.raises(SimulationError, match="Hermiticity"):
            ptm_from_superoperator(bad)


class TestClosedForms:
    def test_depolarizing_contracts_xyz_components(self):
        # This repo's depolarizing_channel(p) applies a uniformly random
        # *non-identity* Pauli with probability p, so each of X, Y, Z fires
        # with p/3 and the Bloch contraction is 1 - 4p/3 (the standard
        # "1 - p" form corresponds to the p' = 4p/3 parameterization).
        for p in (0.0, 0.1, 0.3, 0.75):
            contraction = 1.0 - 4.0 * p / 3.0
            expected = np.diag([1.0, contraction, contraction, contraction])
            assert np.abs(depolarizing_channel(p).ptm() - expected).max() < 1e-12

    def test_amplitude_damping_known_form(self):
        for gamma in (0.0, 0.2, 0.7, 1.0):
            s = math.sqrt(1.0 - gamma)
            expected = np.array(
                [
                    [1.0, 0.0, 0.0, 0.0],
                    [0.0, s, 0.0, 0.0],
                    [0.0, 0.0, s, 0.0],
                    [gamma, 0.0, 0.0, 1.0 - gamma],
                ]
            )
            actual = amplitude_damping_channel(gamma).ptm()
            assert np.abs(actual - expected).max() < 1e-12

    def test_phase_damping_known_form(self):
        for lam in (0.0, 0.4, 1.0):
            s = math.sqrt(1.0 - lam)
            expected = np.diag([1.0, s, s, 1.0])
            assert np.abs(phase_damping_channel(lam).ptm() - expected).max() < 1e-12

    def test_unitary_ptm_of_paulis_is_signature_diagonal(self):
        # Conjugation by X preserves I and X, flips Y and Z; etc.
        for label, signs in (
            ("X", [1, 1, -1, -1]),
            ("Y", [1, -1, 1, -1]),
            ("Z", [1, -1, -1, 1]),
            ("I", [1, 1, 1, 1]),
        ):
            actual = unitary_ptm(pauli_matrix(label))
            assert np.abs(actual - np.diag(signs)).max() < 1e-12

    def test_ptm_is_cached_on_the_channel(self):
        channel = depolarizing_channel(0.1)
        assert channel.ptm() is channel.ptm()

    def test_unitary_ptm_is_memoized(self):
        matrix = pauli_matrix("X")
        assert unitary_ptm(matrix) is unitary_ptm(matrix)


class TestPauliVectorPrimitives:
    def test_zero_state_reads_all_zeros(self):
        for n in (1, 2, 3):
            probabilities_ = pauli_probabilities(zero_pauli_state(n), n)
            expected = np.zeros(2**n)
            expected[0] = 1.0
            assert np.abs(probabilities_ - expected).max() < 1e-12

    def test_zero_state_normalization(self):
        # Tr(rho^2) = sum of squared Pauli coefficients = 1 for a pure state.
        for n in (1, 2, 4):
            assert abs(np.dot(zero_pauli_state(n), zero_pauli_state(n)) - 1.0) < 1e-12

    def test_ptm_wires_mapping(self):
        assert ptm_wires((0,)) == (0, 1)
        assert ptm_wires((2, 0)) == (4, 5, 0, 1)

    def test_apply_x_ptm_flips_outcome(self):
        state = zero_pauli_state(2)
        state = apply_ptm(state, unitary_ptm(pauli_matrix("X")), (1,), 2)
        probabilities_ = pauli_probabilities(state, 2)
        assert abs(probabilities_[0b01] - 1.0) < 1e-12

    def test_apply_ptm_rejects_wrong_shape(self):
        with pytest.raises(SimulationError, match="does not act on"):
            apply_ptm(zero_pauli_state(2), np.eye(4), (0, 1), 2)

    def test_zero_state_requires_a_qubit(self):
        with pytest.raises(SimulationError, match="at least one"):
            zero_pauli_state(0)


class TestFusion:
    def test_consecutive_1q_ops_fuse_to_one(self):
        a = unitary_ptm(pauli_matrix("X"))
        b = unitary_ptm(pauli_matrix("Z"))
        fused = fuse_ptm_ops([((0,), a), ((0,), b)])
        assert len(fused) == 1
        assert fused[0][0] == (0,)
        assert np.allclose(fused[0][1], b @ a)  # later op composes on the left

    def test_pending_1q_absorbed_into_2q_op(self):
        x = unitary_ptm(pauli_matrix("X"))
        cx = unitary_ptm(np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        ))
        fused = fuse_ptm_ops([((0,), x), ((0, 1), cx)])
        assert len(fused) == 1
        assert fused[0][0] == (0, 1)
        # First qubit is the most significant kron factor.
        assert np.allclose(fused[0][1], cx @ np.kron(x, np.eye(4)))

    def test_same_tuple_multi_qubit_ops_fuse(self):
        cx = unitary_ptm(np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
            dtype=complex,
        ))
        fused = fuse_ptm_ops([((0, 1), cx), ((0, 1), cx)])
        assert len(fused) == 1
        assert np.allclose(fused[0][1], cx @ cx)

    def test_trailing_1q_ops_flush(self):
        x = unitary_ptm(pauli_matrix("X"))
        fused = fuse_ptm_ops([((3,), x)])
        assert fused == [((3,), x)] or (
            fused[0][0] == (3,) and np.allclose(fused[0][1], x)
        )

    def test_fusion_never_changes_results(self):
        calibration = johannesburg_aug19_2020()
        circuit = toffoli_workload()
        with_fusion = PauliTransferMatrixSimulator(
            calibration, fuse=True
        ).run_probabilities(circuit)
        without = PauliTransferMatrixSimulator(
            calibration, fuse=False
        ).run_probabilities(circuit)
        assert set(with_fusion) == set(without)
        for key in without:
            assert abs(with_fusion[key] - without[key]) < 1e-12

    def test_fusion_reduces_contraction_count(self):
        simulator = PauliTransferMatrixSimulator(johannesburg_aug19_2020())
        ops = simulator.circuit_ops(toffoli_workload())
        assert len(fuse_ptm_ops(ops)) < len(ops) / 2


class TestEngineExactness:
    def test_noiseless_matches_statevector(self):
        for build in (toffoli_workload, self._ghz):
            circuit = build()
            expected = StatevectorSimulator().run_probabilities(circuit)
            actual = PauliTransferMatrixSimulator().run_probabilities(circuit)
            assert set(actual) == set(expected)
            for key, probability in expected.items():
                assert abs(actual[key] - probability) < 1e-9

    @staticmethod
    def _ghz():
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        return circuit

    @pytest.mark.parametrize("decoherence", ["global", "damping"])
    def test_matches_density_backend(self, decoherence):
        calibration = johannesburg_aug19_2020()
        circuit = toffoli_workload()
        density = DensityMatrixSimulator(
            calibration, decoherence=decoherence
        ).run_probabilities(circuit)
        ptm = PauliTransferMatrixSimulator(
            calibration, decoherence=decoherence
        ).run_probabilities(circuit)
        keys = set(density) | set(ptm)
        assert max(abs(density.get(k, 0.0) - ptm.get(k, 0.0)) for k in keys) < 1e-9

    def test_matches_density_on_compiled_fig6_cells(self):
        # The acceptance bar: 1e-9 agreement (and hence ~0 TVD) with the
        # density backend on every compiled Figure 6-8 configuration of the
        # small triplets.
        calibration = johannesburg_aug19_2020()
        coupling_map = johannesburg()
        density_sim = DensityMatrixSimulator(calibration)
        ptm_sim = PauliTransferMatrixSimulator(calibration)
        checked = 0
        for triplet in SMALL_TRIPLETS:
            placement = {0: triplet[0], 1: triplet[1], 2: triplet[2]}
            for configuration in CONFIGURATIONS:
                compiled = compile_configuration(
                    configuration, coupling_map, placement, seed=7
                )
                circuit = compiled.circuit.without(["measure"])
                measured = compiled.physical_qubits_of([0, 1, 2])
                density = density_sim.run_probabilities(
                    circuit, measured_qubits=measured
                )
                ptm = ptm_sim.run_probabilities(circuit, measured_qubits=measured)
                keys = set(density) | set(ptm)
                worst = max(
                    abs(density.get(k, 0.0) - ptm.get(k, 0.0)) for k in keys
                )
                assert worst < 1e-9, (triplet, configuration.label, worst)
                tvd = 0.5 * sum(
                    abs(density.get(k, 0.0) - ptm.get(k, 0.0)) for k in keys
                )
                assert tvd < 1e-9
                checked += 1
        assert checked == len(SMALL_TRIPLETS) * len(CONFIGURATIONS)

    def test_success_probability_and_counts(self):
        calibration = johannesburg_aug19_2020()
        circuit = toffoli_workload()
        simulator = PauliTransferMatrixSimulator(calibration, seed=11)
        p = simulator.success_probability(circuit, "1111")
        assert 0.0 < p < 1.0
        result = simulator.run_counts(circuit, shots=4096, seed=11)
        assert sum(result.counts.values()) == 4096
        sigma = math.sqrt(p * (1 - p) / 4096)
        assert abs(result.success_rate("1111") - p) <= 5 * sigma

    def test_run_counts_reproducible_with_seed(self):
        calibration = johannesburg_aug19_2020()
        circuit = toffoli_workload()
        simulator = PauliTransferMatrixSimulator(calibration)
        first = simulator.run_counts(circuit, shots=512, seed=23)
        second = simulator.run_counts(circuit, shots=512, seed=23)
        assert first.counts == second.counts

    def test_noise_toggles_match_density(self):
        calibration = johannesburg_aug19_2020()
        circuit = toffoli_workload()
        for toggles in (
            dict(include_gate_errors=False),
            dict(include_decoherence=False),
            dict(include_readout_error=False),
        ):
            density = DensityMatrixSimulator(
                calibration, **toggles
            ).run_probabilities(circuit)
            ptm = PauliTransferMatrixSimulator(
                calibration, **toggles
            ).run_probabilities(circuit)
            keys = set(density) | set(ptm)
            assert max(
                abs(density.get(k, 0.0) - ptm.get(k, 0.0)) for k in keys
            ) < 1e-9


class TestKnobsAndPlumbing:
    def test_registered_in_registry(self):
        calibration = johannesburg_aug19_2020()
        backend = get_backend("ptm", calibration, seed=5)
        assert isinstance(backend, PauliTransferMatrixSimulator)
        assert supports_exact_probabilities(backend)

    def test_requires_calibration(self):
        with pytest.raises(SimulationError, match="calibration"):
            get_backend("ptm")

    def test_truncation_zero_is_exact_and_small_atol_is_close(self):
        calibration = johannesburg_aug19_2020()
        circuit = toffoli_workload()
        exact = PauliTransferMatrixSimulator(calibration).run_probabilities(circuit)
        truncated = PauliTransferMatrixSimulator(
            calibration, truncate_atol=1e-12
        ).run_probabilities(circuit)
        keys = set(exact) | set(truncated)
        assert max(abs(exact.get(k, 0.0) - truncated.get(k, 0.0)) for k in keys) < 1e-9

    def test_aggressive_truncation_drops_components(self):
        simulator = PauliTransferMatrixSimulator(truncate_atol=0.5)
        circuit = QuantumCircuit(1)
        circuit.h(0)
        state = simulator.evolve(circuit)
        # |+> has coefficients (1/sqrt2, 1/sqrt2, 0, 0); atol=0.5 keeps them,
        # but the truncation hook must have run without error.
        assert np.count_nonzero(state) <= 2

    def test_rejects_negative_truncate_atol(self):
        with pytest.raises(SimulationError, match="truncate_atol"):
            PauliTransferMatrixSimulator(truncate_atol=-1e-3)

    def test_rejects_unknown_decoherence_mode(self):
        with pytest.raises(SimulationError, match="decoherence"):
            PauliTransferMatrixSimulator(decoherence="per-gate")

    def test_rejects_oversized_circuits(self):
        simulator = PauliTransferMatrixSimulator(max_active_qubits=3)
        with pytest.raises(SimulationError, match="exceeds"):
            simulator.run_probabilities(toffoli_workload())

    def test_simulator_pickles(self):
        simulator = PauliTransferMatrixSimulator(
            johannesburg_aug19_2020(), seed=3, truncate_atol=1e-14
        )
        clone = pickle.loads(pickle.dumps(simulator))
        circuit = toffoli_workload()
        original = simulator.run_probabilities(circuit)
        restored = clone.run_probabilities(circuit)
        assert set(original) == set(restored)
        for key in original:
            assert abs(original[key] - restored[key]) < 1e-12

    def test_empty_measurement_set(self):
        simulator = PauliTransferMatrixSimulator(johannesburg_aug19_2020())
        assert simulator.run_probabilities(toffoli_workload(), measured_qubits=[]) == {
            "": 1.0
        }
