"""Tests for the noise-channel layer (``repro.sim.channels``).

Every channel the layer can generate must be CPTP — Kraus completeness
(trace preservation), Choi hermiticity and Choi positivity — which the
hypothesis tests check across the constructors' full parameter ranges.  The
calibration→channel compilation is additionally pinned against the exact
numbers the trajectory sampler historically used, since both engines now
read from this one place.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import cx_gate, h_gate, swap_gate, x_gate
from repro.exceptions import SimulationError
from repro.hardware import johannesburg_aug19_2020
from repro.sim.channels import (
    NoiseModel,
    PAULI_LABELS,
    QuantumChannel,
    amplitude_damping_channel,
    amplitude_phase_damping_channel,
    depolarizing_channel,
    gate_error_probability,
    idle_channel,
    pauli_channel,
    pauli_matrix,
    phase_damping_channel,
    readout_confusion,
    unitary_channel,
)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def assert_cptp(channel: QuantumChannel) -> None:
    """The full CPTP battery, with explicit sub-checks for clear failures."""
    assert channel.kraus_completeness_defect() < 1e-9, channel
    choi = channel.choi()
    assert np.abs(choi - choi.conj().T).max() < 1e-9, channel
    assert float(np.linalg.eigvalsh(choi).min()) >= -1e-9, channel
    assert channel.is_cptp()


class TestChannelCPTP:
    @settings(max_examples=60, deadline=None)
    @given(p=probabilities, num_qubits=st.integers(1, 2))
    def test_depolarizing_is_cptp(self, p, num_qubits):
        assert_cptp(depolarizing_channel(p, num_qubits))

    @settings(max_examples=60, deadline=None)
    @given(weights=st.lists(probabilities, min_size=3, max_size=3))
    def test_single_qubit_pauli_channel_is_cptp(self, weights):
        total = sum(weights)
        if total > 1.0:
            weights = [w / total for w in weights]
        channel = pauli_channel(dict(zip("XYZ", weights)))
        assert_cptp(channel)

    @settings(max_examples=60, deadline=None)
    @given(gamma=probabilities, split=probabilities)
    def test_amplitude_phase_damping_is_cptp(self, gamma, split):
        lam = (1.0 - gamma) * split
        assert_cptp(amplitude_phase_damping_channel(gamma, lam))

    @settings(max_examples=60, deadline=None)
    @given(
        duration=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        t1=st.floats(min_value=0.5, max_value=300.0, allow_nan=False),
        t2=st.floats(min_value=0.5, max_value=300.0, allow_nan=False),
    )
    def test_idle_channel_is_cptp_for_any_t1_t2(self, duration, t1, t2):
        # Including T2 > 2*T1, where the pure-dephasing share clamps at zero.
        assert_cptp(idle_channel(duration, t1, t2))

    @pytest.mark.parametrize("gate", [x_gate(), h_gate(), cx_gate(), swap_gate()])
    def test_unitary_channels_are_cptp(self, gate):
        assert_cptp(unitary_channel(gate.matrix(), name=gate.name))

    def test_amplitude_and_phase_damping_shorthands(self):
        assert_cptp(amplitude_damping_channel(0.3))
        assert_cptp(phase_damping_channel(0.4))


class TestChannelRepresentations:
    @settings(max_examples=30, deadline=None)
    @given(p=probabilities, seed=st.integers(0, 2**32 - 1))
    def test_superoperator_matches_kraus_action(self, p, seed):
        """vec(E(rho)) via the cached superoperator == sum_K K rho K†."""
        channel = depolarizing_channel(p, 1)
        rng = np.random.default_rng(seed)
        raw = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        rho = raw @ raw.conj().T
        rho /= np.trace(rho).real
        by_kraus = sum(K @ rho @ K.conj().T for K in channel.kraus)
        by_super = (channel.superoperator() @ rho.reshape(-1)).reshape(2, 2)
        assert np.allclose(by_kraus, by_super, atol=1e-12)

    def test_superoperator_is_cached_and_read_only(self):
        channel = depolarizing_channel(0.1, 1)
        first = channel.superoperator()
        assert channel.superoperator() is first
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = 2.0

    def test_idle_channel_decay_rates(self):
        """Populations relax by exp(-t/T1), coherences by exp(-t/T2)."""
        t, t1, t2 = 3.0, 70.87, 72.72
        channel = idle_channel(t, t1, t2)
        one = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex)
        plus = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        relaxed = sum(K @ one @ K.conj().T for K in channel.kraus)
        dephased = sum(K @ plus @ K.conj().T for K in channel.kraus)
        assert relaxed[1, 1].real == pytest.approx(math.exp(-t / t1))
        assert dephased[0, 1].real == pytest.approx(0.5 * math.exp(-t / t2))

    def test_pauli_matrix_tensor_order(self):
        xz = pauli_matrix("XZ")
        assert np.allclose(xz, np.kron(pauli_matrix("X"), pauli_matrix("Z")))
        assert set(PAULI_LABELS) == {"I", "X", "Y", "Z"}

    def test_invalid_channels_are_rejected(self):
        with pytest.raises(SimulationError):
            QuantumChannel(())
        with pytest.raises(SimulationError):
            QuantumChannel((np.zeros((3, 3)),))
        with pytest.raises(SimulationError):
            pauli_channel({"II": 0.1})  # explicit identity is ambiguous
        with pytest.raises(SimulationError):
            pauli_channel({"X": -0.1})
        with pytest.raises(SimulationError):
            pauli_channel({"X": 0.7, "Y": 0.7})
        with pytest.raises(SimulationError):
            depolarizing_channel(1.5)
        with pytest.raises(SimulationError):
            amplitude_phase_damping_channel(0.8, 0.5)
        with pytest.raises(SimulationError):
            readout_confusion(1.0)


class TestCalibrationToChannels:
    def test_gate_error_probability_matches_calibration(self, hardware_calibration):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).swap(1, 2)
        one_q, two_q, swap_inst = circuit.instructions
        cal = hardware_calibration
        assert gate_error_probability(cal, one_q) == cal.one_qubit_gate_error
        assert gate_error_probability(cal, two_q) == cal.two_qubit_gate_error
        expected_swap = 1.0 - (1.0 - cal.two_qubit_gate_error) ** 3
        assert gate_error_probability(cal, swap_inst) == pytest.approx(expected_swap)

    def test_gate_error_probability_uses_edge_errors(self, hardware_calibration):
        cal = hardware_calibration.with_edge_errors({(0, 1): 0.05})
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        on_edge, off_edge = circuit.instructions
        assert gate_error_probability(cal, on_edge) == 0.05
        assert gate_error_probability(cal, off_edge) == cal.two_qubit_gate_error

    def test_three_qubit_gates_are_rejected(self, hardware_calibration):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(SimulationError):
            gate_error_probability(hardware_calibration, circuit.instructions[0])

    def test_noise_model_caches_channels(self, hardware_calibration):
        model = NoiseModel(hardware_calibration)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).h(0)
        first_cx, second_cx, h_inst = circuit.instructions
        assert model.gate_channel(first_cx) is model.gate_channel(second_cx)
        assert model.gate_channel(h_inst) is not model.gate_channel(first_cx)
        assert model.idle_channel(1.5) is model.idle_channel(1.5)
        assert model.idle_channel(0.0) is None

    def test_noise_model_channels_are_cptp(self, hardware_calibration):
        model = NoiseModel(hardware_calibration)
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).swap(1, 2)
        for instruction in circuit.instructions:
            assert_cptp(model.gate_channel(instruction))
        assert_cptp(model.idle_channel(2.5))

    def test_zero_error_gives_no_channel(self, hardware_calibration):
        from dataclasses import replace

        cal = replace(
            hardware_calibration, one_qubit_gate_error=0.0, two_qubit_gate_error=0.0
        )
        model = NoiseModel(cal)
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert all(model.gate_channel(i) is None for i in circuit.instructions)

    def test_readout_confusion_is_column_stochastic(self, hardware_calibration):
        model = NoiseModel(hardware_calibration)
        confusion = model.readout_confusion()
        assert np.allclose(confusion.sum(axis=0), 1.0)
        assert (confusion >= 0).all()
        r = hardware_calibration.readout_error
        assert confusion[1, 0] == pytest.approx(r)
        assert confusion[0, 1] == pytest.approx(r)

    def test_decoherence_failure_probability(self, hardware_calibration):
        cal = hardware_calibration
        duration = 12.5
        expected = 1.0 - math.exp(-(duration / cal.t1 + duration / cal.t2))
        assert cal.decoherence_failure_probability(duration) == pytest.approx(expected)
        model = NoiseModel(cal)
        assert model.decoherence_failure_probability(duration) == pytest.approx(expected)

    def test_damping_parameters_clamp(self):
        from dataclasses import replace

        cal = johannesburg_aug19_2020()
        gamma, lam = cal.damping_parameters(2.0)
        assert 0 <= gamma <= 1 and 0 <= lam <= 1
        # T2 far above 2*T1 would demand negative pure dephasing; it clamps.
        weird = replace(cal, t2=cal.t1 * 10)
        _, lam_clamped = weird.damping_parameters(2.0)
        assert lam_clamped == 0.0

    def test_noise_model_pickles_with_caches(self, hardware_calibration):
        model = NoiseModel(hardware_calibration)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        original = model.gate_channel(circuit.instructions[0])
        original.superoperator()  # warm the cache
        clone = pickle.loads(pickle.dumps(model))
        cloned = clone.gate_channel(circuit.instructions[0])
        assert np.allclose(cloned.superoperator(), original.superoperator())
        assert_cptp(cloned)


def test_sampler_error_weights_come_from_the_channel_layer(hardware_calibration):
    """The trajectory sampler delegates to channels.gate_error_probability."""
    from repro.sim import PauliTrajectorySampler

    sampler = PauliTrajectorySampler(hardware_calibration)
    circuit = QuantumCircuit(3)
    circuit.h(0).cx(0, 1).swap(1, 2)
    for instruction in circuit.instructions:
        assert sampler._error_probability(instruction) == gate_error_probability(
            hardware_calibration, instruction
        )
