"""Unit tests for the QuantumCircuit IR, the DAG and OpenQASM I/O."""

import math

import pytest

from repro.circuits import CircuitDag, QuantumCircuit, circuit_layers, from_qasm, to_qasm
from repro.exceptions import CircuitError


class TestCircuitConstruction:
    def test_builder_methods_append_instructions(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2).measure(2, 0)
        assert len(circuit) == 5
        assert circuit.count_ops() == {"h": 1, "cx": 1, "ccx": 1, "t": 1, "measure": 1}

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_duplicate_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(1, 1)

    def test_zero_qubit_circuit_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        clone = circuit.copy()
        clone.x(1)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(4)
        outer.compose(inner, qubits=[3, 1])
        assert outer.instructions[0].qubits == (3, 1)

    def test_compose_size_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(3).compose(QuantumCircuit(2), qubits=[0])


class TestCircuitMetrics:
    def test_two_qubit_gate_count_counts_swaps_as_three(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).swap(1, 2).ccx(0, 1, 2)
        assert circuit.two_qubit_gate_count(count_swap_as=3) == 4
        assert circuit.two_qubit_gate_count(count_swap_as=1) == 2

    def test_depth_of_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1
        circuit.cx(0, 1).cx(2, 3)
        assert circuit.depth() == 2
        circuit.cx(1, 2)
        assert circuit.depth() == 3

    def test_depth_ignores_barriers(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        assert circuit.depth() == 1

    def test_active_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(1, 3)
        circuit.barrier()
        assert circuit.active_qubits() == {1, 3}

    def test_interactions_weight_toffoli_pairs(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        circuit.cx(0, 1)
        weights = circuit.interactions(toffoli_weight=2)
        assert weights[(0, 1)] == 3
        assert weights[(0, 2)] == 2
        assert weights[(1, 2)] == 2

    def test_num_clbits(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_clbits() == 0
        circuit.measure(1, 2)
        assert circuit.num_clbits() == 3


class TestCircuitTransforms:
    def test_remap_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remap_qubits({0: 4, 1: 2}, num_qubits=5)
        assert remapped.instructions[0].qubits == (4, 2)
        assert remapped.num_qubits == 5

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).t(0).cx(0, 1)
        inverse = circuit.inverse()
        names = [inst.name for inst in inverse.instructions]
        assert names == ["cx", "tdg", "h"]

    def test_inverse_rejects_measurement(self):
        circuit = QuantumCircuit(1)
        circuit.measure(0)
        with pytest.raises(CircuitError):
            circuit.inverse()

    def test_without_drops_named_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().measure(0)
        cleaned = circuit.without(["barrier", "measure"])
        assert [inst.name for inst in cleaned.instructions] == ["h"]


class TestCircuitDag:
    def test_layers_group_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).cx(0, 1).cx(2, 3)
        layers = circuit_layers(circuit)
        assert [sorted(inst.name for inst in layer) for layer in layers] == [
            ["cx", "h", "h"],
            ["cx"],
        ]

    def test_front_layer_and_successors(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).x(1)
        dag = CircuitDag(circuit)
        front = dag.front_layer()
        assert [node.name for node in front] == ["h"]
        successors = dag.successors(front[0].index)
        assert [node.name for node in successors] == ["cx"]
        assert [node.name for node in dag.predecessors(2)] == ["cx"]

    def test_weighted_depth_uses_durations(self, hardware_calibration):
        circuit = QuantumCircuit(2)
        circuit.u3(0.1, 0.2, 0.3, 0).cx(0, 1).u3(0.1, 0.2, 0.3, 1)
        duration = CircuitDag(circuit).weighted_depth(
            lambda inst: hardware_calibration.gate_duration(inst.name, inst.qubits)
        )
        expected = 0.07 + 0.559 + 0.07
        assert duration == pytest.approx(expected)


class TestOpenQasm:
    def test_roundtrip_preserves_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1).cx(0, 1).ccx(0, 1, 2).rz(0.25, 2).swap(1, 2)
        circuit.measure(2, 0)
        text = to_qasm(circuit)
        parsed = from_qasm(text)
        assert parsed.count_ops() == circuit.count_ops()
        assert [inst.qubits for inst in parsed.instructions] == [
            inst.qubits for inst in circuit.instructions
        ]

    def test_qasm_contains_headers_and_registers(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).measure_all()
        text = to_qasm(circuit)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[2];" in text
        assert "creg c[2];" in text
        assert "measure q[0] -> c[0];" in text

    def test_pi_fractions_are_rendered_exactly(self):
        circuit = QuantumCircuit(1)
        circuit.rz(math.pi / 2, 0)
        assert "pi/2" in to_qasm(circuit)

    def test_parse_rejects_unknown_gate(self):
        bad = 'OPENQASM 2.0;\nqreg q[1];\nfancy q[0];\n'
        with pytest.raises(CircuitError):
            from_qasm(bad)
