"""Unit tests for the gate library and gate matrices."""

import math

import numpy as np
import pytest

from repro.circuits import Gate, gate_matrix
from repro.circuits import library
from repro.exceptions import GateError


ALL_FIXED_GATES = [
    ("id", 1), ("x", 1), ("y", 1), ("z", 1), ("h", 1), ("s", 1), ("sdg", 1),
    ("t", 1), ("tdg", 1), ("sx", 1), ("sxdg", 1), ("cx", 2), ("cz", 2),
    ("cy", 2), ("ch", 2), ("swap", 2), ("ccx", 3), ("ccz", 3), ("cswap", 3),
]

PARAMETRIC_GATES = [
    ("rx", 1, (0.3,)), ("ry", 1, (1.1,)), ("rz", 1, (-0.7,)), ("u1", 1, (0.5,)),
    ("p", 1, (2.2,)), ("u2", 1, (0.4, 1.3)), ("u3", 1, (0.9, 0.2, -1.1)),
    ("cp", 2, (0.6,)), ("crz", 2, (1.4,)), ("rzz", 2, (0.8,)),
]


class TestGateMatrices:
    @pytest.mark.parametrize("name,arity", ALL_FIXED_GATES)
    def test_fixed_gate_matrices_are_unitary(self, name, arity):
        matrix = Gate(name, arity).matrix()
        dim = 2**arity
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)

    @pytest.mark.parametrize("name,arity,params", PARAMETRIC_GATES)
    def test_parametric_gate_matrices_are_unitary(self, name, arity, params):
        matrix = Gate(name, arity, params).matrix()
        dim = 2**arity
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)

    def test_x_matrix(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_h_matrix(self):
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(gate_matrix("h"), expected)

    def test_cx_flips_target_when_control_set(self):
        cx = gate_matrix("cx")
        # |10> -> |11> with qubit 0 (control) the most significant bit.
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, [0, 0, 0, 1])

    def test_ccx_is_controlled_controlled_x(self):
        ccx = gate_matrix("ccx")
        assert np.allclose(ccx[:6, :6], np.eye(6))
        assert ccx[6, 7] == 1 and ccx[7, 6] == 1

    def test_swap_matrix(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, [0, 0, 1, 0])  # |10>

    def test_t_is_fourth_root_of_z(self):
        t = gate_matrix("t")
        assert np.allclose(np.linalg.matrix_power(t, 4), gate_matrix("z"))

    def test_sx_is_square_root_of_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_u2_equals_u3_with_pi_over_2(self):
        assert np.allclose(
            Gate("u2", 1, (0.3, 0.7)).matrix(),
            Gate("u3", 1, (math.pi / 2, 0.3, 0.7)).matrix(),
        )

    def test_unknown_gate_raises(self):
        with pytest.raises(GateError):
            Gate("bogus", 1).matrix()

    def test_measure_has_no_matrix(self):
        with pytest.raises(GateError):
            library.measure_op().matrix()


class TestGateInverses:
    @pytest.mark.parametrize("name,arity", ALL_FIXED_GATES)
    def test_fixed_inverse_is_correct(self, name, arity):
        gate = Gate(name, arity)
        product = gate.inverse().matrix() @ gate.matrix()
        phase = product[0, 0]
        assert np.allclose(product, phase * np.eye(2**arity), atol=1e-12)

    @pytest.mark.parametrize("name,arity,params", PARAMETRIC_GATES)
    def test_parametric_inverse_is_correct(self, name, arity, params):
        gate = Gate(name, arity, params)
        product = gate.inverse().matrix() @ gate.matrix()
        phase = product[0, 0]
        assert np.allclose(product, phase * np.eye(2**arity), atol=1e-12)

    def test_t_inverse_is_tdg(self):
        assert Gate("t", 1).inverse() == Gate("tdg", 1)

    def test_self_inverse_gates(self):
        for name, arity in (("x", 1), ("h", 1), ("cx", 2), ("ccx", 3), ("swap", 2)):
            assert Gate(name, arity).inverse() == Gate(name, arity)


class TestGateProperties:
    def test_equality_and_hash(self):
        assert Gate("rz", 1, (0.5,)) == Gate("rz", 1, (0.5,))
        assert hash(Gate("cx", 2)) == hash(Gate("cx", 2))
        assert Gate("rz", 1, (0.5,)) != Gate("rz", 1, (0.6,))

    def test_is_two_qubit(self):
        assert library.cx_gate().is_two_qubit
        assert not library.ccx_gate().is_two_qubit
        assert library.ccx_gate().is_multi_qubit

    def test_identity_detection(self):
        assert Gate("id", 1).is_identity()
        assert Gate("rz", 1, (0.0,)).is_identity()
        assert Gate("u1", 1, (0.0,)).is_identity()
        assert not Gate("x", 1).is_identity()

    def test_zero_qubit_gate_rejected(self):
        with pytest.raises(GateError):
            Gate("x", 0)

    def test_gate_arity_table_matches_library(self):
        num_params = {"rx": 1, "ry": 1, "rz": 1, "u1": 1, "p": 1, "cp": 1,
                      "crz": 1, "rzz": 1, "u2": 2, "u3": 3}
        for name, arity in library.GATE_ARITY.items():
            if name in ("measure", "reset"):
                continue
            params = tuple(0.5 for _ in range(num_params.get(name, 0)))
            assert Gate(name, arity, params).matrix().shape == (2**arity, 2**arity)
