"""OpenQASM 2.0 export/import: exact round-trip property tests.

``circuits/qasm.py`` previously rendered non-pi-fraction angles with 12
significant digits, so ``parse(dump(c))`` silently perturbed the last float
bits.  The exporter now emits ``repr`` (shortest round-trip) for arbitrary
angles and exact symbolic fractions for angles that are pi fractions to the
last bit; these tests pin the resulting gate-for-gate identity on randomized
library circuits.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, from_qasm, to_qasm
from repro.circuits.library import GATE_ARITY, p_gate, rx_gate, ry_gate, rz_gate, u1_gate
from repro.exceptions import CircuitError

# Parameter-free library gates by arity (excluding non-unitary ops and the
# gates needing explicit definitions, which get their own cases below).
_PLAIN_1Q = ("id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg")
_PLAIN_2Q = ("cx", "cz", "cy", "ch", "swap")
_PLAIN_3Q = ("ccx", "cswap")
_PARAM_1Q = ("rx", "ry", "rz", "u1", "p")
_PARAM_1Q_BUILDERS = {"rx": rx_gate, "ry": ry_gate, "rz": rz_gate,
                      "u1": u1_gate, "p": p_gate}

_PI_FRACTIONS = tuple(
    num * math.pi / denom
    for denom in (1, 2, 3, 4, 6, 8, 16)
    for num in (-16, -5, -1, 1, 2, 3, 7, 16)
)

_angles = st.one_of(
    st.sampled_from(_PI_FRACTIONS),
    st.floats(
        min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
    ),
    # Tiny magnitudes force the exporter's scientific notation path.
    st.floats(min_value=-1e-6, max_value=1e-6, allow_nan=False),
)


@st.composite
def qasm_circuits(draw, max_qubits: int = 5, max_gates: int = 25):
    """Random circuits over the full serialisable library gate set."""
    num_qubits = draw(st.integers(min_value=3, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, "qasm-random")
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    for _ in range(num_gates):
        kind = draw(
            st.sampled_from(
                ["1q", "p1q", "u2", "u3", "2q", "p2q", "3q", "ccz", "rzz",
                 "barrier", "reset"]
            )
        )
        qubits = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_qubits - 1),
                min_size=3, max_size=3, unique=True,
            )
        )
        if kind == "1q":
            getattr(circuit, draw(st.sampled_from(("h", "x", "z", "s", "t"))))(qubits[0])
        elif kind == "p1q":
            name = draw(st.sampled_from(_PARAM_1Q))
            circuit.append(_PARAM_1Q_BUILDERS[name](draw(_angles)), (qubits[0],))
        elif kind == "u2":
            circuit.u2(draw(_angles), draw(_angles), qubits[0])
        elif kind == "u3":
            circuit.u3(draw(_angles), draw(_angles), draw(_angles), qubits[0])
        elif kind == "2q":
            name = draw(st.sampled_from(("cx", "cz", "swap")))
            getattr(circuit, name)(qubits[0], qubits[1])
        elif kind == "p2q":
            circuit.cp(draw(_angles), qubits[0], qubits[1])
        elif kind == "3q":
            circuit.ccx(qubits[0], qubits[1], qubits[2])
        elif kind == "ccz":
            circuit.ccz(qubits[0], qubits[1], qubits[2])
        elif kind == "rzz":
            circuit.rzz(draw(_angles), qubits[0], qubits[1])
        elif kind == "barrier":
            circuit.barrier(*sorted(qubits[:2]))
        else:
            circuit.reset(qubits[0])
    if draw(st.booleans()):
        for index, qubit in enumerate(sorted(circuit.active_qubits())):
            circuit.measure(qubit, index)
    return circuit


def assert_gate_for_gate_identical(original: QuantumCircuit, parsed: QuantumCircuit):
    assert parsed.num_qubits == original.num_qubits
    assert len(parsed.instructions) == len(original.instructions)
    for index, (ours, theirs) in enumerate(
        zip(original.instructions, parsed.instructions)
    ):
        assert theirs.name == ours.name, f"instruction {index} name drifted"
        assert theirs.qubits == ours.qubits, f"instruction {index} qubits drifted"
        assert theirs.clbits == ours.clbits, f"instruction {index} clbits drifted"
        assert theirs.gate.params == ours.gate.params, (
            f"instruction {index} ({ours.name}) params drifted: "
            f"{ours.gate.params} -> {theirs.gate.params}"
        )


class TestRoundTripProperties:
    @given(circuit=qasm_circuits())
    @settings(max_examples=60, deadline=None)
    def test_parse_dump_is_gate_for_gate_identical(self, circuit):
        assert_gate_for_gate_identical(circuit, from_qasm(to_qasm(circuit)))

    @given(angle=_angles)
    @settings(max_examples=120, deadline=None)
    def test_every_angle_round_trips_bit_for_bit(self, angle):
        circuit = QuantumCircuit(1)
        circuit.rz(angle, 0)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.instructions[0].gate.params == (angle,)

    @given(circuit=qasm_circuits())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_is_idempotent(self, circuit):
        once = to_qasm(circuit)
        assert to_qasm(from_qasm(once)) == once


class TestRenderingDetails:
    def test_exact_pi_fractions_render_symbolically(self):
        circuit = QuantumCircuit(1)
        circuit.rz(3 * math.pi / 4, 0).rx(-math.pi / 2, 0).u1(2 * math.pi, 0)
        text = to_qasm(circuit)
        assert "3*pi/4" in text
        assert "-pi/2" in text
        assert "2*pi" in text

    def test_near_but_not_exact_pi_fraction_keeps_full_precision(self):
        angle = math.pi / 2 + 1e-13  # closer than the old 1e-12 tolerance
        circuit = QuantumCircuit(1)
        circuit.rz(angle, 0)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.instructions[0].gate.params == (angle,)

    def test_scientific_notation_parses(self):
        circuit = QuantumCircuit(1)
        circuit.rz(2.5e-09, 0)
        text = to_qasm(circuit)
        assert "e-09" in text
        assert from_qasm(text).instructions[0].gate.params == (2.5e-09,)

    def test_defined_gates_round_trip(self):
        circuit = QuantumCircuit(3)
        circuit.ccz(0, 1, 2).rzz(0.25, 0, 1)
        text = to_qasm(circuit)
        assert "gate ccz" in text and "gate rzz" in text
        assert_gate_for_gate_identical(circuit, from_qasm(text))

    def test_malformed_angle_expression_rejected(self):
        bad = 'OPENQASM 2.0;\nqreg q[1];\nrz(1**) q[0];\n'
        with pytest.raises(CircuitError):
            from_qasm(bad)

    def test_unknown_name_in_angle_rejected(self):
        bad = 'OPENQASM 2.0;\nqreg q[1];\nrz(e) q[0];\n'
        with pytest.raises(CircuitError):
            from_qasm(bad)

    def test_gate_arity_table_covers_serialised_names(self):
        # Every gate the exporter can emit must be parseable again.
        for name in (*_PLAIN_1Q, *_PLAIN_2Q, *_PLAIN_3Q, *_PARAM_1Q,
                     "u2", "u3", "cp", "crz", "rzz", "ccz"):
            assert name in GATE_ARITY, name
