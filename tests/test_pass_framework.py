"""Tests for the staged pass manager, pass kinds, telemetry and FixedPoint."""

import pytest

from repro.circuits import DagCircuit, QuantumCircuit, library
from repro.exceptions import TranspilerError
from repro.passes import (
    AnalysisPass,
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    FixedPoint,
    PassManager,
    PropertySet,
    RemoveIdentitiesPass,
    Stage,
    TransformationPass,
)


class CountingAnalysis(AnalysisPass):
    def analyze(self, dag, properties):
        properties["counted"] = len(dag)


class AppendOneX(TransformationPass):
    """A pathological pass that always modifies (never reaches a fixed point)."""

    def run_dag(self, dag, properties):
        dag.append(library.x_gate(), (0,))
        return dag


class RebuildUnchanged(TransformationPass):
    """A pass that rebuilds a fresh (but identical) DAG every sweep."""

    def run_dag(self, dag, properties):
        return DagCircuit.from_circuit(dag.to_circuit())


def cx_pair_circuit():
    circuit = QuantumCircuit(2)
    circuit.x(0).cx(0, 1).cx(0, 1).x(0)
    return circuit


class TestPassKinds:
    def test_analysis_pass_on_circuit_returns_same_object(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        properties = PropertySet()
        out = CountingAnalysis().run(circuit, properties)
        assert out is circuit
        assert properties["counted"] == 2

    def test_transformation_pass_accepts_circuit_and_dag(self):
        circuit = cx_pair_circuit()
        as_circuit = CancelAdjacentInversesPass().run(circuit, PropertySet())
        assert isinstance(as_circuit, QuantumCircuit)
        assert len(as_circuit) == 0
        dag = DagCircuit.from_circuit(cx_pair_circuit())
        as_dag = CancelAdjacentInversesPass().run(dag, PropertySet())
        assert as_dag is dag
        assert len(dag) == 0

    def test_pass_manager_rejects_non_pass(self):
        with pytest.raises(TranspilerError):
            PassManager([object()])


class TestStagedManager:
    def test_stage_names_reach_telemetry(self):
        manager = PassManager(
            [
                Stage("analysis", [CountingAnalysis()]),
                Stage("optimize", [CancelAdjacentInversesPass()]),
            ]
        )
        out, properties = manager.run(cx_pair_circuit())
        assert len(out) == 0
        assert manager.stages() == ["analysis", "optimize"]
        stages = {record["stage"] for record in properties["pass_timings"]}
        assert stages == {"analysis", "optimize"}
        for record in properties["pass_timings"]:
            assert record["seconds"] >= 0
            assert record["size_before"] >= record["size_after"] >= 0

    def test_history_and_flat_pass_list(self):
        manager = PassManager([CountingAnalysis()])
        manager.append(CancelAdjacentInversesPass(), stage="optimize")
        assert [type(p).__name__ for p in manager.passes] == [
            "CountingAnalysis",
            "CancelAdjacentInversesPass",
        ]
        _, properties = manager.run(cx_pair_circuit())
        assert properties["pass_history"] == [
            "CountingAnalysis",
            "CancelAdjacentInversesPass",
        ]

    def test_dag_in_dag_out(self):
        dag = DagCircuit.from_circuit(cx_pair_circuit())
        out, _ = PassManager([CancelAdjacentInversesPass()]).run(dag)
        assert out is dag


class TestFixedPoint:
    def _loop(self):
        return FixedPoint(
            [
                CancelAdjacentInversesPass(),
                Consolidate1qRunsPass(),
                RemoveIdentitiesPass(),
            ]
        )

    def test_converges_and_records_iterations(self):
        properties = PropertySet()
        out = self._loop().run(cx_pair_circuit(), properties)
        # x·x and cx·cx both cancel: nothing survives.
        assert len(out) == 0
        assert properties["fixed_point_iterations"][0] >= 1

    def test_cascaded_cancellation_needs_no_extra_sweeps(self):
        # h x x h on one wire: consolidation folds it to identity in sweep one;
        # the confirming sweep finds nothing to do.
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0).x(0).h(0)
        properties = PropertySet()
        out = self._loop().run(circuit, properties)
        assert len(out) == 0
        assert properties["fixed_point_iterations"] == [2]

    def test_rerun_on_same_dag_is_a_noop(self):
        dag = DagCircuit.from_circuit(cx_pair_circuit())
        properties = PropertySet()
        loop = self._loop()
        loop.run_dag(dag, properties)
        mods = dag.modification_count
        loop.run_dag(dag, properties)
        assert dag.modification_count == mods  # idempotent at the fixed point
        assert properties["fixed_point_iterations"][-1] == 1

    def test_divergent_loop_raises(self):
        loop = FixedPoint([AppendOneX()], max_iterations=5)
        with pytest.raises(TranspilerError):
            loop.run(QuantumCircuit(1), PropertySet())

    def test_pass_rebuilding_an_unchanged_dag_converges(self):
        # Passes may return a fresh DAG instead of mutating in place; an
        # unchanged rebuild must still count as a fixed point.
        properties = PropertySet()
        loop = FixedPoint([RebuildUnchanged()], max_iterations=5)
        out = loop.run(cx_pair_circuit(), properties)
        assert properties["fixed_point_iterations"] == [1]
        assert len(out) == 4

    def test_inner_passes_record_telemetry_per_sweep(self):
        properties = PropertySet()
        manager = PassManager([Stage("optimize", [self._loop()])])
        manager.run(cx_pair_circuit(), properties)
        names = [record["pass"] for record in properties["pass_timings"]]
        # Each sweep contributes one record per inner pass; no aggregate
        # FixedPoint record duplicates them.
        assert "CancelAdjacentInversesPass" in names
        assert all("FixedPoint" not in name for name in names)
        sweeps = properties["fixed_point_iterations"][0]
        assert names.count("CancelAdjacentInversesPass") == sweeps

    def test_swap_decomposition_then_cancellation_composes(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1).swap(0, 1)
        manager = PassManager(
            [Stage("optimize", [DecomposeSwapsPass(), self._loop()])]
        )
        out, _ = manager.run(circuit)
        assert len(out) == 0
