"""The formal equivalence-checking harness (`repro.sim.equivalence`).

Covers both checking methods (exact unitary, randomized statevector), their
agreement, the layout-aware compiled-vs-logical check, and the diagnostic
assertion helpers the passes' debug mode and the benchmark harness rely on.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QuantumCircuit, transpile
from repro.exceptions import EquivalenceError, SimulationError
from repro.hardware import johannesburg
from repro.sim import (
    assert_routed_equivalent,
    assert_unitary_equivalent,
    circuits_equivalent,
    permutation_unitary,
    phase_aligned_distance,
    routed_circuits_equivalent,
    unpermute_statevector,
)
from repro.sim.equivalence import MAX_UNITARY_QUBITS


def bell_pair() -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    return circuit


@st.composite
def random_circuits(draw, min_qubits=2, max_qubits=5, max_gates=12):
    num_qubits = draw(st.integers(min_value=min_qubits, max_value=max_qubits))
    circuit = QuantumCircuit(num_qubits, "rand")
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        kind = draw(st.sampled_from(["1q", "2q", "rot"]))
        qubits = draw(
            st.lists(st.integers(0, num_qubits - 1), min_size=2, max_size=2,
                     unique=True)
        )
        if kind == "1q":
            getattr(circuit, draw(st.sampled_from(("h", "x", "s", "t"))))(qubits[0])
        elif kind == "2q":
            circuit.cx(qubits[0], qubits[1])
        else:
            circuit.rz(draw(st.floats(-3, 3, allow_nan=False)), qubits[0])
    return circuit


class TestCircuitsEquivalent:
    def test_identical_circuits_are_equivalent(self):
        assert circuits_equivalent(bell_pair(), bell_pair())

    def test_extra_gate_breaks_equivalence(self):
        other = bell_pair()
        other.t(1)
        assert not circuits_equivalent(bell_pair(), other)

    def test_width_mismatch_is_inequivalent(self):
        assert not circuits_equivalent(bell_pair(), QuantumCircuit(3))

    def test_global_phase_handling(self):
        # rz(theta) == u1(theta) up to the global phase e^{-i theta/2}.
        with_rz = QuantumCircuit(1)
        with_rz.rz(0.7, 0)
        with_u1 = QuantumCircuit(1)
        with_u1.u1(0.7, 0)
        assert circuits_equivalent(with_rz, with_u1)
        assert not circuits_equivalent(
            with_rz, with_u1, up_to_global_phase=False
        )
        assert_unitary_equivalent(with_rz, with_u1)
        with pytest.raises(EquivalenceError):
            assert_unitary_equivalent(with_rz, with_u1, up_to_global_phase=False)

    def test_measures_and_barriers_are_stripped(self):
        measured = bell_pair()
        measured.barrier(0, 1)
        measured.measure(0, 0)
        assert circuits_equivalent(bell_pair(), measured)

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError):
            circuits_equivalent(bell_pair(), bell_pair(), method="oracle")

    def test_final_permutation_both_methods(self):
        routed = bell_pair()
        routed.swap(0, 1)
        for method in ("unitary", "statevector"):
            assert circuits_equivalent(
                bell_pair(), routed, {0: 1, 1: 0}, method=method
            )
            assert not circuits_equivalent(bell_pair(), routed, method=method)

    @given(circuit=random_circuits())
    @settings(max_examples=30, deadline=None)
    def test_methods_agree_on_random_circuits(self, circuit):
        # Same circuit: both methods say yes.
        assert circuits_equivalent(circuit, circuit, method="unitary")
        assert circuits_equivalent(circuit, circuit, method="statevector")
        # A perturbed copy: both methods say no.
        perturbed = circuit.copy()
        perturbed.rx(1.0, 0)
        assert not circuits_equivalent(circuit, perturbed, method="unitary")
        assert not circuits_equivalent(circuit, perturbed, method="statevector")

    def test_auto_switches_to_statevector_beyond_unitary_limit(self):
        wide = QuantumCircuit(MAX_UNITARY_QUBITS + 2)
        wide.h(0)
        for qubit in range(MAX_UNITARY_QUBITS + 1):
            wide.cx(qubit, qubit + 1)
        # The unitary method would need a 2^12 x 2^12 matrix; auto must not.
        assert circuits_equivalent(wide, wide)
        broken = wide.copy()
        broken.z(3)
        assert not circuits_equivalent(wide, broken)


class TestUnpermuteStatevector:
    def test_matches_permutation_unitary(self):
        rng = np.random.default_rng(5)
        for num_qubits in (2, 3, 4):
            for _ in range(4):
                targets = [int(x) for x in rng.permutation(num_qubits)]
                permutation = dict(enumerate(targets))
                state = rng.normal(size=2**num_qubits) + 1j * rng.normal(
                    size=2**num_qubits
                )
                dense = permutation_unitary(permutation, num_qubits)
                assert np.allclose(
                    unpermute_statevector(state, permutation, num_qubits),
                    dense.conj().T @ state,
                )

    def test_rejects_non_bijection(self):
        with pytest.raises(SimulationError):
            unpermute_statevector(np.zeros(4), {0: 1, 1: 1}, 2)


class TestAssertUnitaryEquivalent:
    def test_error_message_carries_diagnostics(self):
        good = bell_pair()
        bad = bell_pair()
        bad.t(0)
        with pytest.raises(EquivalenceError) as excinfo:
            assert_unitary_equivalent(good, bad, context="unit test")
        message = str(excinfo.value)
        assert "unit test" in message
        assert "deviation" in message
        assert "cx" in message  # the gate histograms are included

    def test_equivalence_error_is_assertion_and_simulation_error(self):
        assert issubclass(EquivalenceError, AssertionError)
        assert issubclass(EquivalenceError, SimulationError)

    def test_width_mismatch_raises(self):
        with pytest.raises(EquivalenceError, match="widths"):
            assert_unitary_equivalent(bell_pair(), QuantumCircuit(3))

    def test_phase_aligned_distance_zero_for_phased_copy(self):
        unitary = np.array([[1, 0], [0, 1j]], dtype=complex)
        assert phase_aligned_distance(unitary, np.exp(0.3j) * unitary) < 1e-12
        assert phase_aligned_distance(
            unitary, np.array([[0, 1], [1, 0]], dtype=complex)
        ) > 0.5


class TestRoutedEquivalence:
    def _compile(self, level=1):
        program = QuantumCircuit(4, "prog")
        program.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3)
        return program, transpile(
            program, johannesburg(), method="trios", seed=3,
            optimization_level=level,
        )

    def test_transpiled_circuit_passes(self):
        program, result = self._compile()
        fidelity = routed_circuits_equivalent(
            program,
            result.circuit,
            result.initial_layout.to_dict(),
            result.final_layout.to_dict(),
        )
        assert fidelity > 1 - 1e-7
        # And via the CompilationResult convenience method.
        result.assert_equivalent(program)

    def test_wrong_final_layout_fails(self):
        program, result = self._compile()
        final = result.final_layout.to_dict()
        physical = sorted(final.values())
        rotated = {q: physical[(physical.index(w) + 1) % len(physical)]
                   for q, w in final.items()}
        if rotated == final:  # pragma: no cover - degenerate layout
            pytest.skip("layout rotation degenerate")
        with pytest.raises(EquivalenceError):
            assert_routed_equivalent(
                program, result.circuit,
                result.initial_layout.to_dict(), rotated,
            )

    def test_corrupted_compilation_fails(self):
        program, result = self._compile()
        corrupted = result.circuit.copy()
        corrupted.x(result.final_layout.to_dict()[0])
        with pytest.raises(EquivalenceError):
            assert_routed_equivalent(
                program, corrupted,
                result.initial_layout.to_dict(),
                result.final_layout.to_dict(),
            )

    def test_too_many_active_wires_raises(self):
        program, result = self._compile()
        with pytest.raises(SimulationError, match="too many"):
            routed_circuits_equivalent(
                program, result.circuit,
                result.initial_layout.to_dict(),
                result.final_layout.to_dict(),
                max_active=2,
            )
