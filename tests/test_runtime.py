"""Tests for the fault-tolerant execution runtime (``repro.runtime``).

Every fault here is injected through the deterministic
:class:`~repro.runtime.FaultPlan` layer, so worker crashes, hangs, transient
exceptions and corrupted results replay identically on every run.  Crash and
hang faults fire only inside pool worker processes — the in-process serial
paths (serial mode, the ``on_error="serial"`` fallback, the level-3 base-seed
recovery) are immune by construction, which is exactly the degradation story
the runtime promises.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.circuits import QuantumCircuit
from repro.compiler import transpile
from repro.exceptions import ExecutionError, FaultInjectionError
from repro.experiments import run_sensitivity_experiment
from repro.experiments.report import format_failure_summary
from repro.hardware import johannesburg
from repro.runtime import (
    CellRunner,
    FailurePolicy,
    Fault,
    FaultPlan,
    failure_records,
    resolve_jobs,
    run_experiment_cells,
)
from repro.runtime.faults import FAULTS_ENV_VAR, Corrupted, is_corrupted

# A fast policy for tests: near-zero backoff so retry loops don't sleep.
FAST = dict(backoff_base=0.001, backoff_cap=0.002, backoff_jitter=0.0)


def square_cell(payload):
    """Deterministic worker: a pure function of the payload."""
    return payload * payload


def slow_cell(payload):
    time.sleep(0.05)
    return payload * payload


PAYLOADS = list(range(8))
EXPECTED = [p * p for p in PAYLOADS]


def run_values(runner, payloads=PAYLOADS, worker=square_cell):
    return [r.value for r in runner.run(payloads, worker)]


# ----------------------------------------------------------------------
# jobs resolution (satellite 1)
# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ExecutionError, match="jobs"):
            resolve_jobs(-2)

    def test_runner_accepts_jobs_zero(self):
        runner = CellRunner(jobs=0, faults=None)
        assert run_values(runner, [2, 3]) == [4, 9]


# ----------------------------------------------------------------------
# The fault plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan.of({
            0: [Fault("crash", attempts=(1,))],
            3: [Fault("hang", duration=9.5), Fault("raise", attempts=(2, 3),
                                                   message="flaky")],
            5: [Fault("corrupt")],
        })
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_from_env(self, monkeypatch):
        plan = FaultPlan.single(2, Fault("raise", attempts=(1,)))
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        assert FaultPlan.from_env() == plan
        monkeypatch.delenv(FAULTS_ENV_VAR)
        assert FaultPlan.from_env() is None

    def test_fires_on(self):
        every = Fault("raise")
        assert every.fires_on(1) and every.fires_on(99)
        once = Fault("raise", attempts=(2,))
        assert not once.fires_on(1) and once.fires_on(2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionError, match="kind"):
            Fault("explode")

    def test_crash_and_hang_inert_in_parent(self):
        # In the driver process an injected crash/hang must be a no-op —
        # this is what makes serial fallback and base-seed recovery safe.
        plan = FaultPlan.of({0: [Fault("crash")], 1: [Fault("hang")]})
        plan.apply(0, 1)
        plan.apply(1, 1)  # returns immediately; no sleep, no exit

    def test_corrupted_sentinel_survives_pickle(self):
        value = pickle.loads(pickle.dumps(Corrupted(3, 1)))
        assert is_corrupted(value)
        assert not is_corrupted({"fine": 1})

    def test_raise_fault_raises_fault_injection_error(self):
        plan = FaultPlan.single(4, Fault("raise", message="boom"))
        with pytest.raises(FaultInjectionError, match="boom"):
            plan.apply(4, 1)


# ----------------------------------------------------------------------
# Serial execution (jobs=1)
# ----------------------------------------------------------------------
class TestSerialRunner:
    def test_fault_free(self):
        records = CellRunner(jobs=1, faults=None).run(PAYLOADS, square_cell)
        assert [r.value for r in records] == EXPECTED
        assert all(r.ok and r.status == "ok" and r.attempts == 1 for r in records)

    def test_transient_raise_healed_by_retry(self):
        plan = FaultPlan.single(3, Fault("raise", attempts=(1, 2)))
        runner = CellRunner(
            jobs=1, policy=FailurePolicy(retries=2, **FAST), faults=plan
        )
        records = runner.run(PAYLOADS, square_cell)
        assert [r.value for r in records] == EXPECTED
        assert records[3].attempts == 3 and records[3].retried
        assert records[2].attempts == 1

    def test_persistent_raise_becomes_skip_record(self):
        plan = FaultPlan.single(1, Fault("raise", message="always"))
        runner = CellRunner(
            jobs=1, policy=FailurePolicy(retries=1, on_error="skip", **FAST),
            faults=plan,
        )
        records = runner.run(PAYLOADS, square_cell)
        failed = records[1]
        assert failed.status == "failed" and failed.attempts == 2
        assert failed.error is not None
        assert failed.error.type_name == "FaultInjectionError"
        assert "always" in failed.error.message
        assert failed.error.traceback_text  # structured, replayable record
        # Every other cell still produced its value.
        assert [r.value for r in records if r.ok] == [
            v for i, v in enumerate(EXPECTED) if i != 1
        ]

    def test_on_error_fail_reraises_original_exception(self):
        plan = FaultPlan.single(0, Fault("raise", message="fatal"))
        runner = CellRunner(
            jobs=1, policy=FailurePolicy(retries=0, on_error="fail"), faults=plan
        )
        with pytest.raises(FaultInjectionError, match="fatal"):
            runner.run(PAYLOADS, square_cell)

    def test_corrupted_result_detected(self):
        plan = FaultPlan.single(2, Fault("corrupt"))
        runner = CellRunner(
            jobs=1, policy=FailurePolicy(retries=1, **FAST), faults=plan
        )
        records = runner.run(PAYLOADS, square_cell)
        assert records[2].status == "failed"
        assert records[2].error.type_name == "CorruptedResult"

    def test_result_check_rejects_invalid_values(self):
        runner = CellRunner(
            jobs=1, policy=FailurePolicy(retries=0), faults=None,
            result_check=lambda v: v != 9,
        )
        records = runner.run(PAYLOADS, square_cell)
        assert records[3].status == "failed"
        assert records[3].error.type_name == "InvalidResult"

    def test_circuit_breaker_trips_on_max_failures(self):
        plan = FaultPlan.of({i: [Fault("raise")] for i in range(4)})
        runner = CellRunner(
            jobs=1,
            policy=FailurePolicy(retries=0, max_failures=2, on_error="skip"),
            faults=plan,
        )
        with pytest.raises(ExecutionError, match="circuit breaker"):
            runner.run(PAYLOADS, square_cell)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FailurePolicy(backoff_seed=7)
        delays = [policy.backoff_delay(3, a) for a in range(1, 6)]
        assert delays == [policy.backoff_delay(3, a) for a in range(1, 6)]
        assert all(0 <= d <= policy.backoff_cap + policy.backoff_jitter
                   for d in delays)
        # Exponential growth until the cap dominates.
        assert delays[1] >= delays[0]


# ----------------------------------------------------------------------
# Pool execution (jobs > 1)
# ----------------------------------------------------------------------
class TestPoolRunner:
    def test_pool_matches_serial_fault_free(self):
        serial = CellRunner(jobs=1, faults=None).run(PAYLOADS, square_cell)
        pooled = CellRunner(jobs=4, faults=None).run(PAYLOADS, square_cell)
        assert [r.value for r in pooled] == [r.value for r in serial]

    def test_crash_sweep_survivors_bit_identical_to_serial(self):
        # Cell 3 crashes once (healed by retry); cell 6 crashes on every
        # attempt (permanently lost).  The sweep still completes, and every
        # surviving value is byte-identical to the fault-free serial run.
        plan = FaultPlan.of({
            3: [Fault("crash", attempts=(1,))],
            6: [Fault("crash")],
        })
        # retries=3 leaves innocent cells enough budget to absorb being
        # implicated in several of cell 6's pool breaks.
        runner = CellRunner(
            jobs=4, policy=FailurePolicy(retries=3, on_error="skip", **FAST),
            faults=plan,
        )
        with pytest.warns(RuntimeWarning, match="worker process died"):
            records = runner.run(PAYLOADS, square_cell)
        assert records[6].status == "crashed"
        assert records[6].attempts == 4  # exhausted its retry budget
        assert records[6].error.type_name == "WorkerCrash"
        assert records[3].ok and records[3].retried
        serial = CellRunner(jobs=1, faults=None).run(PAYLOADS, square_cell)
        for record, reference in zip(records, serial):
            if record.ok:
                assert pickle.dumps(record.value) == pickle.dumps(reference.value)

    def test_timed_out_cell_retried_then_skipped(self):
        # Cell 1 hangs on every attempt; with a short timeout and one retry
        # it is killed twice, then skipped with a structured record, while
        # the innocent in-flight cells are requeued without attempt penalty.
        plan = FaultPlan.single(1, Fault("hang", duration=60.0))
        runner = CellRunner(
            jobs=2,
            policy=FailurePolicy(timeout=0.4, retries=1, on_error="skip", **FAST),
            faults=plan,
        )
        start = time.monotonic()
        records = runner.run(PAYLOADS, square_cell)
        elapsed = time.monotonic() - start
        assert records[1].status == "timed_out"
        assert records[1].attempts == 2
        assert "wall-clock timeout" in records[1].error.message
        assert records[1].error.type_name == "CellTimeout"
        survivors = [r for i, r in enumerate(records) if i != 1]
        assert all(r.ok and r.attempts == 1 for r in survivors)
        assert [r.value for r in survivors] == [
            v for i, v in enumerate(EXPECTED) if i != 1
        ]
        assert elapsed < 30, "hung workers must be killed, not awaited"

    def test_transient_raise_in_pool_healed(self):
        plan = FaultPlan.single(5, Fault("raise", attempts=(1,)))
        runner = CellRunner(
            jobs=3, policy=FailurePolicy(retries=2, **FAST), faults=plan
        )
        records = runner.run(PAYLOADS, square_cell)
        assert [r.value for r in records] == EXPECTED
        assert records[5].attempts == 2

    def test_serial_fallback_when_pool_keeps_breaking(self):
        # Crash on every attempt of every cell: the pool can never finish
        # anything.  Under on_error="serial" the runner degrades to
        # in-process execution (where crash faults are inert) and still
        # returns every value.
        plan = FaultPlan.of({i: [Fault("crash")] for i in range(len(PAYLOADS))})
        runner = CellRunner(
            jobs=2,
            policy=FailurePolicy(retries=1, on_error="serial",
                                 max_pool_respawns=1, **FAST),
            faults=plan,
        )
        with pytest.warns(RuntimeWarning, match="serial"):
            records = runner.run(PAYLOADS, square_cell)
        assert [r.value for r in records] == EXPECTED
        assert all(r.ok for r in records)

    def test_pool_on_error_fail_reraises(self):
        plan = FaultPlan.single(2, Fault("raise", message="pool fatal"))
        runner = CellRunner(
            jobs=2, policy=FailurePolicy(retries=0, on_error="fail"), faults=plan
        )
        with pytest.raises(FaultInjectionError, match="pool fatal"):
            runner.run(PAYLOADS, square_cell)

    def test_keyboard_interrupt_tears_down_cleanly(self, monkeypatch):
        # Simulate ^C arriving while the pool is mid-sweep: the runner must
        # warn about the partial results, kill the workers, and re-raise —
        # without hanging in executor shutdown.
        import repro.runtime.runner as runner_module

        real_wait = runner_module.wait
        calls = {"n": 0}

        def interrupting_wait(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return real_wait(*args, **kwargs)

        monkeypatch.setattr(runner_module, "wait", interrupting_wait)
        runner = CellRunner(jobs=2, faults=None)
        start = time.monotonic()
        with pytest.warns(RuntimeWarning, match="interrupted"):
            with pytest.raises(KeyboardInterrupt):
                runner.run(PAYLOADS, slow_cell)
        assert time.monotonic() - start < 30, "teardown must not hang"


# ----------------------------------------------------------------------
# Failure records and reporting
# ----------------------------------------------------------------------
class TestFailureRecords:
    def _records(self):
        plan = FaultPlan.single(1, Fault("raise", message="flaky sim"))
        runner = CellRunner(
            jobs=1, policy=FailurePolicy(retries=1, on_error="skip", **FAST),
            faults=plan,
        )
        return runner.run([10, 11, 12], square_cell)

    def test_failure_records_use_labels(self):
        failures = failure_records(self._records(), ["a", "b", "c"])
        assert len(failures) == 1
        failure = failures[0]
        assert failure.label == "b" and failure.status == "failed"
        assert failure.attempts == 2
        assert "flaky sim" in failure.error

    def test_format_failure_summary(self):
        failures = failure_records(self._records(), ["a", "b", "c"])
        table = format_failure_summary(failures)
        assert "b" in table and "failed" in table and "flaky sim" in table
        assert format_failure_summary([]) == "(no failed cells)"


# ----------------------------------------------------------------------
# Legacy adapter
# ----------------------------------------------------------------------
class TestLegacyAdapter:
    def test_returns_plain_values(self):
        assert run_experiment_cells(PAYLOADS, square_cell, jobs=1) == EXPECTED
        assert run_experiment_cells(PAYLOADS, square_cell, jobs=2) == EXPECTED

    def test_raises_on_first_fault(self, monkeypatch):
        plan = FaultPlan.single(0, Fault("raise", message="legacy"))
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        with pytest.raises(FaultInjectionError, match="legacy"):
            run_experiment_cells(PAYLOADS, square_cell, jobs=1)

    def test_old_import_path_still_works(self):
        from repro.parallel import run_experiment_cells as legacy
        assert legacy is run_experiment_cells


# ----------------------------------------------------------------------
# Level-3 seed search on the runtime
# ----------------------------------------------------------------------
class TestSeedSearchRecovery:
    def _program(self):
        circuit = QuantumCircuit(4, "prog")
        circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2).cx(2, 3)
        return circuit

    def test_all_candidate_workers_killed_base_seed_survives(self, monkeypatch):
        device = johannesburg()
        reference = transpile(
            self._program(), device, method="trios", seed=5,
            optimization_level=3, seed_trials=1,
        )
        # Kill the worker of every candidate seed on every attempt.  The
        # search must recompile the base seed in-process and return exactly
        # its result instead of failing.
        plan = FaultPlan.of({i: [Fault("crash")] for i in range(3)})
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        with pytest.warns(RuntimeWarning, match="worker process died"):
            survived = transpile(
                self._program(), device, method="trios", seed=5,
                optimization_level=3, seed_trials=3, jobs=2,
            )
        assert survived.circuit == reference.circuit
        search = survived.seed_search
        assert search["chosen_index"] == 0
        assert len(search["failed_seeds"]) == 3
        base_failure = next(
            f for f in search["failed_seeds"] if f["seed"] == 5
        )
        assert base_failure["recovered_serially"]
        assert all(f["status"] == "crashed" for f in search["failed_seeds"])

    def test_one_candidate_dropped_others_searched(self, monkeypatch):
        device = johannesburg()
        fault_free = transpile(
            self._program(), device, method="trios", seed=5,
            optimization_level=3, seed_trials=3, jobs=2,
        )
        # Kill only the second candidate; the search proceeds over the rest.
        plan = FaultPlan.single(1, Fault("crash"))
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        with pytest.warns(RuntimeWarning, match="worker process died"):
            partial = transpile(
                self._program(), device, method="trios", seed=5,
                optimization_level=3, seed_trials=3, jobs=2,
            )
        search = partial.seed_search
        killed = fault_free.seed_search["seeds"][1]
        failed = {f["seed"]: f for f in search["failed_seeds"]}
        # The faulted candidate is dropped, never retried into the results.
        assert failed[killed]["status"] == "crashed"
        surviving = {c["seed"] for c in search["candidates"]}
        assert killed not in surviving
        # The base seed always survives — either its pool worker finished
        # (it was merely implicated in a break and retried) or the search
        # recompiled it in-process.
        assert 5 in surviving
        if 5 in failed:
            assert failed[5]["recovered_serially"]


# ----------------------------------------------------------------------
# Experiment drivers aggregate partial results
# ----------------------------------------------------------------------
class TestDriverPartialResults:
    def test_sensitivity_skips_faulted_curve(self):
        benchmarks = ["cnx_inplace-4", "incrementer_borrowedbit-5"]
        plan = FaultPlan.single(0, Fault("raise", message="injected"))
        result = run_sensitivity_experiment(
            benchmarks=benchmarks, factors=[1.0, 10.0], jobs=1,
            retries=0, on_error="skip", faults=plan,
        )
        assert result.benchmarks() == ["incrementer_borrowedbit-5"]
        assert len(result.failures) == 1
        assert result.failures[0].label == "cnx_inplace-4"
        assert "injected" in result.failures[0].error

    def test_sensitivity_fault_free_unaffected(self):
        result = run_sensitivity_experiment(
            benchmarks=["cnx_inplace-4"], factors=[1.0, 10.0], jobs=1,
            faults=None,
        )
        assert result.failures == []
        assert result.benchmarks() == ["cnx_inplace-4"]
