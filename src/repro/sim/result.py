"""Shot-level execution results shared by every simulation backend.

:class:`NoisyResult` is the common return type of the
:class:`~repro.sim.SimulationBackend` protocol: a ``counts`` dictionary plus
convenience accessors, mimicking a hardware job result.  It lives in its own
module so that both the noisy samplers (:mod:`repro.sim.noise`) and the ideal
simulator (:mod:`repro.sim.statevector`) can produce it without circular
imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..exceptions import SimulationError


@dataclass
class NoisyResult:
    """Counts plus convenience accessors, mimicking a hardware job result."""

    counts: Dict[str, int]
    shots: int
    measured_qubits: Tuple[int, ...]

    def probability_of(self, bitstring: str) -> float:
        """Fraction of shots that produced ``bitstring``."""
        if self.shots == 0:
            raise SimulationError("no shots were taken")
        return self.counts.get(bitstring, 0) / self.shots

    def success_rate(self, expected: str) -> float:
        """The paper's success-rate metric: fraction of shots matching ``expected``."""
        return self.probability_of(expected)


def counts_from_bit_array(bits: np.ndarray) -> Dict[str, int]:
    """Aggregate a ``(shots, width)`` 0/1 array into a counts dictionary.

    This is the vectorized tail of every batched sampler: rows are packed into
    integers, tallied with a single :func:`numpy.unique`, and formatted as
    bitstrings (leftmost character = first measured qubit).
    """
    shots, width = bits.shape
    if width == 0:
        return {"": int(shots)} if shots else {}
    place_values = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    packed = bits.astype(np.int64) @ place_values
    values, tallies = np.unique(packed, return_counts=True)
    return {
        format(int(value), f"0{width}b"): int(tally)
        for value, tally in zip(values, tallies)
    }
