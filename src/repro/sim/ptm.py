"""Exact open-system simulation in the Pauli transfer matrix picture.

Where the density backend (:mod:`repro.sim.density`) evolves the full complex
``2^n x 2^n`` density matrix, :class:`PauliTransferMatrixSimulator` stores the
*same* state as its real-valued coefficient vector in the normalized Pauli
basis: ``r[alpha] = Tr(P_alpha rho) / sqrt(2^n)`` over the ``4^n`` Pauli
strings ``alpha`` (quantumsim-style).  Hermiticity of ``rho`` makes every
coefficient real, so the state costs ``4^n`` float64 values — **half** the
memory of the flat complex density vector — and every operation becomes one
real matrix contraction:

* a unitary ``U`` on ``k`` qubits is its real ``4^k x 4^k`` PTM
  (:func:`~repro.sim.channels.unitary_ptm`), one contraction instead of the
  density backend's two complex applies;
* a noise channel is its cached PTM
  (:meth:`~repro.sim.channels.QuantumChannel.ptm`), derived once per
  calibration from the cached superoperator by the Pauli basis change;
* composition is matrix product, so the **fusion layer**
  (:func:`fuse_ptm_ops`) collapses runs of same-wire one-qubit
  gates/channels into one 4x4 PTM and absorbs pending 1q PTMs plus each
  gate's own noise channel into a single ``4^k x 4^k`` contraction —
  typically several fewer state-sized sweeps per gate.

Implementation notes
--------------------
The Pauli vector is indexed by ``n`` base-4 digits (I=0, X=1, Y=2, Z=3;
qubit 0 most significant, matching the statevector convention).  Because a
base-4 digit is exactly two bits, applying a ``4^k x 4^k`` PTM over ``k``
base-4 wires *is* applying it over ``2k`` base-2 wires of a ``2n``-wire
tensor — so the whole evolution reuses
:func:`repro.sim.statevector.apply_matrix` unchanged, mirroring how
``sim/density.py`` reuses the same kernel over ``2n`` wires (see
:func:`apply_ptm`).

Outcome probabilities live entirely in the I/Z subspace: a projector
``|b><b|`` is a tensor product of ``(I ± Z)/2``, so ``p(b)`` is a per-qubit
Hadamard transform of the ``2^n`` coefficients whose digits are all I or Z
(:func:`pauli_probabilities`).  X/Y components never enter the readout,
which is what makes optional truncation of near-zero Pauli components
(``truncate_atol``) safe for effectively-sparse states.

Noise semantics are identical to the density backend — the same per-gate
channels from :class:`~repro.sim.channels.NoiseModel`, the same
``"global"``/``"damping"`` decoherence modes, and the very same classical
tail (:func:`repro.sim.density.finish_exact_distribution`) — so ``"ptm"``
and ``"density"`` agree to floating-point accuracy and the experiment
drivers treat them interchangeably.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration
from .channels import NoiseModel, unitary_ptm
from .density import finish_exact_distribution
from .result import NoisyResult
from .statevector import (
    apply_matrix,
    marginal_distribution,
    reduce_for_measurement,
)

#: Identity PTM on one qubit — the fusion accumulator's seed.
_IDENTITY_PTM = np.eye(4)
_IDENTITY_PTM.setflags(write=False)

#: One-qubit Hadamard-transform factor taking (c_I, c_Z) to (p_0, p_1).
_IZ_TO_PROB = np.array([[1.0, 1.0], [1.0, -1.0]]) / math.sqrt(2.0)
_IZ_TO_PROB.setflags(write=False)

#: A fused operation: target qubits plus the real PTM acting on them.
PtmOp = Tuple[Tuple[int, ...], np.ndarray]


def _fast_kron(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``np.kron`` for small 2-D arrays without its shape-juggling overhead.

    The fusion layer krons 4x4 blocks on every multi-qubit absorption, where
    ``np.kron``'s generality costs more than the product itself.
    """
    rows_a, cols_a = a.shape
    rows_b, cols_b = b.shape
    return (a[:, None, :, None] * b[None, :, None, :]).reshape(
        rows_a * rows_b, cols_a * cols_b
    )


_ZERO_STATE_CACHE: Dict[int, np.ndarray] = {}


def zero_pauli_state(num_qubits: int) -> np.ndarray:
    """``|0...0><0...0|`` as a flat real Pauli vector of length ``4**num_qubits``.

    ``|0><0| = (I + Z)/2``, so per qubit the normalized coefficients are
    ``(1/sqrt(2), 0, 0, 1/sqrt(2))`` on (I, X, Y, Z).
    """
    if num_qubits < 1:
        raise SimulationError("need at least one qubit")
    cached = _ZERO_STATE_CACHE.get(num_qubits)
    if cached is None:
        single = np.array([1.0, 0.0, 0.0, 1.0]) / math.sqrt(2.0)
        cached = single
        for _ in range(num_qubits - 1):
            cached = np.kron(cached, single)
        cached.setflags(write=False)
        _ZERO_STATE_CACHE[num_qubits] = cached
    return cached.copy()


def ptm_wires(qubits: Sequence[int]) -> Tuple[int, ...]:
    """The base-2 wires of the given base-4 Pauli digits.

    Digit ``q`` of the ``(4,)*n`` Pauli tensor occupies bits ``2q`` (high)
    and ``2q + 1`` (low) of the ``(2,)*2n`` view, in that order — the same
    trick the density backend uses to reuse the statevector kernel.
    """
    return tuple(bit for q in qubits for bit in (2 * q, 2 * q + 1))


def apply_ptm(
    state: np.ndarray, ptm: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a ``4^k x 4^k`` PTM to the given qubits of a Pauli vector.

    One real contraction via :func:`~repro.sim.statevector.apply_matrix`
    over the ``2k`` base-2 wires backing the ``k`` base-4 digits.
    """
    k = len(qubits)
    if ptm.shape != (4**k, 4**k):
        raise SimulationError(
            f"PTM of shape {ptm.shape} does not act on {k} qubits"
        )
    return apply_matrix(state, ptm, ptm_wires(qubits), 2 * num_qubits)


#: Kron-powers of the one-qubit I/Z→probability transform, cached per qubit
#: count.  At most ``2^10 x 2^10`` (8 MB); larger registers fall back to the
#: per-qubit sweep.
_IZ_TRANSFORM_CACHE: Dict[int, np.ndarray] = {}
_IZ_TRANSFORM_MAX_QUBITS = 10


def _iz_transform(num_qubits: int) -> np.ndarray:
    cached = _IZ_TRANSFORM_CACHE.get(num_qubits)
    if cached is None:
        cached = _IZ_TO_PROB
        for _ in range(num_qubits - 1):
            cached = _fast_kron(cached, _IZ_TO_PROB)
        cached = np.ascontiguousarray(cached)
        cached.setflags(write=False)
        _IZ_TRANSFORM_CACHE[num_qubits] = cached
    return cached


def pauli_probabilities(state: np.ndarray, num_qubits: int) -> np.ndarray:
    """The outcome distribution read off the I/Z-subspace components.

    ``|b><b|`` is a tensor product of ``(I + (-1)^{b_q} Z)/2``, so the
    probability vector is a per-qubit Hadamard transform of the ``2^n``
    coefficients whose base-4 digits are all I (0) or Z (3).  Clipped and
    renormalized exactly like the density backend's diagonal.
    """
    tensor = state.reshape((4,) * num_qubits)
    for axis in range(num_qubits):
        tensor = np.take(tensor, (0, 3), axis=axis)
    flat = tensor.reshape(-1)
    if num_qubits <= _IZ_TRANSFORM_MAX_QUBITS:
        flat = _iz_transform(num_qubits) @ flat
    else:
        for qubit in range(num_qubits):
            flat = apply_matrix(flat, _IZ_TO_PROB, (qubit,), num_qubits)
    probabilities = np.clip(flat.real if np.iscomplexobj(flat) else flat, 0.0, None)
    total = probabilities.sum()
    if total <= 0:
        raise SimulationError("Pauli vector has no probability mass")
    return probabilities / total


def fuse_ptm_ops(ops: Sequence[PtmOp]) -> List[PtmOp]:
    """Collapse a PTM op stream into fewer, larger contractions.

    Three fusions, all exact (PTM composition is matrix product):

    * consecutive one-qubit ops on the same wire accumulate into one 4x4
      PTM (a gate's unitary PTM and its noise PTM always fuse, as do whole
      1q runs such as the Toffoli decompositions' ``t``/``h`` chains);
    * a pending 1q PTM on a wire entering a multi-qubit op is absorbed into
      that op's PTM (one kron, zero extra state sweeps);
    * consecutive multi-qubit ops on the *same* qubit tuple — a CNOT and
      its depolarizing channel, back-to-back CNOT pairs — multiply into one
      ``4^k x 4^k`` PTM.

    Returns the fused op list in application order.
    """
    fused: List[PtmOp] = []
    pending: Dict[int, np.ndarray] = {}
    for qubits, ptm in ops:
        if len(qubits) == 1:
            qubit = qubits[0]
            held = pending.get(qubit)
            pending[qubit] = ptm if held is None else ptm @ held
            continue
        if any(q in pending for q in qubits):
            absorbed = pending.pop(qubits[0], _IDENTITY_PTM)
            for qubit in qubits[1:]:
                absorbed = _fast_kron(absorbed, pending.pop(qubit, _IDENTITY_PTM))
            ptm = ptm @ absorbed
        if fused and fused[-1][0] == qubits:
            fused[-1] = (qubits, ptm @ fused[-1][1])
        else:
            fused.append((qubits, ptm))
    fused.extend(((qubit,), ptm) for qubit, ptm in pending.items())
    return fused


class PauliTransferMatrixSimulator:
    """Exact open-system simulator evolving a real ``4^n`` Pauli vector.

    A drop-in peer of :class:`~repro.sim.density.DensityMatrixSimulator`
    (registered as backend ``"ptm"``): the same noise model, the same
    ``run_probabilities``/``run_counts`` surface, the same decoherence
    modes — but half the state memory and one real contraction per (fused)
    operation instead of multiple complex ones, which is what makes it the
    fast exact path on the Fig 6-8 noisy workloads
    (``benchmarks/bench_ptm.py``).

    Args:
        calibration: Device error model compiled into channels via
            :class:`~repro.sim.channels.NoiseModel`; ``None`` simulates
            noiselessly.
        seed: Seed for the multinomial generator behind :meth:`run_counts`.
        include_gate_errors / include_decoherence / include_readout_error:
            Toggles for the three noise contributions, mirroring the other
            backends.
        decoherence: ``"global"`` (the samplers' whole-register failure,
            default) or ``"damping"`` (per-qubit amplitude+phase damping per
            gate duration) — identical semantics to the density backend.
        max_active_qubits: Size limit; ``4**n`` *real* values, so the
            default 12 costs the same memory as the density backend's
            default 11 (the Pauli vector halves the bytes per qubit count).
        fuse: Run the channel-fusion layer (:func:`fuse_ptm_ops`) before
            contracting (default on; exact either way).
        truncate_atol: When positive, zero Pauli components with magnitude
            below this after every contraction — a lossy sparsity knob for
            effectively-sparse states (default ``0.0`` = exact).
    """

    def __init__(
        self,
        calibration: Optional[DeviceCalibration] = None,
        seed: Optional[int] = None,
        include_gate_errors: bool = True,
        include_decoherence: bool = True,
        include_readout_error: bool = True,
        decoherence: str = "global",
        max_active_qubits: int = 12,
        fuse: bool = True,
        truncate_atol: float = 0.0,
    ) -> None:
        if decoherence not in ("global", "damping"):
            raise SimulationError(
                f"unknown decoherence mode {decoherence!r}; "
                "expected 'global' or 'damping'"
            )
        if truncate_atol < 0:
            raise SimulationError(
                f"truncate_atol must be non-negative, got {truncate_atol}"
            )
        self.calibration = calibration
        self.noise_model = NoiseModel(calibration) if calibration is not None else None
        self.rng = np.random.default_rng(seed)
        self.include_gate_errors = include_gate_errors
        self.include_decoherence = include_decoherence
        self.include_readout_error = include_readout_error
        self.decoherence = decoherence
        self.max_active_qubits = max_active_qubits
        self.fuse = fuse
        self.truncate_atol = truncate_atol

    # ------------------------------------------------------------------
    def circuit_ops(self, circuit: QuantumCircuit) -> List[PtmOp]:
        """The raw PTM op stream of ``circuit``: gates plus noise channels.

        One op per unitary instruction (its cached
        :func:`~repro.sim.channels.unitary_ptm`), followed by its calibrated
        gate-error channel's PTM and, in ``"damping"`` mode, per-qubit idle
        damping PTMs — the exact operation sequence the density backend
        applies, expressed as real matrices.
        """
        ops: List[PtmOp] = []
        noisy = self.noise_model is not None
        damping = noisy and self.include_decoherence and self.decoherence == "damping"
        for instruction in circuit.instructions:
            if not instruction.gate.is_unitary:
                continue
            qubits = tuple(instruction.qubits)
            ops.append((qubits, unitary_ptm(instruction.gate.matrix())))
            if noisy and self.include_gate_errors:
                channel = self.noise_model.gate_channel(instruction)
                if channel is not None:
                    ops.append((qubits, channel.ptm()))
            if damping:
                duration = self.calibration.gate_duration(
                    instruction.name, instruction.qubits
                )
                idle = self.noise_model.idle_channel(duration)
                if idle is not None:
                    idle_ptm = idle.ptm()
                    ops.extend(((qubit,), idle_ptm) for qubit in qubits)
        return ops

    def evolve(self, circuit: QuantumCircuit) -> np.ndarray:
        """The final real ``4^n`` Pauli vector of ``circuit``.

        Global decoherence and readout are classical post-processing on the
        outcome distribution (shared with the density backend) and are *not*
        part of this vector.
        """
        if circuit.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{circuit.num_qubits} qubits exceeds the PTM simulator "
                f"limit ({self.max_active_qubits}); restrict to active "
                "qubits first"
            )
        num_qubits = circuit.num_qubits
        ops = self.circuit_ops(circuit)
        raw_ops = len(ops)
        if self.fuse:
            ops = fuse_ptm_ops(ops)
        state = zero_pauli_state(num_qubits)
        truncate = self.truncate_atol
        for qubits, ptm in ops:
            state = apply_ptm(state, ptm, qubits, num_qubits)
            if truncate > 0.0:
                state[np.abs(state) < truncate] = 0.0
        if obs.is_enabled():
            obs.counter("sim.ptm.op_applications").inc(len(ops))
            obs.counter("sim.ptm.fused_ops_saved").inc(raw_ops - len(ops))
            obs.histogram("sim.ptm.peak_bytes").observe(float(state.nbytes))
            obs.add_attrs(
                op_applications=len(ops),
                raw_ops=raw_ops,
                fused_ops_saved=raw_ops - len(ops),
                peak_bytes=state.nbytes,
            )
        return state

    def _exact_distribution(
        self,
        circuit: QuantumCircuit,
        measured_qubits: Optional[Sequence[int]],
    ) -> Tuple[np.ndarray, List[int]]:
        """The exact outcome distribution over the measured qubits, in order."""
        reduced, measured_qubits, compact_measured = reduce_for_measurement(
            circuit, measured_qubits
        )
        if reduced.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{reduced.num_qubits} active qubits exceeds the PTM "
                f"simulator limit ({self.max_active_qubits})"
            )
        with obs.span(
            "ptm.run", category="sim", source=circuit.name,
            qubits=reduced.num_qubits, fuse=self.fuse,
        ):
            state = self.evolve(reduced)
            probabilities = pauli_probabilities(state, reduced.num_qubits)
            distribution = marginal_distribution(
                probabilities, reduced.num_qubits, compact_measured
            )
            distribution = finish_exact_distribution(
                distribution, circuit, self, len(measured_qubits)
            )
        return distribution, measured_qubits

    # ------------------------------------------------------------------
    def run_probabilities(
        self,
        circuit: QuantumCircuit,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, float]:
        """The exact outcome distribution — the shot-free figure of merit.

        Same contract as
        :meth:`~repro.sim.density.DensityMatrixSimulator.run_probabilities`
        (the two backends agree to floating-point accuracy): a ``{bitstring:
        probability}`` mapping over the measured qubits with the shared
        ``1e-15`` floor, leftmost character = first measured qubit.
        """
        distribution, measured_qubits = self._exact_distribution(
            circuit, measured_qubits
        )
        width = len(measured_qubits)
        if width == 0:
            return {"": 1.0}
        return {
            format(index, f"0{width}b"): float(probability)
            for index, probability in enumerate(distribution)
            if probability > 1e-15
        }

    def success_probability(
        self,
        circuit: QuantumCircuit,
        expected: str,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> float:
        """Exact probability of reading ``expected`` — zero shot variance."""
        return self.run_probabilities(circuit, measured_qubits).get(expected, 0.0)

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """:class:`~repro.sim.SimulationBackend` entry point.

        One multinomial draw from the exact distribution, like the density
        backend; a non-``None`` ``seed`` reseeds the generator so repeated
        calls are reproducible.
        """
        if shots < 1:
            raise SimulationError("shots must be positive")
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        distribution, measured_qubits = self._exact_distribution(
            circuit, measured_qubits
        )
        width = len(measured_qubits)
        if width == 0:
            return NoisyResult(counts={"": shots}, shots=shots, measured_qubits=())
        draws = self.rng.multinomial(shots, distribution / distribution.sum())
        counts = {
            format(index, f"0{width}b"): int(tally)
            for index, tally in enumerate(draws)
            if tally
        }
        return NoisyResult(
            counts=counts, shots=shots, measured_qubits=tuple(measured_qubits)
        )
