"""The formal equivalence-checking harness.

Every rewrite the compiler performs — decomposition, routing, cancellation,
commutation-aware optimisation — is only trusted because it can be machine
checked.  This module is the single place that knows how to do that checking,
and it is consumed from three directions:

* the optimisation passes' debug mode
  (:class:`repro.passes.commutation.CommutativeCancellationPass` with
  ``verify=True``) re-checks every rewritten circuit;
* the test suite's property tests assert that each pass preserves semantics on
  randomized circuits;
* the benchmark harnesses (``benchmarks/bench_opt_levels.py``) verify that the
  level-3 optimizer's output is equivalent to the level-2 output cell by cell.

Two checking methods are provided and selected automatically by size:

* **unitary** — build both ``2^n x 2^n`` unitaries with
  :func:`repro.sim.unitary.circuit_unitary` and compare them exactly (up to
  global phase, and up to the wire permutation routing introduces).  Complete,
  but exponential: used up to :data:`MAX_UNITARY_QUBITS` qubits.
* **statevector** — run both circuits on a handful of random product states
  and compare the output states.  A randomized check (complete only with
  probability 1), but it scales to every circuit the statevector simulator
  can hold, which covers the full 20-qubit benchmark suite.

:func:`routed_circuits_equivalent` extends the check across a *compilation*:
it understands the initial/final layouts a pipeline produces, prepares inputs
on the initial wires, and demands the outputs appear on the final wires with
every ancilla wire returned to |0⟩.
"""

from __future__ import annotations

import numpy as np

from typing import Dict, Mapping, Optional

from ..circuits.circuit import QuantumCircuit
from ..exceptions import EquivalenceError, SimulationError
from .statevector import StatevectorSimulator, statevector_fidelity
from .unitary import (
    circuit_unitary,
    equal_up_to_global_phase,
    permutation_unitary,
    phase_aligned_distance,
)

#: Largest circuit compared via its full unitary when ``method="auto"``.
MAX_UNITARY_QUBITS = 10

#: Largest circuit compared via random statevectors when ``method="auto"``.
MAX_STATEVECTOR_QUBITS = 20


def _strippable(circuit: QuantumCircuit) -> QuantumCircuit:
    """A measurement- and barrier-free copy (what both methods compare)."""
    if any(inst.name in ("measure", "barrier") for inst in circuit.instructions):
        return circuit.without(["measure", "barrier"])
    return circuit


def unpermute_statevector(
    state: np.ndarray, permutation: Mapping[int, int], num_qubits: int
) -> np.ndarray:
    """Undo a wire relabelling on a statevector.

    If routing moved logical qubit ``q``'s data to wire ``permutation[q]``,
    this returns the state re-expressed on the logical labels — the
    statevector analogue of composing with
    :func:`~repro.sim.unitary.permutation_unitary` transposed, but in
    O(2^n) instead of O(4^n).
    """
    axes = [permutation.get(q, q) for q in range(num_qubits)]
    if sorted(axes) != list(range(num_qubits)):
        raise SimulationError(f"permutation {dict(permutation)!r} is not a bijection")
    tensor = np.asarray(state).reshape((2,) * num_qubits)
    return tensor.transpose(axes).reshape(-1)


def _random_product_prep(num_qubits: int, rng: np.random.Generator) -> QuantumCircuit:
    """A circuit preparing an independent random single-qubit state per wire."""
    prep = QuantumCircuit(num_qubits, "prep")
    for qubit in range(num_qubits):
        theta, phi, lam = rng.uniform(0.0, 2.0 * np.pi, size=3)
        prep.u3(theta, phi, lam, qubit)
    return prep


def _unitary_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    final_permutation: Optional[Mapping[int, int]],
    up_to_global_phase: bool,
    atol: float,
) -> bool:
    unitary_a = circuit_unitary(circuit_a, max_qubits=circuit_a.num_qubits)
    unitary_b = circuit_unitary(circuit_b, max_qubits=circuit_b.num_qubits)
    if final_permutation:
        perm = permutation_unitary(dict(final_permutation), circuit_b.num_qubits)
        unitary_b = perm.conj().T @ unitary_b
    if up_to_global_phase:
        return equal_up_to_global_phase(unitary_a, unitary_b, atol=atol)
    return bool(np.allclose(unitary_a, unitary_b, atol=atol))


def _statevector_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    final_permutation: Optional[Mapping[int, int]],
    up_to_global_phase: bool,
    atol: float,
    trials: int,
    seed: int,
) -> bool:
    num_qubits = circuit_a.num_qubits
    rng = np.random.default_rng(seed)
    simulator = StatevectorSimulator(num_qubits_limit=num_qubits + 1)
    # The deviation tolerated per amplitude is atol; random states spread any
    # operator difference across 2^n amplitudes, so compare fidelities against
    # a matching bound instead of entry-wise closeness.
    fidelity_floor = 1.0 - max(atol, 1e-10) * 10
    for _ in range(trials):
        prep = _random_product_prep(num_qubits, rng)
        state_a = simulator.run(prep.copy().extend(circuit_a.instructions))
        state_b = simulator.run(prep.copy().extend(circuit_b.instructions))
        if final_permutation:
            state_b = unpermute_statevector(state_b, final_permutation, num_qubits)
        if up_to_global_phase:
            if statevector_fidelity(state_a, state_b) < fidelity_floor:
                return False
        elif not np.allclose(state_a, state_b, atol=max(atol, 1e-7)):
            return False
    return True


def circuits_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    final_permutation: Optional[Dict[int, int]] = None,
    *,
    up_to_global_phase: bool = True,
    atol: float = 1e-8,
    method: str = "auto",
    trials: int = 4,
    seed: int = 20260730,
) -> bool:
    """Whether two measurement-free circuits implement the same operation.

    Args:
        circuit_a: Reference circuit.
        circuit_b: Candidate circuit (e.g. after an optimisation pass).
        final_permutation: If routing moved logical qubit ``q``'s data to wire
            ``final_permutation[q]``, pass that map so the comparison undoes
            it before comparing.
        up_to_global_phase: Treat circuits differing only by an overall
            complex phase as equivalent (the physically meaningful notion,
            and the default).  Note the ``"statevector"`` method cannot
            distinguish a *global* phase on entangled outputs either way.
        atol: Numerical tolerance.
        method: ``"unitary"`` for the exact ``2^n x 2^n`` comparison,
            ``"statevector"`` for the randomized product-state check, or
            ``"auto"`` (default) to pick by circuit size
            (:data:`MAX_UNITARY_QUBITS` / :data:`MAX_STATEVECTOR_QUBITS`).
        trials: Random input states for the ``"statevector"`` method.
        seed: Seed for those random inputs (the check is deterministic).

    Raises:
        SimulationError: Unknown method, mismatched widths are reported as
            ``False`` — but a circuit too large even for the statevector
            method raises.
    """
    if circuit_a.num_qubits != circuit_b.num_qubits:
        return False
    circuit_a = _strippable(circuit_a)
    circuit_b = _strippable(circuit_b)
    num_qubits = circuit_a.num_qubits
    if method == "auto":
        method = "unitary" if num_qubits <= MAX_UNITARY_QUBITS else "statevector"
    if method == "unitary":
        return _unitary_equivalent(
            circuit_a, circuit_b, final_permutation, up_to_global_phase, atol
        )
    if method == "statevector":
        if num_qubits > MAX_STATEVECTOR_QUBITS:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the statevector equivalence "
                f"limit ({MAX_STATEVECTOR_QUBITS})"
            )
        return _statevector_equivalent(
            circuit_a, circuit_b, final_permutation, up_to_global_phase,
            atol, trials, seed,
        )
    raise SimulationError(
        f"unknown equivalence method {method!r}; use 'auto', 'unitary' or "
        f"'statevector'"
    )


def assert_unitary_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    final_permutation: Optional[Dict[int, int]] = None,
    *,
    up_to_global_phase: bool = True,
    atol: float = 1e-8,
    max_qubits: int = 12,
    context: str = "",
) -> None:
    """Assert two circuits have the same unitary, with a diagnostic message.

    The exact (non-randomized) check: both full unitaries are built and
    compared.  On failure an :class:`~repro.exceptions.EquivalenceError` —
    which is also an :class:`AssertionError` — reports the phase-aligned
    operator deviation and both gate histograms, so a failing pass test or a
    tripped pass debug mode is immediately actionable.

    Args:
        circuit_a: Reference circuit.
        circuit_b: Candidate circuit.
        final_permutation: Wire relabelling introduced by routing, undone
            before comparison.
        up_to_global_phase: Ignore an overall complex phase (default).
        atol: Numerical tolerance.
        max_qubits: Refuse (with an error) to build larger unitaries.
        context: Optional prefix naming what was being verified.
    """
    prefix = f"{context}: " if context else ""
    if circuit_a.num_qubits != circuit_b.num_qubits:
        raise EquivalenceError(
            f"{prefix}circuits have different widths "
            f"({circuit_a.num_qubits} vs {circuit_b.num_qubits} qubits)"
        )
    stripped_a = _strippable(circuit_a)
    stripped_b = _strippable(circuit_b)
    unitary_a = circuit_unitary(stripped_a, max_qubits=max_qubits)
    unitary_b = circuit_unitary(stripped_b, max_qubits=max_qubits)
    if final_permutation:
        perm = permutation_unitary(dict(final_permutation), circuit_b.num_qubits)
        unitary_b = perm.conj().T @ unitary_b
    if up_to_global_phase:
        equal = equal_up_to_global_phase(unitary_a, unitary_b, atol=atol)
    else:
        equal = bool(np.allclose(unitary_a, unitary_b, atol=atol))
    if equal:
        return
    deviation = phase_aligned_distance(unitary_a, unitary_b)
    raise EquivalenceError(
        f"{prefix}circuits {circuit_a.name!r} and {circuit_b.name!r} are not "
        f"unitarily equivalent (phase-aligned max deviation {deviation:.3e}, "
        f"atol {atol:g}); gate counts {stripped_a.count_ops()} vs "
        f"{stripped_b.count_ops()}"
    )


def routed_circuits_equivalent(
    logical: QuantumCircuit,
    compiled: QuantumCircuit,
    initial_layout: Mapping[int, int],
    final_layout: Mapping[int, int],
    *,
    trials: int = 3,
    seed: int = 7,
    max_active: int = 14,
    fidelity_floor: float = 1.0 - 1e-7,
) -> float:
    """Check a compiled circuit against its logical source, layouts included.

    The logical circuit's qubit ``q`` starts on device wire
    ``initial_layout[q]`` and its data must end on wire ``final_layout[q]``;
    every other wire the compiled circuit touches starts in |0⟩ and must end
    in |0⟩ (routing SWAP chains only move those zeros around).  The check
    prepares random single-qubit product states on the logical inputs, runs
    both circuits, and compares the full output states.

    Returns:
        The worst fidelity observed across the ``trials`` random inputs
        (1.0 means indistinguishable).  Callers asserting equivalence should
        compare it against ``fidelity_floor`` — or use
        :func:`assert_routed_equivalent`, which does and raises.

    Raises:
        SimulationError: When more than ``max_active`` device wires are
            involved (the dense simulation would not fit).
    """
    rng = np.random.default_rng(seed)
    simulator = StatevectorSimulator(num_qubits_limit=max_active + 2)
    compiled = compiled.without(["measure", "barrier"])
    logical = logical.without(["measure", "barrier"])
    initial = dict(initial_layout)
    final = dict(final_layout)
    active = sorted(
        compiled.active_qubits() | set(initial.values()) | set(final.values())
    )
    if len(active) > max_active:
        raise SimulationError(
            f"{len(active)} active wires is too many for an equivalence "
            f"check (limit {max_active})"
        )
    compact = {wire: index for index, wire in enumerate(active)}
    mapping = {w: compact[w] for w in compiled.active_qubits()}
    compiled_small = compiled.remap_qubits(mapping, num_qubits=len(active))
    num_wires = len(active)
    num_logical = logical.num_qubits

    worst = 1.0
    for _ in range(trials):
        angles = rng.uniform(0, 2 * np.pi, size=(num_logical, 3))
        # Reference: preparation + logical circuit on the logical register.
        reference = QuantumCircuit(num_logical)
        for qubit in range(num_logical):
            reference.u3(*angles[qubit], qubit)
        reference.extend(logical.instructions)
        expected_small = simulator.run(reference)
        # Compiled: the same preparation applied on the initial wires.
        prep = QuantumCircuit(num_wires)
        for qubit in range(num_logical):
            prep.u3(*angles[qubit], compact[initial[qubit]])
        prep.extend(compiled_small.instructions)
        actual = simulator.run(prep)
        # Build the expected full state: logical output amplitudes live on the
        # final wires, every other wire is |0⟩.
        expected = np.zeros(2**num_wires, dtype=complex)
        for index in range(2**num_logical):
            wire_index = 0
            for qubit in range(num_logical):
                bit = (index >> (num_logical - 1 - qubit)) & 1
                if bit:
                    wire_index |= 1 << (num_wires - 1 - compact[final[qubit]])
            expected[wire_index] = expected_small[index]
        worst = min(worst, statevector_fidelity(actual, expected))
        if worst < fidelity_floor:
            break
    return worst


def assert_routed_equivalent(
    logical: QuantumCircuit,
    compiled: QuantumCircuit,
    initial_layout: Mapping[int, int],
    final_layout: Mapping[int, int],
    *,
    trials: int = 3,
    seed: int = 7,
    max_active: int = 14,
    fidelity_floor: float = 1.0 - 1e-7,
    context: str = "",
) -> None:
    """Assert a compilation preserved semantics; raise with the fidelity if not."""
    fidelity = routed_circuits_equivalent(
        logical, compiled, initial_layout, final_layout,
        trials=trials, seed=seed, max_active=max_active,
        fidelity_floor=fidelity_floor,
    )
    if fidelity < fidelity_floor:
        prefix = f"{context}: " if context else ""
        raise EquivalenceError(
            f"{prefix}compiled circuit for {logical.name!r} deviates from the "
            f"original (fidelity {fidelity:.6f} < {fidelity_floor})"
        )
