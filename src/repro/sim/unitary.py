"""Exact unitary construction for small circuits.

Used almost exclusively for verification: every Toffoli decomposition, routing
pass and optimisation pass in this library is checked against the original
circuit's unitary (up to global phase, and up to the qubit permutation that
routing introduces).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError


def circuit_unitary(circuit: QuantumCircuit, max_qubits: int = 12) -> np.ndarray:
    """The full ``2^n x 2^n`` unitary of a measurement-free circuit."""
    if circuit.num_qubits > max_qubits:
        raise SimulationError(
            f"building a unitary on {circuit.num_qubits} qubits is too large "
            f"(limit {max_qubits})"
        )
    num_qubits = circuit.num_qubits
    dim = 2**num_qubits
    # Keep the accumulated unitary as a tensor with one axis per output qubit
    # plus a trailing "input column" axis, so each gate is a single tensordot.
    unitary = np.eye(dim, dtype=complex).reshape((2,) * num_qubits + (dim,))
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            continue
        if not instruction.gate.is_unitary:
            raise SimulationError(
                f"circuit contains non-unitary operation {instruction.name!r}"
            )
        qubits = list(instruction.qubits)
        k = len(qubits)
        gate_tensor = instruction.gate.matrix().reshape((2,) * (2 * k))
        unitary = np.tensordot(gate_tensor, unitary, axes=(list(range(k, 2 * k)), qubits))
        unitary = np.moveaxis(unitary, list(range(k)), qubits)
    return unitary.reshape(dim, dim)


def permutation_unitary(permutation: Dict[int, int], num_qubits: int) -> np.ndarray:
    """Unitary that relabels qubit ``q`` to ``permutation[q]``.

    After routing, the data that started on logical wire ``q`` may end on a
    different physical wire; composing with this permutation lets routed
    circuits be compared against the original unitary.
    """
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for index in range(dim):
        bits = [(index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        new_bits = [0] * num_qubits
        for q in range(num_qubits):
            new_bits[permutation.get(q, q)] = bits[q]
        new_index = 0
        for bit in new_bits:
            new_index = (new_index << 1) | bit
        matrix[new_index, index] = 1.0
    return matrix


def equal_up_to_global_phase(
    matrix_a: np.ndarray, matrix_b: np.ndarray, atol: float = 1e-8
) -> bool:
    """Whether two unitaries are equal up to an overall complex phase."""
    if matrix_a.shape != matrix_b.shape:
        return False
    # Find the largest entry of matrix_b to fix the relative phase robustly.
    index = np.unravel_index(np.argmax(np.abs(matrix_b)), matrix_b.shape)
    if abs(matrix_b[index]) < atol:
        return bool(np.allclose(matrix_a, matrix_b, atol=atol))
    phase = matrix_a[index] / matrix_b[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(matrix_a, matrix_b * phase, atol=atol))


def phase_aligned_distance(matrix_a: np.ndarray, matrix_b: np.ndarray) -> float:
    """Max entry-wise deviation after aligning the global phase.

    The phase is fixed at ``matrix_b``'s largest-magnitude entry (the same
    anchor :func:`equal_up_to_global_phase` uses), so this is the deviation
    that check compared against its tolerance — the number to report when an
    equivalence assertion fails.
    """
    if matrix_a.shape != matrix_b.shape:
        raise SimulationError(
            f"cannot compare matrices of shapes {matrix_a.shape} and {matrix_b.shape}"
        )
    index = np.unravel_index(np.argmax(np.abs(matrix_b)), matrix_b.shape)
    anchor = matrix_b[index]
    if abs(anchor) == 0.0:
        return float(np.max(np.abs(matrix_a - matrix_b)))
    phase = matrix_a[index] / anchor
    if abs(phase) > 0:
        phase = phase / abs(phase)
    else:
        phase = 1.0
    return float(np.max(np.abs(matrix_a - matrix_b * phase)))


def circuits_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    final_permutation: Optional[Dict[int, int]] = None,
    atol: float = 1e-8,
) -> bool:
    """Whether two circuits implement the same unitary.

    Legacy location: the implementation lives in
    :func:`repro.sim.equivalence.circuits_equivalent` (the package-level
    export), which this delegates to so both import paths behave
    identically.  The lazy import avoids a module cycle — ``equivalence``
    builds on this module's :func:`circuit_unitary`.
    """
    from .equivalence import circuits_equivalent as _impl

    return _impl(circuit_a, circuit_b, final_permutation, atol=atol)
