"""Simulators: ideal statevector/unitary, noisy samplers, exact density matrix.

Module map
----------
* :mod:`~repro.sim.statevector` — dense noiseless statevector evolution, the
  ``apply_matrix`` tensor-contraction kernel and marginal distributions.
* :mod:`~repro.sim.unitary` — whole-circuit unitaries and phase-aligned
  matrix comparisons.
* :mod:`~repro.sim.equivalence` — the formal equivalence-checking harness:
  exact unitary and randomized statevector circuit comparison
  (:func:`circuits_equivalent`, :func:`assert_unitary_equivalent`) plus
  layout-aware compiled-vs-logical checks (:func:`routed_circuits_equivalent`),
  shared by the optimisation passes' debug mode, the test suite and the
  benchmark harnesses.
* :mod:`~repro.sim.channels` — the noise-channel layer: Kraus/superoperator
  :class:`~repro.sim.channels.QuantumChannel` objects compiled from a
  :class:`~repro.hardware.calibration.DeviceCalibration` by
  :class:`~repro.sim.channels.NoiseModel`, with CPTP validation.  Both the
  samplers and the density backend read their error model from here.
* :mod:`~repro.sim.noise` — shot-sampling noisy engines: the stochastic-Pauli
  trajectory Monte Carlo and the paper's gate-failure model, batched over the
  shot dimension.
* :mod:`~repro.sim.density` — the exact open-system engine: density-matrix
  evolution under the same channels, analytic outcome distributions
  (``run_probabilities``) and multinomial shot sampling (``run_counts``).
* :mod:`~repro.sim.ptm` — the fast exact open-system engine: the same noise
  model evolved as a real ``4^n`` Pauli-transfer-matrix vector (quantumsim
  style) with channel fusion and optional component truncation — half the
  memory of the density matrix and one real contraction per fused operation.
* :mod:`~repro.sim.estimator` — the paper's closed-form success model (§2.6).
* :mod:`~repro.sim.result` — the :class:`NoisyResult` counts container.

Every shot-producing engine implements the :class:`SimulationBackend`
protocol — ``run_counts(circuit, shots, measured_qubits, seed) ->
NoisyResult`` — so experiment code can select an execution model by name via
:func:`get_backend` instead of hard-wiring sampler classes.  Backends that can
also produce *exact* outcome distributions additionally expose
``run_probabilities(circuit, measured_qubits) -> {bitstring: probability}``
(``"density"``, ``"ptm"`` and ``"ideal"`` today);
:func:`supports_exact_probabilities` tests for that capability, and
``BACKEND_CAPABILITIES`` records the exact/sampled classification per name.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration
from .result import NoisyResult, counts_from_bit_array
from .statevector import (
    StatevectorSimulator,
    zero_state,
    basis_state,
    apply_matrix,
    marginal_distribution,
    marginal_probabilities,
    statevector_fidelity,
)
from .unitary import (
    circuit_unitary,
    permutation_unitary,
    equal_up_to_global_phase,
    phase_aligned_distance,
)
from .equivalence import (
    assert_routed_equivalent,
    assert_unitary_equivalent,
    circuits_equivalent,
    routed_circuits_equivalent,
    unpermute_statevector,
)
from .estimator import (
    SuccessEstimate,
    estimate_success,
    success_probability,
    success_ratio,
    circuit_duration,
)
from .channels import (
    NoiseModel,
    QuantumChannel,
    amplitude_damping_channel,
    amplitude_phase_damping_channel,
    depolarizing_channel,
    gate_error_probability,
    idle_channel,
    pauli_channel,
    phase_damping_channel,
    readout_confusion,
    unitary_channel,
)
from .density import DensityMatrixSimulator
from .ptm import PauliTransferMatrixSimulator
from .noise import PauliTrajectorySampler, GateFailureSampler


@runtime_checkable
class SimulationBackend(Protocol):
    """Anything that can turn a circuit into hardware-style shot counts."""

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """Execute ``circuit`` for ``shots`` shots and return counts."""
        ...


#: One-line description per registered backend, in documentation order.
BACKEND_DESCRIPTIONS: Dict[str, str] = {
    "failure": "the paper's gate-failure model, vectorized over shots",
    "trajectory": "stochastic-Pauli Monte Carlo, one evolution per unique error pattern",
    "density": "exact density-matrix evolution; analytic probabilities, multinomial counts",
    "ptm": "exact Pauli-transfer-matrix evolution with channel fusion; fast exact path",
    "ideal": "noiseless statevector sampling",
}

#: Registered backend names, in documentation order.
BACKEND_NAMES: Tuple[str, ...] = tuple(BACKEND_DESCRIPTIONS)

#: Capability classification per registered backend: ``"exact"`` engines
#: expose analytic ``run_probabilities``; ``"sampled"`` engines only produce
#: shot counts.  Every ``BACKEND_NAMES`` entry must appear here (enforced by
#: ``tests/test_backend_registry.py``).
BACKEND_CAPABILITIES: Dict[str, str] = {
    "failure": "sampled",
    "trajectory": "sampled",
    "density": "exact",
    "ptm": "exact",
    "ideal": "exact",
}

#: Names (and aliases) whose :func:`get_backend` result exposes
#: ``run_probabilities`` — the ``"exact"`` entries of ``BACKEND_CAPABILITIES``
#: plus the ``"statevector"`` alias; the CLI's ``--exact`` mode substitutes
#: ``"density"`` for anything not listed here.
EXACT_PROBABILITY_BACKENDS: Tuple[str, ...] = tuple(
    name for name, kind in BACKEND_CAPABILITIES.items() if kind == "exact"
) + ("statevector",)


def supports_exact_probabilities(backend: object) -> bool:
    """Whether ``backend`` can return analytic outcome distributions.

    True for engines exposing ``run_probabilities`` (the ``"density"``,
    ``"ptm"`` and ``"ideal"`` backends); the experiment drivers'
    ``exact=True`` mode requires this capability.
    """
    return callable(getattr(backend, "run_probabilities", None))


def get_backend(
    name: str,
    calibration: Optional[DeviceCalibration] = None,
    seed: Optional[int] = None,
    **kwargs,
) -> SimulationBackend:
    """Construct a :class:`SimulationBackend` by name.

    Args:
        name: ``"failure"`` for the fast gate-failure model, ``"trajectory"``
            for the stochastic-Pauli Monte Carlo, ``"density"`` for exact
            density-matrix evolution (multinomial shot sampling, plus
            ``run_probabilities``), ``"ptm"`` for the fused
            Pauli-transfer-matrix engine (same exact semantics as
            ``"density"``, typically several times faster), ``"ideal"``
            (alias ``"statevector"``) for noiseless sampling.
        calibration: Device error model; required by the noisy backends and
            ignored by the ideal one.
        seed: Seed for the backend's random generator (``run_counts`` may
            override it per call).
        **kwargs: Extra constructor arguments, e.g. ``max_active_qubits`` for
            the noisy backends or ``num_qubits_limit`` for the ideal one.

    Raises:
        SimulationError: For an unknown name (the message lists every
            registered backend) or a missing required calibration.
    """
    key = name.lower()
    if key in ("ideal", "statevector"):
        return StatevectorSimulator(seed=seed, **kwargs)
    if key in ("failure", "trajectory", "density", "ptm") and calibration is None:
        raise SimulationError(f"backend {name!r} requires a device calibration")
    if key == "failure":
        return GateFailureSampler(calibration, seed=seed, **kwargs)
    if key == "trajectory":
        return PauliTrajectorySampler(calibration, seed=seed, **kwargs)
    if key == "density":
        return DensityMatrixSimulator(calibration, seed=seed, **kwargs)
    if key == "ptm":
        return PauliTransferMatrixSimulator(calibration, seed=seed, **kwargs)
    raise SimulationError(
        f"unknown simulation backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
    )


__all__ = [
    "SimulationBackend",
    "BACKEND_NAMES",
    "BACKEND_DESCRIPTIONS",
    "BACKEND_CAPABILITIES",
    "EXACT_PROBABILITY_BACKENDS",
    "get_backend",
    "supports_exact_probabilities",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "PauliTransferMatrixSimulator",
    "zero_state",
    "basis_state",
    "apply_matrix",
    "marginal_distribution",
    "marginal_probabilities",
    "statevector_fidelity",
    "counts_from_bit_array",
    "circuit_unitary",
    "permutation_unitary",
    "equal_up_to_global_phase",
    "phase_aligned_distance",
    "circuits_equivalent",
    "assert_unitary_equivalent",
    "assert_routed_equivalent",
    "routed_circuits_equivalent",
    "unpermute_statevector",
    "SuccessEstimate",
    "estimate_success",
    "success_probability",
    "success_ratio",
    "circuit_duration",
    "QuantumChannel",
    "NoiseModel",
    "unitary_channel",
    "pauli_channel",
    "depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "amplitude_phase_damping_channel",
    "idle_channel",
    "readout_confusion",
    "gate_error_probability",
    "PauliTrajectorySampler",
    "GateFailureSampler",
    "NoisyResult",
]
