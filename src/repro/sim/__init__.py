"""Simulators: ideal statevector/unitary, noisy samplers, analytic estimator."""

from .statevector import (
    StatevectorSimulator,
    zero_state,
    basis_state,
    apply_matrix,
    marginal_probabilities,
    statevector_fidelity,
)
from .unitary import (
    circuit_unitary,
    permutation_unitary,
    equal_up_to_global_phase,
    circuits_equivalent,
)
from .estimator import (
    SuccessEstimate,
    estimate_success,
    success_probability,
    success_ratio,
    circuit_duration,
)
from .noise import PauliTrajectorySampler, GateFailureSampler, NoisyResult

__all__ = [
    "StatevectorSimulator",
    "zero_state",
    "basis_state",
    "apply_matrix",
    "marginal_probabilities",
    "statevector_fidelity",
    "circuit_unitary",
    "permutation_unitary",
    "equal_up_to_global_phase",
    "circuits_equivalent",
    "SuccessEstimate",
    "estimate_success",
    "success_probability",
    "success_ratio",
    "circuit_duration",
    "PauliTrajectorySampler",
    "GateFailureSampler",
    "NoisyResult",
]
