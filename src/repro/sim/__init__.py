"""Simulators: ideal statevector/unitary, noisy samplers, analytic estimator.

Every shot-producing engine implements the :class:`SimulationBackend`
protocol — ``run_counts(circuit, shots, measured_qubits, seed) ->
NoisyResult`` — so experiment code can select an execution model by name via
:func:`get_backend` instead of hard-wiring sampler classes.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration
from .result import NoisyResult, counts_from_bit_array
from .statevector import (
    StatevectorSimulator,
    zero_state,
    basis_state,
    apply_matrix,
    marginal_probabilities,
    statevector_fidelity,
)
from .unitary import (
    circuit_unitary,
    permutation_unitary,
    equal_up_to_global_phase,
    circuits_equivalent,
)
from .estimator import (
    SuccessEstimate,
    estimate_success,
    success_probability,
    success_ratio,
    circuit_duration,
)
from .noise import PauliTrajectorySampler, GateFailureSampler


@runtime_checkable
class SimulationBackend(Protocol):
    """Anything that can turn a circuit into hardware-style shot counts."""

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """Execute ``circuit`` for ``shots`` shots and return counts."""
        ...


#: Registered backend names, in documentation order.
BACKEND_NAMES: Tuple[str, ...] = ("failure", "trajectory", "ideal")


def get_backend(
    name: str,
    calibration: Optional[DeviceCalibration] = None,
    seed: Optional[int] = None,
    **kwargs,
) -> SimulationBackend:
    """Construct a :class:`SimulationBackend` by name.

    Args:
        name: ``"failure"`` for the fast gate-failure model, ``"trajectory"``
            for the stochastic-Pauli Monte Carlo, ``"ideal"`` (alias
            ``"statevector"``) for noiseless sampling.
        calibration: Device error model; required by the noisy backends and
            ignored by the ideal one.
        seed: Seed for the backend's random generator (``run_counts`` may
            override it per call).
        **kwargs: Extra constructor arguments, e.g. ``max_active_qubits`` for
            the noisy samplers or ``num_qubits_limit`` for the ideal backend.
    """
    key = name.lower()
    if key in ("ideal", "statevector"):
        return StatevectorSimulator(seed=seed, **kwargs)
    if key in ("failure", "trajectory") and calibration is None:
        raise SimulationError(f"backend {name!r} requires a device calibration")
    if key == "failure":
        return GateFailureSampler(calibration, seed=seed, **kwargs)
    if key == "trajectory":
        return PauliTrajectorySampler(calibration, seed=seed, **kwargs)
    raise SimulationError(
        f"unknown simulation backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
    )


__all__ = [
    "SimulationBackend",
    "BACKEND_NAMES",
    "get_backend",
    "StatevectorSimulator",
    "zero_state",
    "basis_state",
    "apply_matrix",
    "marginal_probabilities",
    "statevector_fidelity",
    "counts_from_bit_array",
    "circuit_unitary",
    "permutation_unitary",
    "equal_up_to_global_phase",
    "circuits_equivalent",
    "SuccessEstimate",
    "estimate_success",
    "success_probability",
    "success_ratio",
    "circuit_duration",
    "PauliTrajectorySampler",
    "GateFailureSampler",
    "NoisyResult",
]
