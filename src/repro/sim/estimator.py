"""Analytic success-probability estimation (the paper's model, §2.6).

The paper estimates the probability that a compiled program succeeds as

    P_success = P(no gate error) * P(no coherence error)
              = prod_i (1 - e_i)  *  exp(-(Δ/T1 + Δ/T2))

where ``e_i`` is the error rate of gate ``i`` and ``Δ`` is the total scheduled
program duration.  This module computes both factors from a compiled circuit
and a :class:`~repro.hardware.calibration.DeviceCalibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import obs
from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration


@dataclass(frozen=True)
class SuccessEstimate:
    """Breakdown of the analytic success-probability estimate."""

    gate_success: float
    coherence_success: float
    readout_success: float
    duration: float
    num_two_qubit_gates: int
    num_one_qubit_gates: int
    num_measurements: int

    @property
    def probability(self) -> float:
        """The combined success probability (upper bound, per the paper)."""
        return self.gate_success * self.coherence_success * self.readout_success


def circuit_duration(circuit: QuantumCircuit, calibration: DeviceCalibration) -> float:
    """Scheduled duration (µs) of a hardware-basis circuit under ASAP scheduling."""
    # Reuse the circuit's shared, memoized DAG instead of rebuilding one per
    # estimate (duration and success queries on the same circuit share it).
    dag = circuit.dag()

    def duration_of(instruction) -> float:
        if instruction.gate.num_qubits >= 3:
            raise SimulationError(
                f"gate {instruction.name!r} is not hardware-native; decompose "
                "the circuit before estimating duration"
            )
        return calibration.gate_duration(instruction.name, instruction.qubits)

    return dag.weighted_depth(duration_of)


def estimate_success(
    circuit: QuantumCircuit,
    calibration: DeviceCalibration,
    include_readout: bool = True,
) -> SuccessEstimate:
    """Estimate the success probability of a compiled (hardware-basis) circuit.

    Args:
        circuit: Circuit containing only one- and two-qubit gates (SWAPs are
            treated as three CNOTs), plus optional measurements/barriers.
        calibration: Device error rates and timings.
        include_readout: Whether measurement errors contribute; the paper's
            simulation model folds readout into the gate-error product, so this
            defaults to True but is exposed for sensitivity studies.

    Returns:
        A :class:`SuccessEstimate` whose ``probability`` is the product of the
        gate, coherence and readout success factors.
    """
    with obs.span(
        "estimate_success",
        category="sim",
        source=circuit.name,
        include_readout=include_readout,
    ):
        return _estimate_success(circuit, calibration, include_readout)


def _estimate_success(
    circuit: QuantumCircuit,
    calibration: DeviceCalibration,
    include_readout: bool,
) -> SuccessEstimate:
    gate_success = 1.0
    readout_success = 1.0
    num_two_qubit = 0
    num_one_qubit = 0
    num_measure = 0
    for instruction in circuit.instructions:
        name = instruction.name
        if name == "barrier":
            continue
        if name == "measure":
            num_measure += 1
            if include_readout:
                readout_success *= 1.0 - calibration.readout_error
            continue
        if name == "reset":
            continue
        if instruction.gate.num_qubits >= 3:
            raise SimulationError(
                f"gate {name!r} on {instruction.gate.num_qubits} qubits is not "
                "hardware-native; run the second decomposition pass first"
            )
        if name == "swap":
            # A SWAP still present in the circuit costs three CNOTs.
            error = calibration.gate_error("cx", instruction.qubits)
            gate_success *= (1.0 - error) ** 3
            num_two_qubit += 3
        elif instruction.gate.num_qubits == 2:
            gate_success *= 1.0 - calibration.gate_error(name, instruction.qubits)
            num_two_qubit += 1
        else:
            gate_success *= 1.0 - calibration.gate_error(name, instruction.qubits)
            num_one_qubit += 1
    duration = circuit_duration(circuit, calibration)
    coherence_success = math.exp(-(duration / calibration.t1 + duration / calibration.t2))
    if obs.is_enabled():
        obs.counter("sim.estimator.calls").inc()
        obs.add_attrs(two_qubit_gates=num_two_qubit, duration_us=duration)
    return SuccessEstimate(
        gate_success=gate_success,
        coherence_success=coherence_success,
        readout_success=readout_success,
        duration=duration,
        num_two_qubit_gates=num_two_qubit,
        num_one_qubit_gates=num_one_qubit,
        num_measurements=num_measure,
    )


def success_probability(
    circuit: QuantumCircuit,
    calibration: DeviceCalibration,
    include_readout: bool = True,
) -> float:
    """Shorthand for ``estimate_success(...).probability``."""
    return estimate_success(circuit, calibration, include_readout).probability


def success_ratio(
    trios_circuit: QuantumCircuit,
    baseline_circuit: QuantumCircuit,
    calibration: DeviceCalibration,
) -> float:
    """``p_trios / p_baseline`` — the normalised metric of Figures 8, 11 and 12."""
    baseline = success_probability(baseline_circuit, calibration)
    trios = success_probability(trios_circuit, calibration)
    if baseline <= 0.0:
        return math.inf if trios > 0 else 1.0
    return trios / baseline
