"""Noisy execution models.

The paper's Figures 6 and 8 come from runs on the physical IBM Johannesburg
machine, which we cannot access.  As the documented substitution we provide two
shot-level samplers driven by a :class:`~repro.hardware.calibration.DeviceCalibration`:

* :class:`PauliTrajectorySampler` — a stochastic Pauli-error ("quantum
  trajectory") Monte Carlo on a statevector restricted to the circuit's active
  qubits.  Each gate is followed, with its calibrated error probability, by a
  uniformly random non-identity Pauli on the gate's qubits; readout bits flip
  with the readout error; decoherence is applied as a per-shot failure with
  probability ``1 - exp(-(Δ/T1 + Δ/T2))``.
* :class:`GateFailureSampler` — the paper's simplified model with sampling:
  a shot is "trouble free" with probability ``prod(1 - e_i) * exp(-(Δ/T1+Δ/T2))``
  and then yields an ideal-distribution outcome; otherwise the outcome is
  uniformly random.  This is fast enough for large sweeps.

Both produce ``counts`` dictionaries like real hardware would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.gate import Gate
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration
from .estimator import circuit_duration, estimate_success
from .statevector import StatevectorSimulator, apply_matrix, zero_state

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}
_PAULI_LABELS = ("I", "X", "Y", "Z")


def _reduce_to_active(
    circuit: QuantumCircuit, extra_qubits: Sequence[int] = ()
) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Restrict a wide circuit to its active qubits (plus ``extra_qubits``).

    Returns the reduced circuit and the map from original qubit index to the
    compact index used inside the reduced circuit.
    """
    active = sorted(circuit.active_qubits() | set(extra_qubits))
    if not active:
        active = [0]
    mapping = {original: compact for compact, original in enumerate(active)}
    reduced = QuantumCircuit(len(active), circuit.name)
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            continue
        reduced.append(
            instruction.gate,
            tuple(mapping[q] for q in instruction.qubits),
            instruction.clbits,
        )
    return reduced, mapping


def _measured_qubits(circuit: QuantumCircuit) -> List[int]:
    """Qubits measured by the circuit, in program order (deduplicated)."""
    seen: List[int] = []
    for instruction in circuit.instructions:
        if instruction.name == "measure" and instruction.qubits[0] not in seen:
            seen.append(instruction.qubits[0])
    return seen


@dataclass
class NoisyResult:
    """Counts plus convenience accessors, mimicking a hardware job result."""

    counts: Dict[str, int]
    shots: int
    measured_qubits: Tuple[int, ...]

    def probability_of(self, bitstring: str) -> float:
        """Fraction of shots that produced ``bitstring``."""
        if self.shots == 0:
            raise SimulationError("no shots were taken")
        return self.counts.get(bitstring, 0) / self.shots

    def success_rate(self, expected: str) -> float:
        """The paper's success-rate metric: fraction of shots matching ``expected``."""
        return self.probability_of(expected)


class PauliTrajectorySampler:
    """Monte-Carlo stochastic-Pauli noise simulation (hardware substitute)."""

    def __init__(
        self,
        calibration: DeviceCalibration,
        seed: Optional[int] = None,
        include_decoherence: bool = True,
        include_readout_error: bool = True,
        max_active_qubits: int = 18,
    ) -> None:
        self.calibration = calibration
        self.rng = np.random.default_rng(seed)
        self.include_decoherence = include_decoherence
        self.include_readout_error = include_readout_error
        self.max_active_qubits = max_active_qubits

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> NoisyResult:
        """Execute ``circuit`` for ``shots`` noisy trajectories.

        Args:
            circuit: Compiled circuit (one- and two-qubit gates; SWAPs allowed
                and treated as noisy three-CNOT sequences).
            shots: Number of trajectories.
            measured_qubits: Which original qubit indices to report, in order.
                Defaults to the circuit's ``measure`` instructions, or all
                active qubits if there are none.
        """
        if shots < 1:
            raise SimulationError("shots must be positive")
        if measured_qubits is None:
            measured_qubits = _measured_qubits(circuit) or sorted(circuit.active_qubits())
        measured_qubits = list(measured_qubits)
        reduced, mapping = _reduce_to_active(circuit, measured_qubits)
        if reduced.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{reduced.num_qubits} active qubits exceeds the trajectory "
                f"sampler limit ({self.max_active_qubits})"
            )
        compact_measured = [mapping[q] for q in measured_qubits]
        gates = [inst for inst in reduced.instructions if inst.gate.is_unitary]
        duration = circuit_duration(circuit.without(["barrier"]), self.calibration)
        decoherence_failure = 0.0
        if self.include_decoherence:
            decoherence_failure = 1.0 - math.exp(
                -(duration / self.calibration.t1 + duration / self.calibration.t2)
            )
        counts: Dict[str, int] = {}
        num_qubits = reduced.num_qubits
        for _ in range(shots):
            outcome = self._one_trajectory(
                gates, num_qubits, compact_measured, decoherence_failure
            )
            counts[outcome] = counts.get(outcome, 0) + 1
        return NoisyResult(counts=counts, shots=shots, measured_qubits=tuple(measured_qubits))

    # ------------------------------------------------------------------
    def _one_trajectory(
        self,
        gates: Sequence[Instruction],
        num_qubits: int,
        measured: Sequence[int],
        decoherence_failure: float,
    ) -> str:
        state = zero_state(num_qubits)
        for instruction in gates:
            state = apply_matrix(
                state, instruction.gate.matrix(), instruction.qubits, num_qubits
            )
            error = self._error_probability(instruction)
            if error > 0 and self.rng.random() < error:
                state = self._apply_random_pauli(state, instruction.qubits, num_qubits)
        if decoherence_failure > 0 and self.rng.random() < decoherence_failure:
            # Decoherence scrambles the register; report a random outcome.
            bits = self.rng.integers(0, 2, size=len(measured))
            return "".join(str(int(b)) for b in bits)
        probabilities = np.abs(state) ** 2
        probabilities = probabilities / probabilities.sum()
        index = int(self.rng.choice(len(probabilities), p=probabilities))
        bits = [(index >> (num_qubits - 1 - q)) & 1 for q in measured]
        if self.include_readout_error:
            bits = [
                bit ^ 1 if self.rng.random() < self.calibration.readout_error else bit
                for bit in bits
            ]
        return "".join(str(b) for b in bits)

    def _error_probability(self, instruction: Instruction) -> float:
        name = instruction.name
        qubits = instruction.qubits
        if len(qubits) == 1:
            return self.calibration.one_qubit_gate_error
        if len(qubits) == 2:
            error = self.calibration.gate_error("cx", qubits)
            if name == "swap":
                return 1.0 - (1.0 - error) ** 3
            return error
        raise SimulationError(
            f"gate {name!r} on {len(qubits)} qubits must be decomposed before "
            "noisy simulation"
        )

    def _apply_random_pauli(
        self, state: np.ndarray, qubits: Tuple[int, ...], num_qubits: int
    ) -> np.ndarray:
        labels = ["I"] * len(qubits)
        while all(label == "I" for label in labels):
            labels = [
                _PAULI_LABELS[int(self.rng.integers(0, 4))] for _ in qubits
            ]
        for qubit, label in zip(qubits, labels):
            if label != "I":
                state = apply_matrix(state, _PAULI_MATRICES[label], (qubit,), num_qubits)
        return state


class GateFailureSampler:
    """The paper's simplified error model, sampled shot by shot.

    A shot is trouble free with probability
    ``prod_i (1 - e_i) * exp(-(Δ/T1 + Δ/T2))``; trouble-free shots sample the
    ideal output distribution, all other shots return a uniformly random
    bitstring over the measured qubits.  Readout flips are applied on top.
    """

    def __init__(
        self,
        calibration: DeviceCalibration,
        seed: Optional[int] = None,
        include_readout_error: bool = True,
    ) -> None:
        self.calibration = calibration
        self.rng = np.random.default_rng(seed)
        self.include_readout_error = include_readout_error

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> NoisyResult:
        """Sample ``shots`` outcomes under the simplified failure model."""
        if shots < 1:
            raise SimulationError("shots must be positive")
        if measured_qubits is None:
            measured_qubits = _measured_qubits(circuit) or sorted(circuit.active_qubits())
        measured_qubits = list(measured_qubits)
        reduced, mapping = _reduce_to_active(circuit, measured_qubits)
        compact_measured = [mapping[q] for q in measured_qubits]
        estimate = estimate_success(
            circuit.without(["measure", "barrier"]), self.calibration, include_readout=False
        )
        trouble_free = estimate.gate_success * estimate.coherence_success
        ideal = StatevectorSimulator(num_qubits_limit=22).probabilities(
            reduced.without(["measure"]), compact_measured
        )
        outcomes = list(ideal)
        weights = np.array([ideal[o] for o in outcomes])
        weights = weights / weights.sum()
        width = len(measured_qubits)
        counts: Dict[str, int] = {}
        for _ in range(shots):
            if self.rng.random() < trouble_free:
                outcome = outcomes[int(self.rng.choice(len(outcomes), p=weights))]
            else:
                outcome = format(int(self.rng.integers(0, 2**width)), f"0{width}b")
            if self.include_readout_error:
                bits = [
                    bit if self.rng.random() >= self.calibration.readout_error else 1 - bit
                    for bit in (int(ch) for ch in outcome)
                ]
                outcome = "".join(str(b) for b in bits)
            counts[outcome] = counts.get(outcome, 0) + 1
        return NoisyResult(counts=counts, shots=shots, measured_qubits=tuple(measured_qubits))
