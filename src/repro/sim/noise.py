"""Noisy execution models.

The paper's Figures 6 and 8 come from runs on the physical IBM Johannesburg
machine, which we cannot access.  As the documented substitution we provide two
shot-level samplers driven by a :class:`~repro.hardware.calibration.DeviceCalibration`:

* :class:`PauliTrajectorySampler` — a stochastic Pauli-error ("quantum
  trajectory") Monte Carlo on a statevector restricted to the circuit's active
  qubits.  Each gate is followed, with its calibrated error probability, by a
  uniformly random non-identity Pauli on the gate's qubits; readout bits flip
  with the readout error; decoherence is applied as a per-shot failure with
  probability ``1 - exp(-(Δ/T1 + Δ/T2))``.
* :class:`GateFailureSampler` — the paper's simplified model with sampling:
  a shot is "trouble free" with probability ``prod(1 - e_i) * exp(-(Δ/T1+Δ/T2))``
  and then yields an ideal-distribution outcome; otherwise the outcome is
  uniformly random.  This is fast enough for large sweeps.

Both produce ``counts`` dictionaries like real hardware would.

The shot dimension is batched: instead of evolving one statevector per shot,
:class:`PauliTrajectorySampler` pre-samples every shot's Pauli-error pattern up
front, groups the shots that share an identical pattern (at realistic error
rates the overwhelming majority are error-free) and runs **one** statevector
evolution per *unique* pattern.  Measurement sampling, readout flips and
decoherence failures are drawn with single vectorized RNG calls across all
shots.  The sampled distributions are identical to the per-shot formulation;
only the order in which random numbers are consumed differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration
from .channels import PAULI_LABELS, PAULI_MATRICES, gate_error_probability
from .estimator import circuit_duration, estimate_success
from .result import NoisyResult, counts_from_bit_array
from .statevector import (
    StatevectorSimulator,
    apply_matrix,
    measured_qubits_of,
    reduce_for_measurement,
    reduce_to_active_qubits,
    zero_state,
)

# Backwards-compatible aliases; the canonical Paulis live in .channels.
_PAULI_MATRICES = PAULI_MATRICES
_PAULI_LABELS = PAULI_LABELS

#: A shot's error pattern: ``(gate_index, pauli_code)`` pairs, where the code
#: encodes one base-4 Pauli digit (0=I, 1=X, 2=Y, 3=Z) per gate qubit with the
#: gate's first qubit in the most significant position.  Codes are never zero
#: (an all-identity "error" is resampled away by construction).
ErrorPattern = Tuple[Tuple[int, int], ...]


# Backwards-compatible aliases; the canonical helpers live in .statevector.
_reduce_to_active = reduce_to_active_qubits
_measured_qubits = measured_qubits_of


def _bits_from_indices(
    indices: np.ndarray, num_qubits: int, measured: Sequence[int]
) -> np.ndarray:
    """Extract the measured qubits' bits from basis-state indices, vectorized.

    Returns a ``(len(indices), len(measured))`` int8 array; qubit 0 is the most
    significant bit of the basis index (the module-wide convention).
    """
    shifts = np.array([num_qubits - 1 - q for q in measured], dtype=np.int64)
    return ((indices[:, None] >> shifts[None, :]) & 1).astype(np.int8)


class PauliTrajectorySampler:
    """Monte-Carlo stochastic-Pauli noise simulation (hardware substitute).

    Shots are batched: the per-gate Pauli-error pattern of every shot is drawn
    up front with vectorized RNG calls, shots are grouped by identical pattern,
    and a single statevector evolution serves every shot in a group.
    """

    def __init__(
        self,
        calibration: DeviceCalibration,
        seed: Optional[int] = None,
        include_decoherence: bool = True,
        include_readout_error: bool = True,
        max_active_qubits: int = 18,
    ) -> None:
        self.calibration = calibration
        self.rng = np.random.default_rng(seed)
        self.include_decoherence = include_decoherence
        self.include_readout_error = include_readout_error
        self.max_active_qubits = max_active_qubits

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> NoisyResult:
        """Execute ``circuit`` for ``shots`` noisy trajectories.

        Args:
            circuit: Compiled circuit (one- and two-qubit gates; SWAPs allowed
                and treated as noisy three-CNOT sequences).
            shots: Number of trajectories.
            measured_qubits: Which original qubit indices to report, in order.
                Defaults to the circuit's ``measure`` instructions, or all
                active qubits if there are none.
        """
        if shots < 1:
            raise SimulationError("shots must be positive")
        reduced, measured_qubits, compact_measured = reduce_for_measurement(
            circuit, measured_qubits
        )
        if reduced.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{reduced.num_qubits} active qubits exceeds the trajectory "
                f"sampler limit ({self.max_active_qubits})"
            )
        gates = [inst for inst in reduced.instructions if inst.gate.is_unitary]
        duration = circuit_duration(circuit.without(["barrier"]), self.calibration)
        decoherence_failure = 0.0
        if self.include_decoherence:
            decoherence_failure = self.calibration.decoherence_failure_probability(
                duration
            )

        num_qubits = reduced.num_qubits
        width = len(compact_measured)
        bits = np.zeros((shots, width), dtype=np.int8)

        # Decoherence failures scramble the register; those shots report a
        # uniformly random outcome and never touch a statevector.
        decohered = np.zeros(shots, dtype=bool)
        if decoherence_failure > 0:
            decohered = self.rng.random(shots) < decoherence_failure
            num_decohered = int(decohered.sum())
            if num_decohered:
                bits[decohered] = self.rng.integers(
                    0, 2, size=(num_decohered, width), dtype=np.int8
                )

        coherent = np.flatnonzero(~decohered)
        if coherent.size:
            patterns = self._sample_error_patterns(gates, coherent.size)
            groups: Dict[ErrorPattern, List[int]] = {}
            for shot, pattern in zip(coherent, patterns):
                groups.setdefault(pattern, []).append(int(shot))
            for pattern, members in groups.items():
                probabilities = self._pattern_probabilities(gates, num_qubits, pattern)
                indices = self.rng.choice(
                    probabilities.size, size=len(members), p=probabilities
                )
                bits[members] = _bits_from_indices(indices, num_qubits, compact_measured)

        if self.include_readout_error and self.calibration.readout_error > 0 and width:
            flips = self.rng.random((shots, width)) < self.calibration.readout_error
            bits ^= flips.astype(np.int8)

        return NoisyResult(
            counts=counts_from_bit_array(bits),
            shots=shots,
            measured_qubits=tuple(measured_qubits),
        )

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """:class:`~repro.sim.SimulationBackend` entry point.

        A non-``None`` ``seed`` reseeds the sampler's generator so repeated
        calls are reproducible independent of earlier draws.
        """
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        return self.run(circuit, shots=shots, measured_qubits=measured_qubits)

    # ------------------------------------------------------------------
    def _sample_error_patterns(
        self, gates: Sequence[Instruction], shots: int
    ) -> List[ErrorPattern]:
        """Draw every shot's Pauli-error pattern with vectorized RNG calls."""
        num_gates = len(gates)
        if num_gates == 0:
            return [()] * shots
        error_rates = np.array(
            [self._error_probability(inst) for inst in gates], dtype=float
        )
        errored = self.rng.random((shots, num_gates)) < error_rates[None, :]
        # One uniformly random non-identity Pauli combination per errored slot:
        # codes run over 1 .. 4^k - 1 where k is the gate's qubit count.
        code_limits = np.array([4 ** len(inst.qubits) for inst in gates], dtype=np.int64)
        codes = self.rng.integers(1, code_limits[None, :], size=(shots, num_gates))
        patterns: List[ErrorPattern] = []
        empty: ErrorPattern = ()
        for shot in range(shots):
            row = errored[shot]
            if not row.any():
                patterns.append(empty)
                continue
            patterns.append(
                tuple(
                    (int(g), int(codes[shot, g])) for g in np.flatnonzero(row)
                )
            )
        return patterns

    def _pattern_probabilities(
        self,
        gates: Sequence[Instruction],
        num_qubits: int,
        pattern: ErrorPattern,
    ) -> np.ndarray:
        """Outcome distribution of one trajectory with the given error pattern."""
        inserted = dict(pattern)
        state = zero_state(num_qubits)
        for gate_index, instruction in enumerate(gates):
            state = apply_matrix(
                state, instruction.gate.matrix(), instruction.qubits, num_qubits
            )
            code = inserted.get(gate_index)
            if code:
                state = self._apply_pauli_code(state, code, instruction.qubits, num_qubits)
        probabilities = np.abs(state) ** 2
        return probabilities / probabilities.sum()

    def _apply_pauli_code(
        self, state: np.ndarray, code: int, qubits: Tuple[int, ...], num_qubits: int
    ) -> np.ndarray:
        """Apply the Pauli encoded by ``code`` (base-4 digits, qubits[0] first)."""
        k = len(qubits)
        for position, qubit in enumerate(qubits):
            digit = (code >> (2 * (k - 1 - position))) & 3
            if digit:
                label = _PAULI_LABELS[digit]
                state = apply_matrix(state, _PAULI_MATRICES[label], (qubit,), num_qubits)
        return state

    def _error_probability(self, instruction: Instruction) -> float:
        """Per-gate error weight, delegated to the shared channel layer.

        :func:`repro.sim.channels.gate_error_probability` is the single home
        of calibration→noise logic, so the trajectory sampler and the exact
        density backend are guaranteed to weight every gate identically.
        """
        return gate_error_probability(self.calibration, instruction)


class GateFailureSampler:
    """The paper's simplified error model, sampled over a batched shot axis.

    A shot is trouble free with probability
    ``prod_i (1 - e_i) * exp(-(Δ/T1 + Δ/T2))``; trouble-free shots sample the
    ideal output distribution, all other shots return a uniformly random
    bitstring over the measured qubits.  Readout flips are applied on top.
    All per-shot decisions are drawn with single vectorized RNG calls.
    """

    def __init__(
        self,
        calibration: DeviceCalibration,
        seed: Optional[int] = None,
        include_readout_error: bool = True,
        max_active_qubits: int = 22,
    ) -> None:
        self.calibration = calibration
        self.rng = np.random.default_rng(seed)
        self.include_readout_error = include_readout_error
        self.max_active_qubits = max_active_qubits

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> NoisyResult:
        """Sample ``shots`` outcomes under the simplified failure model."""
        if shots < 1:
            raise SimulationError("shots must be positive")
        reduced, measured_qubits, compact_measured = reduce_for_measurement(
            circuit, measured_qubits
        )
        if reduced.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{reduced.num_qubits} active qubits exceeds the gate-failure "
                f"sampler limit ({self.max_active_qubits})"
            )
        estimate = estimate_success(
            circuit.without(["measure", "barrier"]), self.calibration, include_readout=False
        )
        trouble_free = estimate.gate_success * estimate.coherence_success
        ideal = StatevectorSimulator(num_qubits_limit=self.max_active_qubits).probabilities(
            reduced.without(["measure"]), compact_measured
        )
        outcomes = list(ideal)
        weights = np.array([ideal[o] for o in outcomes])
        weights = weights / weights.sum()
        width = len(measured_qubits)
        outcome_bits = np.array(
            [[int(ch) for ch in outcome] for outcome in outcomes], dtype=np.int8
        ).reshape(len(outcomes), width)

        clean = self.rng.random(shots) < trouble_free
        num_clean = int(clean.sum())
        bits = np.zeros((shots, width), dtype=np.int8)
        if num_clean:
            draws = self.rng.choice(len(outcomes), size=num_clean, p=weights)
            bits[clean] = outcome_bits[draws]
        if shots - num_clean:
            bits[~clean] = self.rng.integers(
                0, 2, size=(shots - num_clean, width), dtype=np.int8
            )
        if self.include_readout_error and self.calibration.readout_error > 0 and width:
            flips = self.rng.random((shots, width)) < self.calibration.readout_error
            bits ^= flips.astype(np.int8)
        return NoisyResult(
            counts=counts_from_bit_array(bits),
            shots=shots,
            measured_qubits=tuple(measured_qubits),
        )

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """:class:`~repro.sim.SimulationBackend` entry point.

        A non-``None`` ``seed`` reseeds the sampler's generator so repeated
        calls are reproducible independent of earlier draws.
        """
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        return self.run(circuit, shots=shots, measured_qubits=measured_qubits)
