"""Quantum noise channels compiled from device calibration data.

This module is the single home of "calibration → noise" logic.  It turns a
:class:`~repro.hardware.calibration.DeviceCalibration` into concrete quantum
channels, and every execution engine consumes the same objects:

* the exact density-matrix backend (:mod:`repro.sim.density`) applies the
  channels' cached superoperators to a density matrix;
* the stochastic-Pauli sampler (:mod:`repro.sim.noise`) draws its per-gate
  error probabilities from :func:`gate_error_probability`, so the sampled and
  the exact engines are guaranteed to model the *same* noise.

A :class:`QuantumChannel` stores its Kraus operators and lazily caches the
superoperator and Choi representations; :meth:`QuantumChannel.is_cptp`
validates complete positivity (Choi positivity) and trace preservation
(Kraus completeness).  :class:`NoiseModel` memoizes per-instruction channels —
depolarizing/Pauli channels for gates, amplitude+phase damping for idle
windows, and a stochastic confusion matrix for readout — and is picklable, so
it crosses the ``--jobs`` process-pool boundary intact.

Conventions: ``vec`` is row-major (``vec(rho)[i*d + j] = rho[i, j]``), so the
superoperator of Kraus set ``{K}`` is ``S = sum_K kron(K, K.conj())`` and
``vec(K rho K†) = S @ vec(rho)``.  Multi-qubit Pauli labels put the channel's
first qubit leftmost, matching :meth:`repro.circuits.gate.Gate.matrix`.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..circuits.circuit import Instruction
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration, damping_parameters

#: Single-qubit Pauli matrices, keyed by label.  (The trajectory sampler's
#: historical aliases in :mod:`repro.sim.noise` point at these.)
PAULI_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}
PAULI_LABELS: Tuple[str, ...] = ("I", "X", "Y", "Z")
for _matrix in PAULI_MATRICES.values():
    _matrix.setflags(write=False)


def pauli_matrix(label: str) -> np.ndarray:
    """The tensor product of single-qubit Paulis named by ``label`` (e.g. ``"XZ"``)."""
    if not label or any(ch not in PAULI_MATRICES for ch in label):
        raise SimulationError(f"invalid Pauli label {label!r}")
    matrix = PAULI_MATRICES[label[0]]
    for ch in label[1:]:
        matrix = np.kron(matrix, PAULI_MATRICES[ch])
    return matrix


# ----------------------------------------------------------------------
# Pauli transfer matrices (the basis the PTM backend evolves in)
# ----------------------------------------------------------------------
#: Basis-change matrices ``A_k`` from row-major ``vec`` to the normalized
#: Pauli basis, keyed by qubit count.  ``A_k`` is unitary (the normalized
#: Paulis are orthonormal under the Hilbert-Schmidt inner product), so the
#: PTM of a channel with superoperator ``S`` is ``A S A†`` — real for any
#: Hermiticity-preserving map.
_PAULI_BASIS_CACHE: Dict[int, np.ndarray] = {}


def pauli_basis_matrix(num_qubits: int) -> np.ndarray:
    """The unitary ``4^k x 4^k`` change of basis from ``vec`` to Pauli.

    Row ``alpha`` is ``conj(vec(P_alpha)) / sqrt(2^k)`` with the Pauli strings
    enumerated in base-4 digit order (I, X, Y, Z per qubit, first qubit most
    significant — the same ordering as :func:`pauli_matrix` labels), so
    ``pauli_basis_matrix(k) @ vec(rho)`` is the vector of normalized Pauli
    coefficients ``Tr(P_alpha rho) / sqrt(2^k)``.
    """
    if num_qubits < 1:
        raise SimulationError("need at least one qubit")
    cached = _PAULI_BASIS_CACHE.get(num_qubits)
    if cached is None:
        scale = 1.0 / math.sqrt(2**num_qubits)
        rows = [
            scale * pauli_matrix("".join(label)).reshape(-1).conj()
            for label in itertools.product(PAULI_LABELS, repeat=num_qubits)
        ]
        cached = np.ascontiguousarray(np.array(rows))
        cached.setflags(write=False)
        _PAULI_BASIS_CACHE[num_qubits] = cached
    return cached


def ptm_from_superoperator(superoperator: np.ndarray) -> np.ndarray:
    """Conjugate a row-major superoperator into the normalized Pauli basis.

    The result of a CPTP (or any Hermiticity-preserving) map is real; the
    imaginary part left by floating-point round-off is validated tiny and
    dropped, so the PTM backend evolves in pure float64 arithmetic.
    """
    dim = superoperator.shape[0]
    num_qubits = (int(dim).bit_length() - 1) // 2
    if dim != 4**num_qubits or superoperator.shape != (dim, dim):
        raise SimulationError(
            f"superoperator of shape {superoperator.shape} is not 4^k x 4^k"
        )
    basis = pauli_basis_matrix(num_qubits)
    ptm = basis @ superoperator @ basis.conj().T
    residue = float(np.abs(ptm.imag).max())
    if residue > 1e-9:
        raise SimulationError(
            f"superoperator is not Hermiticity-preserving: PTM has imaginary "
            f"residue {residue:g}"
        )
    real = np.ascontiguousarray(ptm.real)
    real.setflags(write=False)
    return real


#: Memoized PTMs of *unitary* gates, keyed by the matrix bytes.  Gate
#: matrices are interned read-only singletons for parameter-free gates, so
#: the common case is one entry per distinct gate; parameterized gates
#: (``u3`` after consolidation) hash by content.  Bounded like the
#: commutation memo: cleared wholesale on overflow rather than growing
#: without limit under adversarial parameter streams.
_UNITARY_PTM_CACHE: Dict[Tuple[int, bytes], np.ndarray] = {}
_UNITARY_PTM_CACHE_LIMIT = 50_000


def unitary_ptm(matrix: np.ndarray) -> np.ndarray:
    """The real ``4^k x 4^k`` Pauli transfer matrix of a unitary ``U``.

    ``R = A (U ⊗ U*) A†`` with ``A`` the normalized Pauli basis change —
    the same math as :meth:`QuantumChannel.ptm` without building a channel
    object per gate instruction.
    """
    matrix = np.asarray(matrix, dtype=complex)
    key = (matrix.shape[0], matrix.tobytes())
    cached = _UNITARY_PTM_CACHE.get(key)
    if cached is None:
        if len(_UNITARY_PTM_CACHE) >= _UNITARY_PTM_CACHE_LIMIT:
            _UNITARY_PTM_CACHE.clear()
        cached = ptm_from_superoperator(np.kron(matrix, matrix.conj()))
        _UNITARY_PTM_CACHE[key] = cached
    return cached


class QuantumChannel:
    """A completely-positive trace-preserving map on ``k`` qubits.

    Stored as a tuple of read-only Kraus operators; the superoperator and
    Choi representations are computed once on first use and cached.  Channels
    are immutable value objects and pickle cleanly (caches included), which
    the parallel experiment sweeps rely on.
    """

    def __init__(self, kraus, name: str = "channel") -> None:
        operators = tuple(
            np.ascontiguousarray(np.asarray(op, dtype=complex)) for op in kraus
        )
        if not operators:
            raise SimulationError("a channel needs at least one Kraus operator")
        dim = operators[0].shape[0] if operators[0].ndim == 2 else 0
        num_qubits = int(dim).bit_length() - 1 if dim > 0 else 0
        if dim <= 0 or 2**num_qubits != dim:
            raise SimulationError(
                f"Kraus operators must be square with power-of-two dimension, "
                f"got shape {operators[0].shape}"
            )
        for op in operators:
            if op.shape != (dim, dim):
                raise SimulationError(
                    f"all Kraus operators must share shape ({dim}, {dim}), "
                    f"got {op.shape}"
                )
            op.setflags(write=False)
        self.name = name
        self.kraus = operators
        self._superoperator: Optional[np.ndarray] = None
        self._choi: Optional[np.ndarray] = None
        self._ptm: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return self.kraus[0].shape[0]

    @property
    def num_qubits(self) -> int:
        return self.dim.bit_length() - 1

    def superoperator(self) -> np.ndarray:
        """The ``d² x d²`` matrix acting on row-major vectorized densities.

        ``vec(E(rho)) = superoperator() @ vec(rho)`` with ``vec`` row-major.
        Built once and cached read-only; the density backend applies this with
        one tensor contraction per channel instead of one per Kraus operator.
        """
        if self._superoperator is None:
            total = sum(np.kron(op, op.conj()) for op in self.kraus)
            total = np.ascontiguousarray(total)
            total.setflags(write=False)
            self._superoperator = total
        return self._superoperator

    def ptm(self) -> np.ndarray:
        """The real ``4^k x 4^k`` Pauli transfer matrix of this channel.

        ``R[alpha, beta] = Tr(P_alpha E(P_beta)) / 2^k`` in the normalized
        Pauli basis — derived from the cached superoperator by the Pauli
        basis change (:func:`ptm_from_superoperator`), computed once and
        cached read-only.  Because :class:`NoiseModel` memoizes channels per
        calibration, every repeated instruction shares one PTM, exactly as it
        shares one superoperator today.  The PTM backend
        (:mod:`repro.sim.ptm`) applies this with a single real contraction
        per channel.
        """
        if self._ptm is None:
            self._ptm = ptm_from_superoperator(self.superoperator())
        return self._ptm

    def choi(self) -> np.ndarray:
        """The Choi matrix ``sum_K vec(K) vec(K)†`` (row-major ``vec``)."""
        if self._choi is None:
            vecs = [op.reshape(-1) for op in self.kraus]
            total = sum(np.outer(v, v.conj()) for v in vecs)
            total = np.ascontiguousarray(total)
            total.setflags(write=False)
            self._choi = total
        return self._choi

    def kraus_completeness_defect(self) -> float:
        """``max |sum_K K†K - I|`` — zero for a trace-preserving channel."""
        total = sum(op.conj().T @ op for op in self.kraus)
        return float(np.abs(total - np.eye(self.dim)).max())

    def is_cptp(self, atol: float = 1e-9) -> bool:
        """Validate complete positivity and trace preservation.

        Checks Kraus completeness (``sum K†K = I``), Choi hermiticity and Choi
        positivity (eigenvalues ≥ -atol).
        """
        if self.kraus_completeness_defect() > atol:
            return False
        choi = self.choi()
        if np.abs(choi - choi.conj().T).max() > atol:
            return False
        return float(np.linalg.eigvalsh(choi).min()) >= -atol

    def __repr__(self) -> str:
        return (
            f"QuantumChannel({self.name!r}, qubits={self.num_qubits}, "
            f"kraus={len(self.kraus)})"
        )


# ----------------------------------------------------------------------
# Channel constructors
# ----------------------------------------------------------------------
def unitary_channel(matrix: np.ndarray, name: str = "unitary") -> QuantumChannel:
    """The noiseless channel ``rho -> U rho U†``."""
    return QuantumChannel((matrix,), name=name)


def pauli_channel(
    probabilities: Mapping[str, float], num_qubits: Optional[int] = None
) -> QuantumChannel:
    """A Pauli mixture: each label in ``probabilities`` fires with its weight.

    The identity keeps the remaining probability mass (an explicit identity
    entry is rejected to avoid ambiguity), so the weights must sum to at most
    one.  Labels are ``num_qubits``-character Pauli strings with the channel's
    first qubit leftmost.
    """
    if not probabilities and num_qubits is None:
        raise SimulationError("an empty Pauli channel needs an explicit num_qubits")
    width = num_qubits if num_qubits is not None else len(next(iter(probabilities)))
    identity = "I" * width
    total = 0.0
    for label, probability in probabilities.items():
        if len(label) != width:
            raise SimulationError(
                f"Pauli label {label!r} does not act on {width} qubits"
            )
        if label == identity:
            raise SimulationError(
                "do not pass the identity explicitly; it keeps the remaining mass"
            )
        if probability < 0:
            raise SimulationError(f"negative probability for {label!r}")
        total += probability
    if total > 1.0 + 1e-12:
        raise SimulationError(f"Pauli probabilities sum to {total} > 1")
    remainder = max(0.0, 1.0 - total)
    kraus = [math.sqrt(remainder) * pauli_matrix(identity)]
    kraus.extend(
        math.sqrt(probability) * pauli_matrix(label)
        for label, probability in probabilities.items()
        if probability > 0
    )
    return QuantumChannel(kraus, name=f"pauli({width}q)")


def depolarizing_channel(error_probability: float, num_qubits: int = 1) -> QuantumChannel:
    """With probability ``p``, apply a uniformly random *non-identity* Pauli.

    This is exactly the per-gate error event of the stochastic-Pauli
    trajectory sampler, so evolving with these channels reproduces the
    sampler's outcome distribution in expectation.
    """
    if not 0.0 <= error_probability <= 1.0:
        raise SimulationError(
            f"error probability must be in [0, 1], got {error_probability}"
        )
    share = error_probability / (4**num_qubits - 1)
    probabilities = {
        "".join(label): share
        for label in itertools.product(PAULI_LABELS, repeat=num_qubits)
        if set(label) != {"I"}
    }
    channel = pauli_channel(probabilities, num_qubits=num_qubits)
    channel.name = f"depolarizing(p={error_probability:g}, {num_qubits}q)"
    return channel


def amplitude_damping_channel(gamma: float) -> QuantumChannel:
    """Energy relaxation (T1 decay) with excited-state decay probability ``gamma``."""
    return amplitude_phase_damping_channel(gamma, 0.0)


def phase_damping_channel(lam: float) -> QuantumChannel:
    """Pure dephasing (T2 decay) with phase-scattering probability ``lam``."""
    return amplitude_phase_damping_channel(0.0, lam)


def amplitude_phase_damping_channel(gamma: float, lam: float) -> QuantumChannel:
    """Combined amplitude and phase damping on one qubit.

    Kraus operators (``gamma + lam <= 1``)::

        K0 = [[1, 0], [0, sqrt(1-gamma-lam)]]   # nothing happened
        K1 = [[0, sqrt(gamma)], [0, 0]]         # relaxation |1> -> |0>
        K2 = [[0, 0], [0, sqrt(lam)]]           # phase scattering

    Populations decay by ``1 - gamma``; coherences by ``sqrt(1-gamma-lam)``.
    """
    for label, value in (("gamma", gamma), ("lam", lam)):
        if not 0.0 <= value <= 1.0:
            raise SimulationError(f"{label} must be in [0, 1], got {value}")
    if gamma + lam > 1.0 + 1e-12:
        raise SimulationError(f"gamma + lam = {gamma + lam} exceeds 1")
    keep = math.sqrt(max(0.0, 1.0 - gamma - lam))
    kraus = [np.array([[1.0, 0.0], [0.0, keep]], dtype=complex)]
    if gamma > 0:
        kraus.append(np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex))
    if lam > 0:
        kraus.append(np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex))
    return QuantumChannel(kraus, name=f"damping(gamma={gamma:g}, lam={lam:g})")


def idle_channel(duration: float, t1: float, t2: float) -> QuantumChannel:
    """Amplitude+phase damping for idling ``duration`` µs at the given T1/T2.

    The (gamma, lam) math lives in
    :func:`repro.hardware.calibration.damping_parameters` (shared with
    :class:`~repro.hardware.calibration.DeviceCalibration`).
    """
    gamma, lam = damping_parameters(duration, t1, t2)
    channel = amplitude_phase_damping_channel(gamma, lam)
    channel.name = f"idle(t={duration:g}us)"
    return channel


def readout_confusion(error: float) -> np.ndarray:
    """The symmetric readout confusion matrix ``M[read, true]``.

    Column-stochastic: ``M = [[1-r, r], [r, 1-r]]`` flips each measured bit
    independently with probability ``r``, exactly like the shot samplers'
    vectorized readout flips.
    """
    if not 0.0 <= error < 1.0:
        raise SimulationError(f"readout error must be in [0, 1), got {error}")
    matrix = np.array([[1.0 - error, error], [error, 1.0 - error]])
    matrix.setflags(write=False)
    return matrix


# ----------------------------------------------------------------------
# Calibration → channels
# ----------------------------------------------------------------------
def gate_error_probability(
    calibration: DeviceCalibration, instruction: Instruction
) -> float:
    """Error probability of one compiled-circuit instruction.

    This is the per-gate weight both the trajectory sampler and the density
    backend use: the calibrated one-qubit rate for 1q gates, the (possibly
    per-edge) CNOT rate for 2q gates, and the three-CNOT compound
    ``1 - (1-e)³`` for a SWAP left in the circuit.
    """
    name = instruction.name
    qubits = instruction.qubits
    if len(qubits) == 1:
        return calibration.one_qubit_gate_error
    if len(qubits) == 2:
        error = calibration.gate_error("cx", qubits)
        if name == "swap":
            return 1.0 - (1.0 - error) ** 3
        return error
    raise SimulationError(
        f"gate {name!r} on {len(qubits)} qubits must be decomposed before "
        "noisy simulation"
    )


class NoiseModel:
    """Per-instruction quantum channels compiled from a device calibration.

    Channels are memoized by their defining parameters (gate arity and error
    rate, idle duration), so repeated instructions share one
    :class:`QuantumChannel` object — and one cached superoperator.  The model
    is picklable; pool workers receiving one re-derive nothing.
    """

    def __init__(self, calibration: DeviceCalibration) -> None:
        self.calibration = calibration
        self._gate_channels: Dict[Tuple[int, float], QuantumChannel] = {}
        self._idle_channels: Dict[float, QuantumChannel] = {}
        self._confusion: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def gate_error_probability(self, instruction: Instruction) -> float:
        """See :func:`gate_error_probability`."""
        return gate_error_probability(self.calibration, instruction)

    def gate_channel(self, instruction: Instruction) -> Optional[QuantumChannel]:
        """The noise channel following ``instruction``, or ``None`` if noiseless.

        A uniform non-identity Pauli channel with the instruction's calibrated
        error probability — the exact channel the trajectory sampler samples.
        """
        probability = self.gate_error_probability(instruction)
        if probability <= 0.0:
            return None
        key = (len(instruction.qubits), probability)
        channel = self._gate_channels.get(key)
        if channel is None:
            channel = depolarizing_channel(probability, len(instruction.qubits))
            self._gate_channels[key] = channel
        return channel

    def idle_channel(self, duration: float) -> Optional[QuantumChannel]:
        """Amplitude+phase damping for an idle window of ``duration`` µs."""
        if duration <= 0.0:
            return None
        channel = self._idle_channels.get(duration)
        if channel is None:
            gamma, lam = self.calibration.damping_parameters(duration)
            channel = amplitude_phase_damping_channel(gamma, lam)
            channel.name = f"idle(t={duration:g}us)"
            self._idle_channels[duration] = channel
        return channel

    def decoherence_failure_probability(self, duration: float) -> float:
        """The paper's whole-register scramble probability for ``duration`` µs."""
        return self.calibration.decoherence_failure_probability(duration)

    def readout_confusion(self) -> np.ndarray:
        """The 2x2 stochastic confusion matrix for one measured bit."""
        if self._confusion is None:
            self._confusion = readout_confusion(self.calibration.readout_error)
        return self._confusion

    def __repr__(self) -> str:
        return f"NoiseModel({self.calibration.name!r})"
