"""Exact open-system simulation on a dense density matrix.

Where the shot samplers in :mod:`repro.sim.noise` *estimate* the paper's
success probabilities by Monte Carlo, :class:`DensityMatrixSimulator`
computes them *exactly*: the circuit's noise — the same per-gate Pauli
channels, decoherence and readout confusion the trajectory sampler draws
from, all supplied by :mod:`repro.sim.channels` — is applied as superoperators
to a ``2^n x 2^n`` density matrix, and the outcome distribution is read off
the diagonal.  ``run_probabilities`` returns that analytic distribution
(a capability beyond the :class:`~repro.sim.SimulationBackend` protocol);
``run_counts`` draws a multinomial sample from it, so the backend also slots
into every shot-counting experiment driver under the name ``"density"``.

Implementation notes
--------------------
The density matrix is stored as a flat vector over ``2n`` wires (``n`` row
wires, then ``n`` column wires, row-major), which lets the whole evolution
reuse :func:`repro.sim.statevector.apply_matrix` unchanged:

* a unitary ``U`` on qubits ``q`` is two applications — ``U`` on the row
  wires ``q`` and ``U.conj()`` on the column wires ``n + q``;
* a noise channel is **one** application of its cached ``4^k x 4^k``
  superoperator across the row *and* column wires together (cheaper than
  iterating Kraus operators: one contraction instead of two per operator).

Memory is the limiting factor — ``4^n`` complex amplitudes — so the default
``max_active_qubits`` is 11 (≈64 MiB per density matrix); circuits are first
restricted to their active qubits like every other backend.

Two decoherence modes are offered:

* ``"global"`` (default): the paper's whole-register failure — with
  probability ``1 - e^{-(Δ/T1+Δ/T2)}`` the outcome is uniformly random.  This
  matches the shot samplers' model *exactly*, so ``"density"`` and
  ``"trajectory"`` agree to within shot noise.
* ``"damping"``: per-qubit amplitude+phase damping channels applied for each
  gate's duration on the qubits it acts on — a CPTP, per-qubit alternative
  for studies where the global scramble is too coarse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..circuits.circuit import QuantumCircuit
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration
from .channels import NoiseModel
from .estimator import circuit_duration
from .result import NoisyResult
from .statevector import (
    apply_matrix,
    marginal_distribution,
    reduce_for_measurement,
)


def zero_density(num_qubits: int) -> np.ndarray:
    """``|0...0><0...0|`` as a flat row-major vector of length ``4**num_qubits``."""
    if num_qubits < 1:
        raise SimulationError("need at least one qubit")
    rho = np.zeros(4**num_qubits, dtype=complex)
    rho[0] = 1.0
    return rho


def apply_unitary_to_density(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """``rho -> U rho U†`` on a flat density vector, via two statevector applies."""
    rows = tuple(qubits)
    cols = tuple(num_qubits + q for q in qubits)
    rho = apply_matrix(rho, matrix, rows, 2 * num_qubits)
    return apply_matrix(rho, matrix.conj(), cols, 2 * num_qubits)


def apply_channel_to_density(
    rho: np.ndarray, channel, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a :class:`~repro.sim.channels.QuantumChannel` in one contraction.

    The channel's cached ``4^k x 4^k`` superoperator acts jointly on the row
    wires ``qubits`` and the column wires ``num_qubits + qubits`` (row wires
    most significant, matching the row-major superoperator convention).
    """
    wires = tuple(qubits) + tuple(num_qubits + q for q in qubits)
    return apply_matrix(rho, channel.superoperator(), wires, 2 * num_qubits)


def density_diagonal(rho: np.ndarray, num_qubits: int) -> np.ndarray:
    """The outcome distribution on the diagonal, clipped and renormalized."""
    diagonal = rho.reshape(2**num_qubits, 2**num_qubits).diagonal().real
    probabilities = np.clip(diagonal, 0.0, None)
    total = probabilities.sum()
    if total <= 0:
        raise SimulationError("density matrix has no probability mass")
    return probabilities / total


class DensityMatrixSimulator:
    """Exact open-system simulator: noise as channels, no shot sampling.

    Args:
        calibration: Device error model compiled into channels via
            :class:`~repro.sim.channels.NoiseModel`; ``None`` simulates
            noiselessly (then equal to the statevector distribution).
        seed: Seed for the multinomial generator behind :meth:`run_counts`
            (:meth:`run_probabilities` consumes no randomness).
        include_gate_errors / include_decoherence / include_readout_error:
            Toggles for the three noise contributions, mirroring the samplers.
        decoherence: ``"global"`` (the samplers' whole-register failure,
            default) or ``"damping"`` (per-qubit amplitude+phase damping per
            gate duration).
        max_active_qubits: Dense-density size limit; ``4**n`` amplitudes.
    """

    def __init__(
        self,
        calibration: Optional[DeviceCalibration] = None,
        seed: Optional[int] = None,
        include_gate_errors: bool = True,
        include_decoherence: bool = True,
        include_readout_error: bool = True,
        decoherence: str = "global",
        max_active_qubits: int = 11,
    ) -> None:
        if decoherence not in ("global", "damping"):
            raise SimulationError(
                f"unknown decoherence mode {decoherence!r}; "
                "expected 'global' or 'damping'"
            )
        self.calibration = calibration
        self.noise_model = NoiseModel(calibration) if calibration is not None else None
        self.rng = np.random.default_rng(seed)
        self.include_gate_errors = include_gate_errors
        self.include_decoherence = include_decoherence
        self.include_readout_error = include_readout_error
        self.decoherence = decoherence
        self.max_active_qubits = max_active_qubits

    # ------------------------------------------------------------------
    def evolve(self, circuit: QuantumCircuit) -> np.ndarray:
        """The final ``2^n x 2^n`` density matrix of ``circuit``.

        Applies every unitary instruction followed by its calibrated noise
        channel (and, in ``"damping"`` mode, idle damping on the acted
        qubits).  Global decoherence and readout are classical post-processing
        on the outcome distribution and are *not* part of this matrix.
        """
        if circuit.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{circuit.num_qubits} qubits exceeds the density-matrix "
                f"simulator limit ({self.max_active_qubits}); restrict to "
                "active qubits first"
            )
        num_qubits = circuit.num_qubits
        rho = zero_density(num_qubits)
        noisy = self.noise_model is not None
        damping = noisy and self.include_decoherence and self.decoherence == "damping"
        unitaries = 0
        channels = 0
        for instruction in circuit.instructions:
            if not instruction.gate.is_unitary:
                continue
            rho = apply_unitary_to_density(
                rho, instruction.gate.matrix(), instruction.qubits, num_qubits
            )
            unitaries += 1
            if noisy and self.include_gate_errors:
                channel = self.noise_model.gate_channel(instruction)
                if channel is not None:
                    rho = apply_channel_to_density(
                        rho, channel, instruction.qubits, num_qubits
                    )
                    channels += 1
            if damping:
                duration = self.calibration.gate_duration(
                    instruction.name, instruction.qubits
                )
                idle = self.noise_model.idle_channel(duration)
                if idle is not None:
                    for qubit in instruction.qubits:
                        rho = apply_channel_to_density(rho, idle, (qubit,), num_qubits)
                        channels += 1
        if obs.is_enabled():
            obs.counter("sim.density.gate_applications").inc(unitaries)
            obs.counter("sim.density.channel_applications").inc(channels)
            obs.histogram("sim.density.peak_bytes").observe(float(rho.nbytes))
            obs.add_attrs(
                gate_applications=unitaries,
                channel_applications=channels,
                peak_bytes=rho.nbytes,
            )
        return rho.reshape(2**num_qubits, 2**num_qubits)

    def _exact_distribution(
        self,
        circuit: QuantumCircuit,
        measured_qubits: Optional[Sequence[int]],
    ) -> Tuple[np.ndarray, List[int]]:
        """The exact outcome distribution over the measured qubits, in order."""
        reduced, measured_qubits, compact_measured = reduce_for_measurement(
            circuit, measured_qubits
        )
        if reduced.num_qubits > self.max_active_qubits:
            raise SimulationError(
                f"{reduced.num_qubits} active qubits exceeds the density-matrix "
                f"simulator limit ({self.max_active_qubits})"
            )
        # evolve() skips non-unitary instructions itself, so the reduced
        # circuit needs no measure-stripping copy.
        with obs.span(
            "density.run", category="sim", source=circuit.name,
            qubits=reduced.num_qubits,
        ):
            rho = self.evolve(reduced)
            probabilities = density_diagonal(rho.reshape(-1), reduced.num_qubits)
            distribution = marginal_distribution(
                probabilities, reduced.num_qubits, compact_measured
            )
            distribution = finish_exact_distribution(
                distribution, circuit, self, len(measured_qubits)
            )
        return distribution, measured_qubits

    # ------------------------------------------------------------------
    def run_probabilities(
        self,
        circuit: QuantumCircuit,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, float]:
        """The exact outcome distribution — the shot-free figure of merit.

        Args:
            circuit: Compiled circuit (one- and two-qubit gates; SWAPs allowed
                and modelled as three noisy CNOTs).
            measured_qubits: Original qubit indices to report, in order;
                defaults to the circuit's ``measure`` instructions, or all
                active qubits.

        Returns:
            ``{bitstring: probability}`` with every non-negligible outcome
            (the leftmost character is the first measured qubit), summing to
            one.  The same ``1e-15`` floor as
            :func:`~repro.sim.statevector.marginal_probabilities` keeps
            numerically-zero outcomes out of the noiseless distribution.
        """
        distribution, measured_qubits = self._exact_distribution(
            circuit, measured_qubits
        )
        width = len(measured_qubits)
        if width == 0:
            return {"": 1.0}
        return {
            format(index, f"0{width}b"): float(probability)
            for index, probability in enumerate(distribution)
            if probability > 1e-15
        }

    def success_probability(
        self,
        circuit: QuantumCircuit,
        expected: str,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> float:
        """Exact probability of reading ``expected`` — zero shot variance."""
        return self.run_probabilities(circuit, measured_qubits).get(expected, 0.0)

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """:class:`~repro.sim.SimulationBackend` entry point.

        Draws one multinomial sample of size ``shots`` from the exact
        distribution — statistically identical to hardware-style shot counts
        but without evolving anything per shot.  A non-``None`` ``seed``
        reseeds the generator so repeated calls are reproducible.
        """
        if shots < 1:
            raise SimulationError("shots must be positive")
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        distribution, measured_qubits = self._exact_distribution(
            circuit, measured_qubits
        )
        width = len(measured_qubits)
        if width == 0:
            return NoisyResult(counts={"": shots}, shots=shots, measured_qubits=())
        draws = self.rng.multinomial(shots, distribution / distribution.sum())
        counts = {
            format(index, f"0{width}b"): int(tally)
            for index, tally in enumerate(draws)
            if tally
        }
        return NoisyResult(
            counts=counts, shots=shots, measured_qubits=tuple(measured_qubits)
        )


def apply_confusion(
    distribution: np.ndarray, width: int, confusion: np.ndarray
) -> np.ndarray:
    """Apply the per-bit readout confusion matrix to an outcome distribution."""
    tensor = distribution.reshape((2,) * width)
    for axis in range(width):
        tensor = np.moveaxis(
            np.tensordot(confusion, tensor, axes=([1], [axis])), 0, axis
        )
    return tensor.reshape(-1)


def finish_exact_distribution(
    distribution: np.ndarray,
    circuit: QuantumCircuit,
    simulator,
    num_measured: int,
) -> np.ndarray:
    """The classical noise tail shared by the exact backends.

    Applies the paper's whole-register decoherence scramble (``"global"``
    mode) and the per-bit readout confusion to a marginal outcome
    distribution.  ``simulator`` is any engine with the density-style noise
    attributes (``noise_model``, ``calibration``, ``include_decoherence``,
    ``decoherence``, ``include_readout_error``) — the density and PTM
    backends both delegate here, so their post-quantum processing can never
    drift apart.
    """
    noisy = simulator.noise_model is not None
    if noisy and simulator.include_decoherence and simulator.decoherence == "global":
        duration = circuit_duration(
            circuit.without(["barrier"]), simulator.calibration
        )
        failure = simulator.noise_model.decoherence_failure_probability(duration)
        distribution = (1.0 - failure) * distribution + failure / distribution.size
    if (
        noisy
        and simulator.include_readout_error
        and simulator.calibration.readout_error > 0
        and num_measured
    ):
        distribution = apply_confusion(
            distribution, num_measured, simulator.noise_model.readout_confusion()
        )
    return distribution
