"""Dense statevector simulation.

Convention: qubit 0 is the most significant bit of the computational basis
index, so the basis state ``|q0 q1 ... q_{n-1}⟩`` has index
``q0*2^(n-1) + q1*2^(n-2) + ... + q_{n-1}``.  Bitstrings returned by the
samplers are written in that same order (leftmost character = qubit 0).

The simulator is intended for verification (decomposition equivalence) and for
the noisy Monte-Carlo sampler; it is exact and dense, so it is practical up to
roughly 20 qubits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..circuits.circuit import Instruction, QuantumCircuit
from ..exceptions import SimulationError
from .result import NoisyResult


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros computational basis state on ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise SimulationError("need at least one qubit")
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(bits: Sequence[int], num_qubits: Optional[int] = None) -> np.ndarray:
    """The basis state ``|bits⟩`` where ``bits[0]`` is qubit 0's value."""
    bits = [int(b) for b in bits]
    if any(b not in (0, 1) for b in bits):
        raise SimulationError(f"bits must be 0/1, got {bits}")
    n = num_qubits if num_qubits is not None else len(bits)
    if len(bits) != n:
        raise SimulationError("bit string length must equal the number of qubits")
    index = 0
    for bit in bits:
        index = (index << 1) | bit
    state = np.zeros(2**n, dtype=complex)
    state[index] = 1.0
    return state


def apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` unitary to the given qubits of a statevector.

    The first qubit in ``qubits`` corresponds to the most significant bit of
    the matrix's index, matching :meth:`repro.circuits.gate.Gate.matrix`.
    """
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix of shape {matrix.shape} does not act on {k} qubits"
        )
    tensor = state.reshape((2,) * num_qubits)
    gate_tensor = matrix.reshape((2,) * (2 * k))
    # Contract the gate's input axes (the last k axes) with the target qubits.
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), list(qubits)))
    # tensordot puts the gate's output axes first; move them back into place.
    moved = np.moveaxis(moved, list(range(k)), list(qubits))
    return moved.reshape(-1)


def _sample_from_probs(
    probs: Dict[str, float], shots: int, rng: np.random.Generator
) -> Dict[str, int]:
    """Draw ``shots`` outcomes from a bitstring distribution, vectorized."""
    outcomes = list(probs.keys())
    weights = np.array([probs[o] for o in outcomes])
    weights = weights / weights.sum()
    draws = rng.choice(len(outcomes), size=shots, p=weights)
    values, tallies = np.unique(draws, return_counts=True)
    return {outcomes[int(v)]: int(t) for v, t in zip(values, tallies)}


def reduce_to_active_qubits(
    circuit: QuantumCircuit, extra_qubits: Sequence[int] = ()
) -> Tuple[QuantumCircuit, Dict[int, int]]:
    """Restrict a wide circuit to its active qubits (plus ``extra_qubits``).

    Returns the reduced circuit and the map from original qubit index to the
    compact index used inside the reduced circuit.
    """
    active = sorted(circuit.active_qubits() | set(extra_qubits))
    if not active:
        active = [0]
    mapping = {original: compact for compact, original in enumerate(active)}
    reduced = QuantumCircuit(len(active), circuit.name)
    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            continue
        reduced.append(
            instruction.gate,
            tuple(mapping[q] for q in instruction.qubits),
            instruction.clbits,
        )
    return reduced, mapping


def measured_qubits_of(circuit: QuantumCircuit) -> List[int]:
    """Qubits measured by the circuit, in program order (deduplicated)."""
    seen: List[int] = []
    for instruction in circuit.instructions:
        if instruction.name == "measure" and instruction.qubits[0] not in seen:
            seen.append(instruction.qubits[0])
    return seen


def reduce_for_measurement(
    circuit: QuantumCircuit, measured_qubits: Optional[Sequence[int]] = None
) -> Tuple[QuantumCircuit, List[int], List[int]]:
    """The shared execution prologue of every backend.

    Defaults ``measured_qubits`` (the circuit's ``measure`` instructions, or
    all active qubits), restricts the circuit to its active wires, and remaps
    the measured qubits into the reduced circuit's compact indexing.

    Returns ``(reduced, measured_qubits, compact_measured)``.
    """
    if measured_qubits is None:
        measured_qubits = measured_qubits_of(circuit) or sorted(circuit.active_qubits())
    measured_qubits = list(measured_qubits)
    reduced, mapping = reduce_to_active_qubits(circuit, measured_qubits)
    return reduced, measured_qubits, [mapping[q] for q in measured_qubits]


def apply_instruction(state: np.ndarray, instruction: Instruction, num_qubits: int) -> np.ndarray:
    """Apply a unitary instruction to a statevector (measure/barrier are skipped)."""
    if not instruction.gate.is_unitary:
        return state
    return apply_matrix(state, instruction.gate.matrix(), instruction.qubits, num_qubits)


class StatevectorSimulator:
    """Ideal (noiseless) statevector simulator."""

    def __init__(self, num_qubits_limit: int = 24, seed: Optional[int] = None) -> None:
        self.num_qubits_limit = num_qubits_limit
        #: Generator used by :meth:`run_counts`; advances across calls so that
        #: repeated runs draw independent samples, like the noisy samplers.
        self.rng = np.random.default_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return the final statevector after applying every unitary gate."""
        if circuit.num_qubits > self.num_qubits_limit:
            raise SimulationError(
                f"{circuit.num_qubits} qubits exceeds the simulator limit "
                f"({self.num_qubits_limit}); restrict to active qubits first"
            )
        if initial_state is None:
            state = zero_state(circuit.num_qubits)
        else:
            state = np.asarray(initial_state, dtype=complex)
            if state.shape != (2**circuit.num_qubits,):
                raise SimulationError("initial state has the wrong dimension")
            state = state.copy()
        num_qubits = circuit.num_qubits
        applied = 0
        for instruction in circuit.instructions:
            gate = instruction.gate
            if not gate.is_unitary:
                continue
            # ``gate.matrix()`` returns an interned read-only array for
            # parameter-free gates, so this loop no longer rebuilds the same
            # CNOT/Toffoli matrices once per instruction.
            state = apply_matrix(state, gate.matrix(), instruction.qubits, num_qubits)
            applied += 1
        if obs.is_enabled():
            obs.counter("sim.statevector.gate_applications").inc(applied)
            obs.histogram("sim.statevector.peak_bytes").observe(float(state.nbytes))
            obs.add_attrs(gate_applications=applied, peak_bytes=state.nbytes)
        return state

    def probabilities(
        self,
        circuit: QuantumCircuit,
        qubits: Optional[Sequence[int]] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """Outcome probabilities over ``qubits`` (all qubits by default)."""
        state = self.run(circuit, initial_state)
        return marginal_probabilities(state, circuit.num_qubits, qubits)

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes (noiseless) over the given qubits."""
        if shots < 1:
            raise SimulationError("shots must be positive")
        probs = self.probabilities(circuit, qubits, initial_state)
        return _sample_from_probs(probs, shots, np.random.default_rng(seed))

    def run_probabilities(
        self,
        circuit: QuantumCircuit,
        measured_qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, float]:
        """Exact (noiseless) outcome distribution over the measured qubits.

        The probability-backend counterpart of :meth:`run_counts`: the same
        active-qubit reduction and measured-qubit defaulting, but returning
        the analytic distribution instead of sampled counts, so experiment
        drivers in ``exact`` mode record zero-shot-variance numbers.
        """
        reduced, _, compact_measured = reduce_for_measurement(circuit, measured_qubits)
        # run() skips non-unitary instructions, so no measure-stripping copy.
        with obs.span(
            "statevector.run",
            category="sim",
            source=circuit.name,
            qubits=reduced.num_qubits,
        ):
            return self.probabilities(reduced, compact_measured)

    def run_counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        measured_qubits: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> NoisyResult:
        """Noiseless :class:`~repro.sim.SimulationBackend` entry point.

        Measures the given qubits (the circuit's ``measure`` instructions, or
        all active qubits, when omitted) and returns hardware-style counts.
        Like the noisy samplers, the circuit is first restricted to its active
        qubits, so wide device circuits with few active wires are cheap; a
        non-``None`` ``seed`` reseeds the generator for that call.
        """
        if shots < 1:
            raise SimulationError("shots must be positive")
        reduced, measured_qubits, compact_measured = reduce_for_measurement(
            circuit, measured_qubits
        )
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        with obs.span(
            "statevector.run",
            category="sim",
            source=circuit.name,
            qubits=reduced.num_qubits,
            shots=shots,
        ):
            probs = self.probabilities(reduced, compact_measured)
            counts = _sample_from_probs(probs, shots, self.rng)
        return NoisyResult(
            counts=counts, shots=shots, measured_qubits=tuple(measured_qubits)
        )


def marginal_distribution(
    probabilities: np.ndarray, num_qubits: int, qubits: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Marginalize a length-``2**num_qubits`` probability vector onto ``qubits``.

    Returns a dense ``2**len(qubits)`` vector whose index orders the requested
    qubits with ``qubits[0]`` as the most significant bit.  Shared by the
    statevector marginals and the density backend's exact distributions.
    """
    if qubits is None:
        qubits = list(range(num_qubits))
    qubits = list(qubits)
    if len(set(qubits)) != len(qubits):
        raise SimulationError(f"duplicate qubits in marginal request: {qubits}")
    out_of_range = [q for q in qubits if not 0 <= q < num_qubits]
    if out_of_range:
        raise SimulationError(
            f"qubits {out_of_range} are out of range for a {num_qubits}-qubit state"
        )
    tensor = np.asarray(probabilities).reshape((2,) * num_qubits)
    other_axes = tuple(q for q in range(num_qubits) if q not in qubits)
    marginal = tensor.sum(axis=other_axes) if other_axes else tensor
    # ``marginal`` axes are the kept qubits in increasing qubit order; reorder
    # them to match the caller's requested order.
    kept_sorted = sorted(qubits)
    order = [kept_sorted.index(q) for q in qubits]
    return np.transpose(marginal, order).reshape(-1)


def marginal_probabilities(
    state: np.ndarray, num_qubits: int, qubits: Optional[Sequence[int]] = None
) -> Dict[str, float]:
    """Probability of each bitstring over ``qubits`` (in the given order)."""
    if qubits is None:
        qubits = list(range(num_qubits))
    qubits = list(qubits)
    flat = marginal_distribution(np.abs(state) ** 2, num_qubits, qubits)
    width = len(qubits)
    result: Dict[str, float] = {}
    for index, probability in enumerate(flat):
        if probability > 1e-15:
            result[format(index, f"0{width}b")] = float(probability)
    return result


def statevector_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """|⟨a|b⟩|² between two statevectors."""
    if state_a.shape != state_b.shape:
        raise SimulationError("states have different dimensions")
    return float(abs(np.vdot(state_a, state_b)) ** 2)
