"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors
(``TypeError``, ``KeyError``, ...) from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid circuit operations."""


class GateError(ReproError):
    """Raised when a gate is constructed or applied incorrectly."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the given circuit."""


class EquivalenceError(SimulationError, AssertionError):
    """Raised when an equivalence assertion between two circuits fails.

    Also an :class:`AssertionError`, so the ``assert_*`` helpers of
    :mod:`repro.sim.equivalence` integrate with pytest and plain ``assert``
    driven harnesses.
    """


class HardwareError(ReproError):
    """Raised for invalid hardware topology or calibration data."""


class TranspilerError(ReproError):
    """Raised when a compiler pass cannot transform a circuit."""


class RoutingError(TranspilerError):
    """Raised when the router cannot make interacting qubits adjacent."""


class LayoutError(TranspilerError):
    """Raised for invalid logical-to-physical qubit layouts."""


class ScheduleError(TranspilerError):
    """Raised when a circuit cannot be scheduled."""


class BenchmarkError(ReproError):
    """Raised when a benchmark circuit generator receives invalid parameters."""
