"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors
(``TypeError``, ``KeyError``, ...) from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid circuit operations."""


class GateError(ReproError):
    """Raised when a gate is constructed or applied incorrectly."""


class SimulationError(ReproError):
    """Raised when a simulator cannot execute the given circuit."""


class EquivalenceError(SimulationError, AssertionError):
    """Raised when an equivalence assertion between two circuits fails.

    Also an :class:`AssertionError`, so the ``assert_*`` helpers of
    :mod:`repro.sim.equivalence` integrate with pytest and plain ``assert``
    driven harnesses.
    """


class HardwareError(ReproError):
    """Raised for invalid hardware topology or calibration data."""


class AnalysisError(ReproError):
    """Raised when the static-analysis layer is used incorrectly.

    This is an error in how the :mod:`repro.analysis` machinery was invoked
    (unknown rule code, bad validation mode, ...) — *findings* about a circuit
    are reported as :class:`repro.analysis.Diagnostic` objects, not raised.
    """


class TranspilerError(ReproError):
    """Raised when a compiler pass cannot transform a circuit."""


class ContractViolationError(TranspilerError):
    """Raised when a pass breaks a declared pipeline contract.

    Carries the name of the offending pass and the violated invariant; the
    same information is recorded under ``properties["contract_violation"]``
    before the raise, so harnesses that catch the error can still attribute
    it (the ``PassManager(validate=...)`` telemetry contract).
    """


class RoutingError(TranspilerError):
    """Raised when the router cannot make interacting qubits adjacent."""


class LayoutError(TranspilerError):
    """Raised for invalid logical-to-physical qubit layouts."""


class ScheduleError(TranspilerError):
    """Raised when a circuit cannot be scheduled."""


class BenchmarkError(ReproError):
    """Raised when a benchmark circuit generator receives invalid parameters."""


class ExecutionError(ReproError):
    """Raised by the fault-tolerant execution runtime (:mod:`repro.runtime`).

    Covers infrastructure failures the runtime cannot (or was told not to)
    absorb: a permanently failed cell under ``on_error="fail"``, a tripped
    max-failure circuit breaker, or invalid runner configuration.  Per-cell
    faults that the runtime *does* absorb are reported as structured
    :class:`repro.runtime.CellResult` records instead of being raised.
    """


class ServiceError(ReproError):
    """Raised by the compile service layer (:mod:`repro.service`).

    Covers misconfiguration of the service/cache machinery itself; the two
    request-scoped subclasses below distinguish the caller's fault
    (:class:`ServiceRequestError`) from a compile that permanently failed
    under the failure policy (:class:`ServiceCompileError`).
    """


class ServiceRequestError(ServiceError):
    """Raised for a malformed or unresolvable compile request.

    The request itself is at fault — unknown topology, unparseable QASM, an
    option the selected pipeline rejects — so the HTTP front end maps this to
    a 400 response.
    """


class ServiceCompileError(ServiceError):
    """Raised when a dispatched compile permanently failed.

    Carries the structured outcome of the failed cell: the runtime status
    (``"failed"``/``"timed_out"``/``"crashed"``), how many attempts the
    failure policy spent, and the worker-side exception type name — so a
    client can distinguish its own bad input (a compiler rejection) from
    service-side infrastructure trouble (a crashed worker).
    """

    def __init__(
        self,
        *args: object,
        status: str = "failed",
        attempts: int = 1,
        error_type: str = "",
    ):
        super().__init__(*args)
        self.status = status
        self.attempts = attempts
        self.error_type = error_type


class ServiceUnavailableError(ServiceError):
    """Raised for requests caught in a service that is shutting down."""


class FaultInjectionError(ReproError):
    """Raised by an injected ``"raise"`` fault from :mod:`repro.runtime.faults`.

    Only the deterministic fault-injection harness raises this; seeing it
    outside a fault-injection test or benchmark means a ``REPRO_FAULTS`` plan
    was left active in the environment.
    """
