"""The Toffoli-only experiment (paper §5.1, Figures 6, 7 and 8).

A single Toffoli is placed on three chosen physical qubits of the device (the
initial mapping is fixed "to force routing to occur"), compiled with the four
configurations compared in the paper —

* ``Qiskit (baseline)``        — conventional flow, 6-CNOT Toffoli,
* ``Qiskit (8-CNOT Toffoli)``  — conventional flow, 8-CNOT Toffoli,
* ``Trios (6-CNOT Toffoli)``   — Trios routing, fixed 6-CNOT second pass,
* ``Trios (8-CNOT Toffoli)``   — Trios routing, mapping-aware second pass
  (which on triangle-free devices such as Johannesburg always selects the
  8-CNOT decomposition) —

and executed on the noisy-hardware substitute with the controls prepared in
|1⟩ and the target in |0⟩, measuring the probability of reading |111⟩.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..circuits.circuit import QuantumCircuit
from ..compiler.result import CompilationResult
from ..exceptions import ReproError, SimulationError
from ..hardware.calibration import DeviceCalibration, johannesburg_aug19_2020
from ..hardware.topology import CouplingMap
from ..hardware.library import johannesburg
from ..passes.base import pass_timings_view
from ..runtime import (
    CellFailure,
    CellRunner,
    FailurePolicy,
    FaultPlan,
    failure_records,
    resolve_jobs,
)
from ..service.jobs import CompileJob, run_job_cached
from ..sim import get_backend
from .benchmarks import _COMPILE_CACHE, require_exact_capable_backend
from .stats import geometric_mean

#: The four compiler configurations of Figures 6 and 7, in plot order.
CONFIGURATIONS = (
    "Qiskit (baseline)",
    "Qiskit (8-CNOT Toffoli)",
    "Trios (6-CNOT Toffoli)",
    "Trios (8-CNOT Toffoli)",
)

#: Each configuration's (pipeline, transpile options) — the declarative form
#: the content-addressed job API consumes, replacing the historical
#: ``compile_baseline``/``compile_trios`` dispatch.
_CONFIGURATION_OPTIONS: Dict[str, Tuple[str, Dict[str, str]]] = {
    "Qiskit (baseline)": ("baseline", {"toffoli_mode": "6cnot"}),
    "Qiskit (8-CNOT Toffoli)": ("baseline", {"toffoli_mode": "8cnot"}),
    "Trios (6-CNOT Toffoli)": ("trios", {"second_decomposition": "6cnot"}),
    "Trios (8-CNOT Toffoli)": ("trios", {"second_decomposition": "mapping_aware"}),
}


def toffoli_test_circuit() -> QuantumCircuit:
    """|110⟩ preparation, one Toffoli, measurement of all three qubits (§5.1)."""
    circuit = QuantumCircuit(3, "single_toffoli")
    circuit.x(0)
    circuit.x(1)
    circuit.ccx(0, 1, 2)
    for qubit in range(3):
        circuit.measure(qubit, qubit)
    return circuit


def compile_configuration(
    configuration: str,
    coupling_map: CouplingMap,
    placement: Dict[int, int],
    seed: Optional[int] = None,
) -> CompilationResult:
    """Compile the Toffoli test circuit under one of the four configurations.

    A thin client of the service-layer job API: the compile is memoized in
    the same content-addressed cache the benchmark sweep and the compile
    server use (keyed by circuit + topology + the configuration's full
    option set).  Seedless calls (``seed=None``, the stochastic-routing
    default here) are intentionally *not* cached — their output is
    non-reproducible by contract.
    """
    circuit = toffoli_test_circuit()
    try:
        method, options = _CONFIGURATION_OPTIONS[configuration]
    except KeyError:
        raise ReproError(f"unknown configuration {configuration!r}") from None
    job = CompileJob.from_circuit(
        circuit, coupling_map, method, layout=dict(placement), seed=seed, **options
    )
    result, _ = run_job_cached(job, _COMPILE_CACHE)
    return result


@dataclass
class TripletResult:
    """Results for one triplet of physical qubits across the four configurations."""

    triplet: Tuple[int, int, int]
    total_distance: int
    cnot_counts: Dict[str, int] = field(default_factory=dict)
    success_rates: Dict[str, float] = field(default_factory=dict)
    pass_spans: Dict[str, List[obs.Span]] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The x-axis label style of Figures 6/7: ``(a-b-c) distance``."""
        a, b, c = self.triplet
        return f"({a}-{b}-{c}) {self.total_distance}"

    def improvement(self) -> float:
        """Figure 8's metric: Trios (8-CNOT) success over the Qiskit baseline."""
        baseline = self.success_rates.get("Qiskit (baseline)", 0.0)
        trios = self.success_rates.get("Trios (8-CNOT Toffoli)", 0.0)
        if baseline <= 0:
            return float("inf") if trios > 0 else 1.0
        return trios / baseline


@dataclass
class ToffoliExperimentResult:
    """Aggregated output of the Toffoli-only experiment."""

    device: str
    shots: int
    #: True when the success rates are analytic probabilities from an exact
    #: backend (zero shot variance) rather than sampled frequencies.
    exact: bool = False
    rows: List[TripletResult] = field(default_factory=list)
    #: Triplets the fault-tolerant runtime could not complete (worker crashed,
    #: timed out, or kept raising) — explicit skip records for the report.
    failures: List[CellFailure] = field(default_factory=list)

    def geomean_cnots(self, configuration: str) -> float:
        return geometric_mean(row.cnot_counts[configuration] for row in self.rows)

    def geomean_success(self, configuration: str) -> float:
        return geometric_mean(
            max(row.success_rates[configuration], 1e-6) for row in self.rows
        )

    def geomean_improvement(self) -> float:
        """Geomean of the Figure 8 normalised success ratios."""
        return geometric_mean(min(row.improvement(), 1e6) for row in self.rows)

    def gate_reduction(self) -> float:
        """Fractional CNOT reduction of Trios (8-CNOT) vs. the Qiskit baseline."""
        baseline = self.geomean_cnots("Qiskit (baseline)")
        trios = self.geomean_cnots("Trios (8-CNOT Toffoli)")
        return 1.0 - trios / baseline

    def all_pass_spans(self) -> List[obs.Span]:
        """Every pass-telemetry span across triplets and configurations."""
        spans: List[obs.Span] = []
        for row in self.rows:
            for recorded in row.pass_spans.values():
                spans.extend(recorded)
        return spans

    def all_pass_timings(self) -> List[dict]:
        """Every pass-telemetry record, as legacy ``pass_timings`` dicts."""
        return pass_timings_view(self.all_pass_spans())


def random_triplets(
    coupling_map: CouplingMap, count: int, seed: Optional[int] = None
) -> List[Tuple[int, int, int]]:
    """Random triplets of distinct physical qubits, like the paper's sampling."""
    rng = random.Random(seed)
    triplets = []
    for _ in range(count):
        triplets.append(tuple(rng.sample(range(coupling_map.num_qubits), 3)))
    return triplets


def _toffoli_cell(payload) -> Optional[TripletResult]:
    """Evaluate one triplet across the four configurations; pool entry point."""
    index, triplet, coupling_map, calibration, shots, seed, sampler, exact = payload
    placement = {0: triplet[0], 1: triplet[1], 2: triplet[2]}
    row = TripletResult(
        triplet=tuple(triplet),
        total_distance=coupling_map.total_distance(triplet),
    )
    try:
        for configuration in CONFIGURATIONS:
            compiled = compile_configuration(
                configuration, coupling_map, placement, seed=seed + index
            )
            row.cnot_counts[configuration] = compiled.two_qubit_gate_count
            row.pass_spans[configuration] = compiled.pass_spans
            measured = compiled.physical_qubits_of([0, 1, 2])
            engine = get_backend(sampler, calibration, seed=seed + index)
            circuit = compiled.circuit.without(["measure"])
            if exact:
                row.success_rates[configuration] = engine.run_probabilities(
                    circuit, measured_qubits=measured
                ).get("111", 0.0)
            else:
                counts = engine.run_counts(
                    circuit, shots=shots, measured_qubits=measured
                )
                row.success_rates[configuration] = counts.success_rate("111")
    except SimulationError as exc:
        # The backend cannot simulate this triplet's compiled circuits
        # (e.g. the routing activated more qubits than a dense density
        # matrix can hold); drop the whole row so the per-row
        # configuration comparison stays balanced.
        warnings.warn(
            f"skipping triplet {row.triplet}: {exc}", RuntimeWarning,
            stacklevel=2,
        )
        return None
    return row


def run_toffoli_experiment(
    coupling_map: Optional[CouplingMap] = None,
    calibration: Optional[DeviceCalibration] = None,
    triplets: Optional[Sequence[Tuple[int, int, int]]] = None,
    num_triplets: int = 35,
    shots: int = 1024,
    seed: int = 0,
    sampler: str = "failure",
    exact: bool = False,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 2,
    on_error: str = "skip",
    faults: Optional[FaultPlan] = None,
) -> ToffoliExperimentResult:
    """Run the §5.1 experiment on the noisy-hardware substitute.

    Args:
        coupling_map: Device topology (IBM Johannesburg by default).
        calibration: Error rates/timings (the 2020-08-19 snapshot by default).
        triplets: Explicit qubit triplets; random ones are drawn if omitted.
        num_triplets: How many random triplets to draw (35 in Figure 6/7,
            99 in Figure 8).
        shots: Shots per compiled circuit (the paper uses 8192 on hardware);
            ignored when ``exact`` is set.
        seed: Seed for triplet sampling, stochastic routing and the sampler.
        sampler: Name of a registered :class:`~repro.sim.SimulationBackend` —
            ``"failure"`` for the fast gate-failure model, ``"trajectory"``
            for the stochastic-Pauli Monte Carlo (slower, more detailed),
            ``"density"`` for exact density-matrix evolution, ``"ptm"`` for
            the faster exact Pauli-transfer-matrix engine, or ``"ideal"``
            for a noiseless control run.
        exact: Record the backend's *analytic* |111⟩ probability
            (``run_probabilities``) instead of a sampled frequency — zero
            shot variance.  Requires a probability-capable backend
            (``"density"``, ``"ptm"`` or ``"ideal"``).
        jobs: Worker processes for the per-triplet cells; ``1`` (the default)
            runs serially, ``0`` uses all CPUs.  Every cell derives its
            randomness from ``seed + index``, so parallel runs are
            bit-identical to serial ones.
        timeout: Per-triplet wall-clock seconds (pool mode) before a hung
            cell's worker is killed and the cell retried; ``None`` disables.
        retries: Extra attempts per faulted triplet.
        on_error: ``"fail"`` aborts the experiment on a permanent failure,
            ``"skip"`` (default) records it under
            :attr:`ToffoliExperimentResult.failures`, ``"serial"``
            additionally degrades to in-process execution when the pool
            keeps breaking.
        faults: Deterministic fault-injection plan; defaults to the
            ``REPRO_FAULTS`` environment variable.

    Triplets whose compiled circuits the selected backend cannot simulate
    (e.g. too many active qubits for the dense density matrix) are skipped
    with a warning rather than aborting the sweep.  NOTE: with the
    ``"density"`` backend these are precisely the *distant* placements, so
    the aggregate geomeans then cover only the simulable subset — compare
    like with like (pass explicit ``triplets``, or raise the backend's
    ``max_active_qubits``) before quoting them against a sampled run.  A
    :class:`~repro.exceptions.ReproError` is raised if every triplet was
    skipped.
    """
    coupling_map = coupling_map or johannesburg()
    calibration = calibration or johannesburg_aug19_2020()
    if exact:
        require_exact_capable_backend(sampler)
    if triplets is None:
        triplets = random_triplets(coupling_map, num_triplets, seed)
    result = ToffoliExperimentResult(
        device=coupling_map.name, shots=shots, exact=exact
    )
    payloads = [
        (index, tuple(triplet), coupling_map, calibration, shots, seed,
         sampler, exact)
        for index, triplet in enumerate(triplets)
    ]
    runner = CellRunner(
        jobs=resolve_jobs(jobs),
        policy=FailurePolicy(timeout=timeout, retries=retries, on_error=on_error),
        faults=faults if faults is not None else "env",
        label="toffoli experiment",
    )
    obs.maybe_enable_from_env()
    with obs.span(
        "toffoli_experiment",
        category="experiment",
        sampler=sampler,
        triplets=len(payloads),
        jobs=jobs,
    ):
        records = runner.run(payloads, _toffoli_cell)
    labels = [f"triplet {payload[1]}" for payload in payloads]
    result.failures = failure_records(records, labels)
    for record in records:
        if record.ok and record.value is not None:
            result.rows.append(record.value)
    if not result.rows:
        raise ReproError(
            f"backend {sampler!r} could not simulate any of the "
            f"{len(list(triplets))} triplets (see warnings); use a sampled "
            "backend, smaller placements, or a larger max_active_qubits"
        )
    # Present the rows sorted by decreasing distance, like the paper's figures.
    result.rows.sort(key=lambda r: -r.total_distance)
    return result


def single_case(
    triplet: Tuple[int, int, int] = (0, 4, 15),
    coupling_map: Optional[CouplingMap] = None,
) -> Dict[str, Dict[str, int]]:
    """A Figure 1-style walkthrough: SWAPs and CNOTs for one distant Toffoli."""
    coupling_map = coupling_map or johannesburg()
    placement = {0: triplet[0], 1: triplet[1], 2: triplet[2]}
    summary: Dict[str, Dict[str, int]] = {}
    for configuration in ("Qiskit (baseline)", "Trios (8-CNOT Toffoli)"):
        compiled = compile_configuration(configuration, coupling_map, placement, seed=1)
        summary[configuration] = {
            "swaps": compiled.swaps_inserted,
            "cnots": compiled.two_qubit_gate_count,
            "depth": compiled.depth,
        }
    return summary
