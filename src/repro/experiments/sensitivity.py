"""Error-rate sensitivity study (paper §6.4, Figure 12).

For a range of error-rate improvement factors (1x = today's Johannesburg,
20x = the near-term model used in Figures 9-11, up to 100x), the compiled
baseline and Trios circuits are re-evaluated under the scaled calibration and
the success ratio ``p_trios / p_baseline`` is reported per benchmark.  The
circuits themselves are compiled once — only the error model changes — exactly
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..bench_circuits.suite import TOFFOLI_BENCHMARKS, get_benchmark
from ..compiler.pipeline import compile_baseline, compile_trios
from ..hardware.calibration import DeviceCalibration, johannesburg_aug19_2020
from ..hardware.library import johannesburg
from ..hardware.topology import CouplingMap


@dataclass
class SensitivityCurve:
    """Success-ratio curve for one benchmark over the improvement factors."""

    benchmark: str
    factors: List[float]
    ratios: List[float]

    def ratio_at(self, factor: float) -> float:
        """Ratio at the factor closest to ``factor``."""
        index = int(np.argmin([abs(f - factor) for f in self.factors]))
        return self.ratios[index]


@dataclass
class SensitivityResult:
    """Figure 12: one curve per Toffoli-containing benchmark."""

    device: str
    factors: List[float]
    curves: Dict[str, SensitivityCurve] = field(default_factory=dict)

    def benchmarks(self) -> List[str]:
        return list(self.curves)


def default_factors(num_points: int = 9, maximum: float = 100.0) -> List[float]:
    """Log-spaced improvement factors from 1x to ``maximum`` (the Figure 12 x-axis)."""
    return [float(f) for f in np.logspace(0, np.log10(maximum), num_points)]


def run_sensitivity_experiment(
    coupling_map: Optional[CouplingMap] = None,
    base_calibration: Optional[DeviceCalibration] = None,
    benchmarks: Optional[Sequence[str]] = None,
    factors: Optional[Sequence[float]] = None,
    seed: int = 11,
) -> SensitivityResult:
    """Reproduce Figure 12 on the Johannesburg topology."""
    coupling_map = coupling_map or johannesburg()
    base_calibration = base_calibration or johannesburg_aug19_2020()
    benchmarks = list(benchmarks or TOFFOLI_BENCHMARKS)
    factors = list(factors or default_factors())
    result = SensitivityResult(device=coupling_map.name, factors=list(factors))
    for benchmark in benchmarks:
        circuit = get_benchmark(benchmark)
        if circuit.num_qubits > coupling_map.num_qubits:
            continue
        baseline = compile_baseline(circuit, coupling_map, seed=seed)
        trios = compile_trios(circuit, coupling_map, seed=seed)
        ratios: List[float] = []
        for factor in factors:
            calibration = base_calibration.improved(factor)
            base_p = baseline.success_probability(calibration)
            trios_p = trios.success_probability(calibration)
            if base_p <= 0:
                ratios.append(float("inf") if trios_p > 0 else 1.0)
            else:
                ratios.append(trios_p / base_p)
        result.curves[benchmark] = SensitivityCurve(
            benchmark=benchmark, factors=list(factors), ratios=ratios
        )
    return result
