"""Error-rate sensitivity study (paper §6.4, Figure 12).

For a range of error-rate improvement factors (1x = today's Johannesburg,
20x = the near-term model used in Figures 9-11, up to 100x), the compiled
baseline and Trios circuits are re-evaluated under the scaled calibration and
the success ratio ``p_trios / p_baseline`` is reported per benchmark.  The
circuits themselves are compiled once — only the error model changes — exactly
as in the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..bench_circuits.suite import TOFFOLI_BENCHMARKS, get_benchmark
from ..exceptions import SimulationError
from ..hardware.calibration import DeviceCalibration, johannesburg_aug19_2020
from ..hardware.library import johannesburg
from ..hardware.topology import CouplingMap
from ..passes.base import pass_timings_view
from ..runtime import (
    CellFailure,
    CellRunner,
    FailurePolicy,
    FaultPlan,
    failure_records,
    resolve_jobs,
)
from .benchmarks import (
    compile_benchmark_cached,
    ideal_expected_outcome,
    require_exact_capable_backend,
    sampled_success,
)


@dataclass
class SensitivityCurve:
    """Success-ratio curve for one benchmark over the improvement factors."""

    benchmark: str
    factors: List[float]
    ratios: List[float]
    pass_spans: List[obs.Span] = field(default_factory=list)

    def ratio_at(self, factor: float) -> float:
        """Ratio at the factor closest to ``factor``."""
        index = int(np.argmin([abs(f - factor) for f in self.factors]))
        return self.ratios[index]


@dataclass
class SensitivityResult:
    """Figure 12: one curve per Toffoli-containing benchmark."""

    device: str
    factors: List[float]
    curves: Dict[str, SensitivityCurve] = field(default_factory=dict)
    #: Curves the fault-tolerant runtime could not complete (worker crashed,
    #: timed out, or kept raising) — explicit skip records for the report.
    failures: List[CellFailure] = field(default_factory=list)

    def benchmarks(self) -> List[str]:
        return list(self.curves)

    def all_pass_spans(self) -> List[obs.Span]:
        """Every pass-telemetry span across the compiled benchmark pairs."""
        spans: List[obs.Span] = []
        for curve in self.curves.values():
            spans.extend(curve.pass_spans)
        return spans

    def all_pass_timings(self) -> List[dict]:
        """Every pass-telemetry record, as legacy ``pass_timings`` dicts."""
        return pass_timings_view(self.all_pass_spans())


def default_factors(num_points: int = 9, maximum: float = 100.0) -> List[float]:
    """Log-spaced improvement factors from 1x to ``maximum`` (the Figure 12 x-axis)."""
    return [float(f) for f in np.logspace(0, np.log10(maximum), num_points)]


def _sensitivity_cell(
    payload,
) -> "Optional[SensitivityCurve]":
    """Evaluate one benchmark's whole curve; process-pool entry point."""
    (benchmark, coupling_map, base_calibration, factors, seed, backend,
     shots, exact) = payload
    circuit = get_benchmark(benchmark)
    # The circuits are compiled once — only the error model changes — and the
    # compilation is shared with the Figures 9-11 sweep via the compile cache.
    baseline = compile_benchmark_cached(benchmark, coupling_map, "baseline", seed, circuit)
    trios = compile_benchmark_cached(benchmark, coupling_map, "trios", seed, circuit)
    expected = None if backend == "analytic" else ideal_expected_outcome(circuit)
    ratios: List[float] = []
    try:
        for factor in factors:
            calibration = base_calibration.improved(factor)
            if backend == "analytic":
                base_p = baseline.success_probability(calibration)
                trios_p = trios.success_probability(calibration)
            elif exact:
                # Analytic probabilities carry no shot noise, so no floor is
                # needed: a true zero stays zero (handled below).
                base_p = sampled_success(
                    baseline, circuit, backend, calibration, shots, seed,
                    expected, exact=True,
                )
                trios_p = sampled_success(
                    trios, circuit, backend, calibration, shots, seed,
                    expected, exact=True,
                )
            else:
                # Floor at half a shot so a deep circuit that happens to
                # score zero matches in a finite sample yields a large but
                # finite ratio instead of poisoning the curve with inf.
                floor = 1.0 / (2.0 * shots)
                base_p = max(floor, sampled_success(
                    baseline, circuit, backend, calibration, shots, seed, expected
                ))
                trios_p = max(floor, sampled_success(
                    trios, circuit, backend, calibration, shots, seed, expected
                ))
            if base_p <= 0:
                ratios.append(float("inf") if trios_p > 0 else 1.0)
            else:
                ratios.append(trios_p / base_p)
    except SimulationError as exc:
        # The sampling backend cannot simulate this compiled circuit
        # (e.g. too many active qubits); skip the whole curve.
        warnings.warn(
            f"skipping the {benchmark} sensitivity curve: {exc}",
            RuntimeWarning, stacklevel=2,
        )
        return None
    return SensitivityCurve(
        benchmark=benchmark, factors=list(factors), ratios=ratios,
        pass_spans=baseline.pass_spans + trios.pass_spans,
    )


def run_sensitivity_experiment(
    coupling_map: Optional[CouplingMap] = None,
    base_calibration: Optional[DeviceCalibration] = None,
    benchmarks: Optional[Sequence[str]] = None,
    factors: Optional[Sequence[float]] = None,
    seed: int = 11,
    backend: str = "analytic",
    shots: int = 2048,
    jobs: int = 1,
    exact: bool = False,
    timeout: Optional[float] = None,
    retries: int = 2,
    on_error: str = "skip",
    faults: Optional[FaultPlan] = None,
) -> SensitivityResult:
    """Reproduce Figure 12 on the Johannesburg topology.

    Args:
        coupling_map: Device topology (Johannesburg by default).
        base_calibration: The 1x error model that the factors scale.
        benchmarks: Benchmark labels (the Toffoli-containing set by default).
        factors: Error-rate improvement factors (log-spaced 1x-100x default).
        seed: Seed for the baseline's stochastic routing (and the sampler).
        backend: ``"analytic"`` re-evaluates the closed-form model at each
            factor (the paper's method, the default); any registered
            :class:`~repro.sim.SimulationBackend` name instead re-samples the
            compiled circuits under each scaled calibration.
        shots: Shots per circuit when a sampling backend is selected.
        jobs: Worker processes for the per-benchmark curves; ``1`` (the
            default) runs serially, ``0`` uses all CPUs.  Results are
            identical either way.
        exact: Evaluate analytic success probabilities via the backend's
            ``run_probabilities`` (zero shot variance, no shot-noise floor);
            requires a probability-capable backend such as ``"density"`` or ``"ptm"``.
        timeout: Per-curve wall-clock seconds (pool mode) before a hung
            cell's worker is killed and the cell retried; ``None`` disables.
        retries: Extra attempts per faulted curve.
        on_error: ``"fail"`` aborts the study on a permanent failure,
            ``"skip"`` (default) records it under
            :attr:`SensitivityResult.failures`, ``"serial"`` additionally
            degrades to in-process execution when the pool keeps breaking.
        faults: Deterministic fault-injection plan; defaults to the
            ``REPRO_FAULTS`` environment variable.
    """
    coupling_map = coupling_map or johannesburg()
    base_calibration = base_calibration or johannesburg_aug19_2020()
    benchmarks = list(benchmarks or TOFFOLI_BENCHMARKS)
    factors = list(factors or default_factors())
    if exact:
        require_exact_capable_backend(backend)
    result = SensitivityResult(device=coupling_map.name, factors=list(factors))
    fitting = [
        name for name in benchmarks
        if get_benchmark(name).num_qubits <= coupling_map.num_qubits
    ]
    payloads = [
        (name, coupling_map, base_calibration, list(factors), seed, backend,
         shots, exact)
        for name in fitting
    ]
    runner = CellRunner(
        jobs=resolve_jobs(jobs),
        policy=FailurePolicy(timeout=timeout, retries=retries, on_error=on_error),
        faults=faults if faults is not None else "env",
        label="sensitivity study",
    )
    obs.maybe_enable_from_env()
    with obs.span(
        "sensitivity_experiment",
        category="experiment",
        backend=backend,
        curves=len(payloads),
        jobs=jobs,
    ):
        records = runner.run(payloads, _sensitivity_cell)
    result.failures = failure_records(records, fitting)
    for name, record in zip(fitting, records):
        if record.ok and record.value is not None:
            result.curves[name] = record.value
    return result
