"""Command-line interface for regenerating the paper's tables and figures.

Usage (after ``pip install -e .``)::

    python -m repro table1
    python -m repro toffoli --triplets 35 --shots 2048
    python -m repro benchmarks
    python -m repro sensitivity
    python -m repro all

Each subcommand prints the corresponding table/figure data as plain text (the
same formatting used by the pytest-benchmark harness under ``benchmarks/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..bench_circuits import all_benchmark_statistics
from .benchmarks import run_benchmark_experiment
from .report import (
    format_benchmark_normalized,
    format_benchmark_reduction,
    format_benchmark_success,
    format_pass_profile,
    format_sensitivity,
    format_table1,
    format_toffoli_gate_counts,
    format_toffoli_normalized,
    format_toffoli_success,
)
from .sensitivity import run_sensitivity_experiment
from .toffoli import run_toffoli_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Orchestrated Trios paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="Table 1: benchmark inventory")

    toffoli = subparsers.add_parser(
        "toffoli", help="Figures 6-8: single-Toffoli experiment on Johannesburg"
    )
    toffoli.add_argument("--triplets", type=int, default=35,
                         help="number of random qubit triplets (default 35)")
    toffoli.add_argument("--shots", type=int, default=2048,
                         help="shots per compiled circuit (default 2048)")
    toffoli.add_argument("--seed", type=int, default=0, help="random seed")
    toffoli.add_argument("--sampler", default="failure",
                         choices=["failure", "trajectory", "ideal"],
                         help="simulation backend (default: failure)")
    toffoli.add_argument("--profile-passes", action="store_true",
                         help="print the per-pass time / gate-delta table")

    benchmarks = subparsers.add_parser(
        "benchmarks", help="Figures 9-11: benchmark suite on the four topologies"
    )
    benchmarks.add_argument("--seed", type=int, default=11, help="routing seed")
    benchmarks.add_argument("--backend", default="analytic",
                            choices=["analytic", "failure", "trajectory", "ideal"],
                            help="success model: analytic (paper) or a sampler")
    benchmarks.add_argument("--shots", type=int, default=2048,
                            help="shots per circuit for sampling backends")
    benchmarks.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the sweep cells "
                                 "(default 1 = serial; results are identical)")
    benchmarks.add_argument("--benchmarks", nargs="+", metavar="NAME",
                            default=None,
                            help="restrict the sweep to these Table 1 "
                                 "benchmarks (default: all)")
    benchmarks.add_argument("--profile-passes", action="store_true",
                            help="print the per-pass time / gate-delta table")

    sensitivity = subparsers.add_parser(
        "sensitivity", help="Figure 12: sensitivity to device error rates"
    )
    sensitivity.add_argument(
        "--factors", type=float, nargs="+",
        default=[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
        help="error-rate improvement factors",
    )
    sensitivity.add_argument("--backend", default="analytic",
                             choices=["analytic", "failure", "trajectory", "ideal"],
                             help="success model: analytic (paper) or a sampler")
    sensitivity.add_argument("--shots", type=int, default=2048,
                             help="shots per circuit for sampling backends")
    sensitivity.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the per-benchmark "
                                  "curves (default 1 = serial)")
    sensitivity.add_argument("--profile-passes", action="store_true",
                             help="print the per-pass time / gate-delta table")

    subparsers.add_parser("all", help="Run everything (may take a minute)")
    return parser


def _run_table1() -> None:
    print("[Table 1] Benchmark inventory (measured vs paper)\n")
    print(format_table1(all_benchmark_statistics()))


def _print_pass_profile(result) -> None:
    print("\n[Pass profile] per-pass compile time and gate delta\n")
    print(format_pass_profile(result.all_pass_timings()))


def _run_toffoli(triplets: int, shots: int, seed: int, sampler: str = "failure",
                 profile_passes: bool = False) -> None:
    result = run_toffoli_experiment(num_triplets=triplets, shots=shots, seed=seed,
                                    sampler=sampler)
    print("[Figure 7] CNOT gate counts\n")
    print(format_toffoli_gate_counts(result))
    print("\n[Figure 6] Success probabilities\n")
    print(format_toffoli_success(result))
    print("\n[Figure 8] Success normalised to the baseline\n")
    print(format_toffoli_normalized(result))
    print(f"\nGeomean gate reduction: {result.gate_reduction() * 100:.1f}% (paper: 35%)")
    print(f"Geomean success increase: {(result.geomean_improvement() - 1) * 100:.1f}% "
          f"(paper: 23%)")
    if profile_passes:
        _print_pass_profile(result)


def _run_benchmarks(seed: int, backend: str = "analytic", shots: int = 2048,
                    jobs: int = 1, benchmarks: Optional[Sequence[str]] = None,
                    profile_passes: bool = False) -> None:
    result = run_benchmark_experiment(seed=seed, backend=backend, shots=shots,
                                      jobs=jobs, benchmarks=benchmarks)
    print("[Figure 9] Simulated success probabilities\n")
    print(format_benchmark_success(result))
    print("[Figure 10] CNOT reduction\n")
    print(format_benchmark_reduction(result))
    print("\n[Figure 11] Success normalised to the baseline\n")
    print(format_benchmark_normalized(result))
    if profile_passes:
        _print_pass_profile(result)


def _run_sensitivity(factors: Sequence[float], backend: str = "analytic",
                     shots: int = 2048, jobs: int = 1,
                     profile_passes: bool = False) -> None:
    result = run_sensitivity_experiment(factors=list(factors), backend=backend,
                                        shots=shots, jobs=jobs)
    print("[Figure 12] p_trios / p_baseline vs error-rate improvement\n")
    print(format_sensitivity(result))
    if profile_passes:
        _print_pass_profile(result)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        _run_table1()
    elif args.command == "toffoli":
        _run_toffoli(args.triplets, args.shots, args.seed, args.sampler,
                     profile_passes=args.profile_passes)
    elif args.command == "benchmarks":
        _run_benchmarks(args.seed, args.backend, args.shots, args.jobs,
                        benchmarks=args.benchmarks,
                        profile_passes=args.profile_passes)
    elif args.command == "sensitivity":
        _run_sensitivity(args.factors, args.backend, args.shots, args.jobs,
                         profile_passes=args.profile_passes)
    elif args.command == "all":
        _run_table1()
        print("\n")
        _run_toffoli(triplets=20, shots=1024, seed=0)
        print("\n")
        _run_benchmarks(seed=11)
        print("\n")
        _run_sensitivity([1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0])
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
