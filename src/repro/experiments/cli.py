"""Command-line interface for regenerating the paper's tables and figures.

Usage (after ``pip install -e .``)::

    python -m repro --list-backends
    python -m repro table1
    python -m repro toffoli --triplets 35 --shots 2048
    python -m repro toffoli --exact                 # analytic, shot-free
    python -m repro benchmarks --backend ptm --exact
    python -m repro sensitivity --exact --jobs 4
    python -m repro compile grovers-9 --pipeline trios
    python -m repro serve --port 8732          # compilation as a service
    python -m repro all

Each subcommand prints the corresponding table/figure data as plain text (the
same formatting used by the pytest-benchmark harness under ``benchmarks/``).
``--exact`` switches the success metric from sampled frequencies to an
exact backend's analytic probabilities (zero shot variance) — either the
density-matrix engine or the faster Pauli-transfer-matrix one (``ptm``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .. import obs
from ..bench_circuits import all_benchmark_statistics
from ..bench_circuits.suite import get_benchmark
from ..compiler.pipeline import PIPELINES, transpile
from ..hardware.calibration import near_term_calibration
from ..hardware.library import PAPER_TOPOLOGIES, by_name
from ..sim import (
    BACKEND_CAPABILITIES,
    BACKEND_DESCRIPTIONS,
    BACKEND_NAMES,
    EXACT_PROBABILITY_BACKENDS,
)
from .benchmarks import run_benchmark_experiment
from .report import (
    format_benchmark_normalized,
    format_benchmark_reduction,
    format_benchmark_success,
    format_failure_summary,
    format_metrics_summary,
    format_pass_profile,
    format_sensitivity,
    format_trace_summary,
    format_table1,
    format_toffoli_gate_counts,
    format_toffoli_normalized,
    format_toffoli_success,
)
from .sensitivity import run_sensitivity_experiment
from .toffoli import run_toffoli_experiment

def _resolve_exact_backend(backend: str, exact: bool) -> str:
    """Pick the backend that serves ``--exact``.

    ``--exact`` needs a backend with analytic ``run_probabilities``
    (:data:`repro.sim.EXACT_PROBABILITY_BACKENDS`); when the selected one
    cannot provide it — including the ``analytic`` closed-form model and the
    shot samplers — the density-matrix backend is substituted, with a printed
    note so the swap is never silent.
    """
    if not exact or backend in EXACT_PROBABILITY_BACKENDS:
        return backend
    print(f"note: --exact needs analytic probabilities; using the 'density' "
          f"backend instead of {backend!r}\n")
    return "density"


def _add_fault_tolerance_flags(parser: argparse.ArgumentParser,
                               cells: str) -> None:
    """The fault-tolerant runtime's knobs, shared by every sweep subcommand."""
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help=f"wall-clock timeout per {cells} (pool mode); a "
                             "hung worker is killed and the cell retried")
    parser.add_argument("--retries", type=int, default=2,
                        help=f"extra attempts per faulted {cells} "
                             "(crash/timeout/exception; default 2)")
    parser.add_argument("--on-error", default="skip",
                        choices=["fail", "skip", "serial"], dest="on_error",
                        help="permanent-failure policy: fail = abort the "
                             "sweep, skip = record the cell in the failure "
                             "table and continue (default), serial = skip "
                             "plus in-process fallback when the pool keeps "
                             "breaking")


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """The tracing knob, shared by every subcommand."""
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        dest="trace",
                        help="record hierarchical spans (compiler passes, "
                             "runtime cell attempts, simulator runs — "
                             "including worker processes) and write them as "
                             "Chrome trace-event JSON to this path on exit; "
                             "REPRO_TRACE=<path> is the environment "
                             "equivalent, REPRO_TRACE=1 prints the terminal "
                             "summary without writing a file")


def _finish_trace(trace_path: Optional[str]) -> None:
    """Print the span/metrics summaries and export the Chrome trace, if on."""
    if not obs.is_enabled():
        return
    spans = obs.trace_spans()
    print("\n[trace] span summary\n")
    print(format_trace_summary(spans))
    metrics = obs.metrics_summary()
    if metrics:
        print("\n[trace] metrics\n")
        print(format_metrics_summary(metrics))
    if trace_path:
        count = obs.export_chrome_trace(trace_path)
        print(f"\n[trace] wrote {count} span(s) to {trace_path}")


def _print_failures(failures) -> None:
    if failures:
        print(f"\n[failures] {len(failures)} cell(s) did not complete "
              f"(aggregates cover the surviving cells)\n")
        print(format_failure_summary(failures))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Orchestrated Trios paper.",
    )
    parser.add_argument("--list-backends", action="store_true",
                        help="list the registered simulation backends and exit")
    subparsers = parser.add_subparsers(dest="command")

    table1 = subparsers.add_parser("table1", help="Table 1: benchmark inventory")
    _add_observability_flags(table1)

    exact_help = ("record analytic success probabilities (zero shot variance) "
                  "instead of sampled frequencies; implies the density-matrix "
                  "backend unless an exact-capable one is selected")

    toffoli = subparsers.add_parser(
        "toffoli", help="Figures 6-8: single-Toffoli experiment on Johannesburg"
    )
    toffoli.add_argument("--triplets", type=int, default=35,
                         help="number of random qubit triplets (default 35)")
    toffoli.add_argument("--shots", type=int, default=2048,
                         help="shots per compiled circuit (default 2048)")
    toffoli.add_argument("--seed", type=int, default=0, help="random seed")
    toffoli.add_argument("--sampler", default="failure",
                         choices=list(BACKEND_NAMES),
                         help="simulation backend (default: failure)")
    toffoli.add_argument("--exact", action="store_true", help=exact_help)
    toffoli.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the per-triplet cells "
                              "(default 1 = serial, 0 = all CPUs; results "
                              "are identical)")
    toffoli.add_argument("--profile-passes", action="store_true",
                         help="print the per-pass time / gate-delta table")
    _add_fault_tolerance_flags(toffoli, "triplet")
    _add_observability_flags(toffoli)

    benchmarks = subparsers.add_parser(
        "benchmarks", help="Figures 9-11: benchmark suite on the four topologies"
    )
    benchmarks.add_argument("--seed", type=int, default=11, help="routing seed")
    benchmarks.add_argument("--backend", default="analytic",
                            choices=["analytic", *BACKEND_NAMES],
                            help="success model: analytic (paper) or a simulator")
    benchmarks.add_argument("--shots", type=int, default=2048,
                            help="shots per circuit for sampling backends")
    benchmarks.add_argument("--exact", action="store_true", help=exact_help)
    benchmarks.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the sweep cells "
                                 "(default 1 = serial, 0 = all CPUs; "
                                 "results are identical)")
    benchmarks.add_argument("--benchmarks", nargs="+", metavar="NAME",
                            default=None,
                            help="restrict the sweep to these Table 1 "
                                 "benchmarks (default: all)")
    benchmarks.add_argument("--profile-passes", action="store_true",
                            help="print the per-pass time / gate-delta table")
    _add_fault_tolerance_flags(benchmarks, "sweep cell")
    _add_observability_flags(benchmarks)

    sensitivity = subparsers.add_parser(
        "sensitivity", help="Figure 12: sensitivity to device error rates"
    )
    sensitivity.add_argument(
        "--factors", type=float, nargs="+",
        default=[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
        help="error-rate improvement factors",
    )
    sensitivity.add_argument("--backend", default="analytic",
                             choices=["analytic", *BACKEND_NAMES],
                             help="success model: analytic (paper) or a simulator")
    sensitivity.add_argument("--shots", type=int, default=2048,
                             help="shots per circuit for sampling backends")
    sensitivity.add_argument("--exact", action="store_true", help=exact_help)
    sensitivity.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the per-benchmark "
                                  "curves (default 1 = serial, 0 = all CPUs)")
    sensitivity.add_argument("--profile-passes", action="store_true",
                             help="print the per-pass time / gate-delta table")
    _add_fault_tolerance_flags(sensitivity, "benchmark curve")
    _add_observability_flags(sensitivity)

    compile_cmd = subparsers.add_parser(
        "compile",
        help="transpile one Table 1 benchmark with a named pipeline",
    )
    compile_cmd.add_argument("benchmark",
                             help="Table 1 benchmark label, e.g. grovers-9")
    compile_cmd.add_argument("--pipeline", default="trios",
                             choices=sorted(PIPELINES),
                             help="named pipeline from "
                                  "repro.compiler.pipeline.PIPELINES "
                                  "(default: trios)")
    compile_cmd.add_argument("--topology", default="ibmq-johannesburg",
                             choices=sorted(PAPER_TOPOLOGIES),
                             help="target device topology")
    compile_cmd.add_argument("--seed", type=int, default=11, help="routing seed")
    compile_cmd.add_argument("--optimization-level", "--opt-level", type=int,
                             default=1, choices=[0, 1, 2, 3],
                             dest="optimization_level",
                             help="transpile() level; 3 adds the "
                                  "commutation-aware cancellation loop and a "
                                  "multi-seed layout/routing search")
    compile_cmd.add_argument("--seed-trials", type=int, default=None,
                             help="layout/routing seeds the level-3 search "
                                  "tries (only with --opt-level 3; default 4)")
    compile_cmd.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the level-3 seed "
                                  "search (only with --opt-level 3; "
                                  "0 = all CPUs)")
    _add_observability_flags(compile_cmd)

    lint = subparsers.add_parser(
        "lint",
        help="statically lint QASM files or compiled benchmarks "
             "(exits non-zero on error-severity findings)",
    )
    lint.add_argument("paths", nargs="*", metavar="FILE.qasm",
                      help="QASM files to lint")
    lint.add_argument("--benchmark", default=None, metavar="NAME",
                      help="compile this Table 1 benchmark and lint the output")
    lint.add_argument("--pipeline", default="trios", choices=sorted(PIPELINES),
                      help="pipeline for --benchmark (default: trios)")
    lint.add_argument("--topology", default="ibmq-johannesburg",
                      choices=sorted(PAPER_TOPOLOGIES),
                      help="target device; for QASM files this enables the "
                           "hardware-legality rules")
    lint.add_argument("--no-target", action="store_true",
                      help="lint QASM files without a device target "
                           "(structural and resource rules only)")
    lint.add_argument("--seed", type=int, default=11, help="routing seed")
    lint.add_argument("--optimization-level", "--opt-level", type=int,
                      default=1, choices=[0, 1, 2, 3],
                      dest="optimization_level",
                      help="transpile() level for --benchmark / --fig9-10")
    lint.add_argument("--format", default="table", choices=["table", "json"],
                      dest="output_format", help="diagnostic output format")
    lint.add_argument("--suppress", nargs="+", metavar="CODE", default=(),
                      help="rule codes to suppress, e.g. QL201 QL202")
    lint.add_argument("--fig9-10", action="store_true", dest="fig9_10",
                      help="compile and lint every Fig 9/10 sweep cell "
                           "(all benchmarks x topologies x both pipelines); "
                           "the CI lint gate")
    _add_observability_flags(lint)

    serve = subparsers.add_parser(
        "serve",
        help="run the compile service: JSON-over-HTTP, content-addressed "
             "sharded cache, request coalescing, batched pool dispatch",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8732,
                       help="TCP port (default 8732; 0 picks a free port)")
    serve.add_argument("--cache-mb", type=int, default=256, dest="cache_mb",
                       help="compile-cache byte budget in MiB (default 256)")
    serve.add_argument("--shards", type=int, default=8,
                       help="cache shards, each with its own lock (default 8)")
    serve.add_argument("--pool-jobs", type=int, default=2, dest="pool_jobs",
                       help="worker processes per dispatched compile batch "
                            "(default 2; 0 = all CPUs)")
    serve.add_argument("--batch-window", type=float, default=0.01,
                       dest="batch_window", metavar="SECONDS",
                       help="how long the dispatcher waits for concurrent "
                            "requests to coalesce into one batch "
                            "(default 0.01)")
    serve.add_argument("--max-batch", type=int, default=32, dest="max_batch",
                       help="maximum unique compiles per batch (default 32)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="wall-clock timeout per dispatched compile; a "
                            "hung worker is killed and the compile retried")
    serve.add_argument("--retries", type=int, default=1,
                       help="extra attempts per faulted compile (default 1)")
    _add_observability_flags(serve)

    run_all = subparsers.add_parser("all", help="Run everything (may take a minute)")
    _add_observability_flags(run_all)
    return parser


def _run_table1() -> None:
    print("[Table 1] Benchmark inventory (measured vs paper)\n")
    print(format_table1(all_benchmark_statistics()))


def _print_pass_profile(result) -> None:
    print("\n[Pass profile] per-pass compile time and gate delta\n")
    print(format_pass_profile(result.all_pass_timings()))


def _list_backends() -> None:
    print("Registered simulation backends (repro.sim.get_backend):\n")
    for name in BACKEND_NAMES:
        capability = BACKEND_CAPABILITIES[name]
        print(f"  {name:12s} [{capability:7s}] {BACKEND_DESCRIPTIONS[name]}")


def _run_toffoli(triplets: int, shots: int, seed: int, sampler: str = "failure",
                 exact: bool = False, profile_passes: bool = False,
                 jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 2, on_error: str = "skip") -> None:
    sampler = _resolve_exact_backend(sampler, exact)
    result = run_toffoli_experiment(num_triplets=triplets, shots=shots, seed=seed,
                                    sampler=sampler, exact=exact, jobs=jobs,
                                    timeout=timeout, retries=retries,
                                    on_error=on_error)
    note = " (exact probabilities, zero shot variance)" if exact else ""
    print("[Figure 7] CNOT gate counts\n")
    print(format_toffoli_gate_counts(result))
    print(f"\n[Figure 6] Success probabilities{note}\n")
    print(format_toffoli_success(result))
    print(f"\n[Figure 8] Success normalised to the baseline{note}\n")
    print(format_toffoli_normalized(result))
    print(f"\nGeomean gate reduction: {result.gate_reduction() * 100:.1f}% (paper: 35%)")
    print(f"Geomean success increase: {(result.geomean_improvement() - 1) * 100:.1f}% "
          f"(paper: 23%)")
    _print_failures(result.failures)
    if profile_passes:
        _print_pass_profile(result)


def _run_benchmarks(seed: int, backend: str = "analytic", shots: int = 2048,
                    jobs: int = 1, benchmarks: Optional[Sequence[str]] = None,
                    exact: bool = False, profile_passes: bool = False,
                    timeout: Optional[float] = None, retries: int = 2,
                    on_error: str = "skip") -> None:
    backend = _resolve_exact_backend(backend, exact)
    result = run_benchmark_experiment(seed=seed, backend=backend, shots=shots,
                                      jobs=jobs, benchmarks=benchmarks,
                                      exact=exact, timeout=timeout,
                                      retries=retries, on_error=on_error)
    note = " (exact probabilities, zero shot variance)" if exact else ""
    print(f"[Figure 9] Simulated success probabilities{note}\n")
    print(format_benchmark_success(result))
    print("[Figure 10] CNOT reduction\n")
    print(format_benchmark_reduction(result))
    print(f"\n[Figure 11] Success normalised to the baseline{note}\n")
    print(format_benchmark_normalized(result))
    _print_failures(result.failures)
    if profile_passes:
        _print_pass_profile(result)


def _run_sensitivity(factors: Sequence[float], backend: str = "analytic",
                     shots: int = 2048, jobs: int = 1, exact: bool = False,
                     profile_passes: bool = False,
                     timeout: Optional[float] = None, retries: int = 2,
                     on_error: str = "skip") -> None:
    backend = _resolve_exact_backend(backend, exact)
    result = run_sensitivity_experiment(factors=list(factors), backend=backend,
                                        shots=shots, jobs=jobs, exact=exact,
                                        timeout=timeout, retries=retries,
                                        on_error=on_error)
    note = " (exact probabilities)" if exact else ""
    print(f"[Figure 12] p_trios / p_baseline vs error-rate improvement{note}\n")
    print(format_sensitivity(result))
    _print_failures(result.failures)
    if profile_passes:
        _print_pass_profile(result)


def _run_compile(benchmark: str, pipeline: str, topology: str, seed: int,
                 optimization_level: int, seed_trials: Optional[int] = None,
                 jobs: int = 1) -> None:
    circuit = get_benchmark(benchmark)
    coupling_map = by_name(topology)
    extra = {}
    if optimization_level >= 3:
        extra = dict(seed_trials=seed_trials, jobs=jobs)
    else:
        # Forward explicitly-given search knobs even below level 3 so
        # transpile()'s "has no effect" rejection surfaces instead of the
        # CLI silently running a plain compile.
        if seed_trials is not None:
            extra["seed_trials"] = seed_trials
        if jobs != 1:
            extra["jobs"] = jobs
    compiled = transpile(circuit, coupling_map, method=pipeline, seed=seed,
                         optimization_level=optimization_level, **extra)
    calibration = near_term_calibration()
    print(f"[compile] {benchmark} with the {pipeline!r} pipeline "
          f"on {topology} (seed {seed}, O{optimization_level})\n")
    print(f"  qubits (logical):      {circuit.num_qubits}")
    print(f"  CNOTs:                 {compiled.two_qubit_gate_count}")
    print(f"  depth:                 {compiled.depth}")
    print(f"  SWAPs inserted:        {compiled.swaps_inserted}")
    print(f"  duration:              {compiled.duration(calibration):.3f} us")
    print(f"  analytic success (20x): {compiled.success_probability(calibration):.4f}")
    search = compiled.seed_search
    if search is not None:
        tried = len(search["seeds"])
        print(f"  seed search:           {tried} seed(s), "
              f"chose seed {search['chosen_seed']}")
        for record in search["candidates"]:
            marker = "*" if record["seed"] == search["chosen_seed"] else " "
            print(f"    {marker} seed {record['seed']}: "
                  f"{record['cnots']} CNOTs, depth {record['depth']}, "
                  f"est. success {record['estimated_success']:.4f}"
                  + ("" if record["admissible"] else " (inadmissible)"))


def _run_serve(host: str, port: int, cache_mb: int, shards: int,
               pool_jobs: int, batch_window: float, max_batch: int,
               timeout: Optional[float], retries: int) -> int:
    """The ``repro serve`` subcommand: run the compile service until shutdown."""
    import asyncio

    from ..runtime import FailurePolicy
    from ..service import CompileService, ShardedLRUCache
    from ..service.http import serve as serve_http

    cache = ShardedLRUCache(
        max_bytes=cache_mb * 1024 * 1024, shards=shards, name="compile"
    )
    service = CompileService(
        cache=cache,
        pool_jobs=pool_jobs,
        batch_window=batch_window,
        max_batch=max_batch,
        policy=FailurePolicy(timeout=timeout, retries=retries, on_error="skip"),
    )
    asyncio.run(serve_http(service, host=host, port=port))
    return 0


def _print_report(report, output_format: str) -> None:
    if output_format == "json":
        import json

        print(json.dumps(report.to_json(), indent=2))
        return
    print(f"[lint] {report.subject}: {report.summary()}")
    if report:
        print(report.to_table())


def _run_lint(paths: Sequence[str], benchmark: Optional[str], pipeline: str,
              topology: str, seed: int, optimization_level: int,
              output_format: str, suppress: Sequence[str],
              fig9_10: bool, no_target: bool) -> int:
    """The ``repro lint`` subcommand; returns the process exit code."""
    from ..analysis import CircuitLinter
    from ..circuits.qasm import from_qasm

    if not paths and benchmark is None and not fig9_10:
        print("nothing to lint: give QASM paths, --benchmark or --fig9-10",
              file=sys.stderr)
        return 2

    failed = False
    reports = []

    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            circuit = from_qasm(handle.read())
        target = None if no_target else by_name(topology)
        linter = CircuitLinter(target=target, suppress=suppress)
        reports.append(linter.lint(circuit, name=path))

    if benchmark is not None:
        result = transpile(
            get_benchmark(benchmark), by_name(topology), method=pipeline,
            seed=seed, optimization_level=optimization_level,
        )
        linter = CircuitLinter(suppress=suppress)
        reports.append(
            linter.lint(result, name=f"{benchmark}|{topology}|{pipeline}")
        )

    if fig9_10:
        # The Fig 9/10 sweep, cell for cell (same loop as
        # benchmarks/freeze_fig9_10_reference.py): every compiled output must
        # lint without error-severity findings.
        from ..bench_circuits import PAPER_BENCHMARKS

        linter = CircuitLinter(suppress=suppress)
        cells = skipped = 0
        for label, builder in PAPER_TOPOLOGIES.items():
            coupling_map = builder()
            for name in sorted(PAPER_BENCHMARKS):
                circuit = get_benchmark(name)
                if circuit.num_qubits > coupling_map.num_qubits:
                    skipped += 1
                    continue
                for method in ("baseline", "trios"):
                    result = transpile(
                        circuit, coupling_map, method=method, seed=seed,
                        optimization_level=optimization_level,
                    )
                    cells += 1
                    reports.append(
                        linter.lint(result, name=f"{label}|{name}|{method}")
                    )
        print(f"[lint] Fig 9/10 sweep: {cells} cells compiled and linted "
              f"({skipped} skipped: circuit wider than device)")

    for report in reports:
        _print_report(report, output_format)
        if report.has_errors:
            failed = True
    if len(reports) > 1 and output_format == "table":
        errors = sum(len(r.errors()) for r in reports)
        print(f"\n[lint] {len(reports)} subjects, {errors} error-severity "
              f"finding(s) -> {'FAIL' if failed else 'OK'}")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        _list_backends()
        return 0
    if args.command is None:
        parser.error("a subcommand is required (or --list-backends)")
    # --trace (or REPRO_TRACE) switches on the observability layer before any
    # compilation or sweep runs, so every span of the command lands in one
    # trace; the export and terminal summary happen in _finish_trace.
    trace_path = getattr(args, "trace", None) or obs.trace_path_from_env()
    if trace_path or obs.env_requests_tracing():
        obs.enable()
    code = _dispatch(args)
    _finish_trace(trace_path)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected subcommand; returns its exit code."""
    if args.command == "table1":
        _run_table1()
    elif args.command == "toffoli":
        _run_toffoli(args.triplets, args.shots, args.seed, args.sampler,
                     exact=args.exact, profile_passes=args.profile_passes,
                     jobs=args.jobs, timeout=args.timeout,
                     retries=args.retries, on_error=args.on_error)
    elif args.command == "benchmarks":
        _run_benchmarks(args.seed, args.backend, args.shots, args.jobs,
                        benchmarks=args.benchmarks, exact=args.exact,
                        profile_passes=args.profile_passes,
                        timeout=args.timeout, retries=args.retries,
                        on_error=args.on_error)
    elif args.command == "sensitivity":
        _run_sensitivity(args.factors, args.backend, args.shots, args.jobs,
                         exact=args.exact, profile_passes=args.profile_passes,
                         timeout=args.timeout, retries=args.retries,
                         on_error=args.on_error)
    elif args.command == "compile":
        _run_compile(args.benchmark, args.pipeline, args.topology, args.seed,
                     args.optimization_level, seed_trials=args.seed_trials,
                     jobs=args.jobs)
    elif args.command == "serve":
        return _run_serve(args.host, args.port, args.cache_mb, args.shards,
                          args.pool_jobs, args.batch_window, args.max_batch,
                          args.timeout, args.retries)
    elif args.command == "lint":
        return _run_lint(args.paths, args.benchmark, args.pipeline,
                         args.topology, args.seed, args.optimization_level,
                         args.output_format, tuple(args.suppress),
                         args.fig9_10, args.no_target)
    elif args.command == "all":
        _run_table1()
        print("\n")
        _run_toffoli(triplets=20, shots=1024, seed=0)
        print("\n")
        _run_benchmarks(seed=11)
        print("\n")
        _run_sensitivity([1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0])
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
