"""Experiment harnesses regenerating every table and figure of the paper."""

from .stats import geometric_mean, percent_change, percent_reduction
from .toffoli import (
    CONFIGURATIONS,
    TripletResult,
    ToffoliExperimentResult,
    toffoli_test_circuit,
    compile_configuration,
    random_triplets,
    run_toffoli_experiment,
    single_case,
)
from .benchmarks import (
    BenchmarkComparison,
    BenchmarkExperimentResult,
    compare_benchmark,
    run_benchmark_experiment,
)
from .sensitivity import (
    SensitivityCurve,
    SensitivityResult,
    default_factors,
    run_sensitivity_experiment,
)
from . import report

__all__ = [
    "geometric_mean",
    "percent_change",
    "percent_reduction",
    "CONFIGURATIONS",
    "TripletResult",
    "ToffoliExperimentResult",
    "toffoli_test_circuit",
    "compile_configuration",
    "random_triplets",
    "run_toffoli_experiment",
    "single_case",
    "BenchmarkComparison",
    "BenchmarkExperimentResult",
    "compare_benchmark",
    "run_benchmark_experiment",
    "SensitivityCurve",
    "SensitivityResult",
    "default_factors",
    "run_sensitivity_experiment",
    "report",
]
