"""Plain-text reports mirroring the paper's tables and figure captions.

Every formatter takes the structured result of an experiment harness and
returns a printable string; the benchmark harness under ``benchmarks/`` and the
example scripts use these to show the regenerated rows/series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..bench_circuits.suite import PAPER_TABLE1, BenchmarkStats
from ..obs import Span
from ..passes.base import legacy_pass_timing
from ..runtime import CellFailure
from .benchmarks import BenchmarkExperimentResult
from .sensitivity import SensitivityResult
from .toffoli import CONFIGURATIONS, ToffoliExperimentResult


def _format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_table1(stats: Sequence[BenchmarkStats]) -> str:
    """Table 1: benchmark inventory, measured vs. the paper's printed numbers."""
    rows = []
    for stat in stats:
        paper = PAPER_TABLE1.get(stat.name, {})
        rows.append(
            (
                stat.name,
                stat.qubits,
                paper.get("qubits", "-"),
                stat.toffolis,
                paper.get("toffolis", "-"),
                stat.cnots_after_8cnot_decomposition,
                paper.get("cnots", "-"),
            )
        )
    headers = ("benchmark", "qubits", "(paper)", "toffolis", "(paper)", "cnots", "(paper)")
    return _format_table(headers, rows)


def format_toffoli_gate_counts(result: ToffoliExperimentResult) -> str:
    """Figure 7: CNOT counts per triplet for the four configurations."""
    headers = ("triplet",) + CONFIGURATIONS
    rows = [
        (row.label,) + tuple(row.cnot_counts[c] for c in CONFIGURATIONS)
        for row in result.rows
    ]
    rows.append(
        ("geo-mean",)
        + tuple(f"{result.geomean_cnots(c):.1f}" for c in CONFIGURATIONS)
    )
    return _format_table(headers, rows)


def format_toffoli_success(result: ToffoliExperimentResult) -> str:
    """Figure 6: success probabilities per triplet for the four configurations."""
    headers = ("triplet",) + CONFIGURATIONS
    rows = [
        (row.label,) + tuple(f"{row.success_rates[c]:.3f}" for c in CONFIGURATIONS)
        for row in result.rows
    ]
    rows.append(
        ("geo-mean",)
        + tuple(f"{result.geomean_success(c):.3f}" for c in CONFIGURATIONS)
    )
    return _format_table(headers, rows)


def format_toffoli_normalized(result: ToffoliExperimentResult) -> str:
    """Figure 8: Trios success normalised to the Qiskit baseline, per triplet."""
    headers = ("triplet", "p_trios / p_baseline")
    rows = [(row.label, f"{row.improvement():.2f}") for row in result.rows]
    rows.append(("geo-mean", f"{result.geomean_improvement():.2f}"))
    return _format_table(headers, rows)


def format_benchmark_success(result: BenchmarkExperimentResult) -> str:
    """Figure 9: simulated success probability, baseline vs Trios, per topology."""
    lines: List[str] = []
    for topology in result.topologies():
        table = result.comparisons[topology]
        headers = ("benchmark", "baseline", "trios")
        rows = [
            (name, f"{cmp.baseline_success:.4f}", f"{cmp.trios_success:.4f}")
            for name, cmp in table.items()
        ]
        rows.append(
            (
                "geo-mean (toffoli only)",
                f"{result.geomean_success(topology, 'baseline'):.4f}",
                f"{result.geomean_success(topology, 'trios'):.4f}",
            )
        )
        lines.append(f"== {topology} ==")
        lines.append(_format_table(headers, rows))
        lines.append("")
    return "\n".join(lines)


def format_benchmark_reduction(result: BenchmarkExperimentResult) -> str:
    """Figure 10: percent fewer CNOT gates with Trios, per topology."""
    topologies = result.topologies()
    headers = ("benchmark",) + tuple(topologies)
    benchmarks = list(result.comparisons[topologies[0]])
    rows = []
    for name in benchmarks:
        row = [name]
        for topology in topologies:
            comparison = result.comparisons[topology].get(name)
            row.append("-" if comparison is None else f"{comparison.cnot_reduction * 100:.1f}%")
        rows.append(row)
    rows.append(
        ["geo-mean (toffoli only)"]
        + [f"{result.geomean_cnot_reduction(t) * 100:.1f}%" for t in topologies]
    )
    return _format_table(headers, rows)


def format_benchmark_normalized(result: BenchmarkExperimentResult) -> str:
    """Figure 11: Trios success normalised to the baseline, per topology."""
    topologies = result.topologies()
    headers = ("benchmark",) + tuple(topologies)
    benchmarks = list(result.comparisons[topologies[0]])
    rows = []
    for name in benchmarks:
        row = [name]
        for topology in topologies:
            comparison = result.comparisons[topology].get(name)
            row.append("-" if comparison is None else f"{comparison.success_ratio:.2f}x")
        rows.append(row)
    rows.append(
        ["geo-mean (toffoli only)"]
        + [f"{result.geomean_success_ratio(t):.2f}x" for t in topologies]
    )
    return _format_table(headers, rows)


def format_sensitivity(result: SensitivityResult) -> str:
    """Figure 12: success ratio vs error-rate improvement factor, per benchmark."""
    headers = ("benchmark",) + tuple(f"{f:.1f}x" for f in result.factors)
    rows = []
    for name, curve in result.curves.items():
        rows.append((name,) + tuple(f"{r:.2f}" for r in curve.ratios))
    return _format_table(headers, rows)


def format_failure_summary(failures: Sequence[CellFailure]) -> str:
    """The fault-tolerant runtime's failure table for a partial sweep.

    One row per cell the runtime could not complete (worker crashed, timed
    out, or kept raising after retries); the surrounding report's aggregates
    cover only the surviving cells, so this table is what makes a partial
    sweep honest.
    """
    if not failures:
        return "(no failed cells)"
    headers = ("cell", "status", "attempts", "error")
    rows = [
        (failure.label, failure.status, failure.attempts, failure.error or "-")
        for failure in failures
    ]
    return _format_table(headers, rows)


def format_pass_profile(
    timings: Iterable[Union[Dict[str, object], Span]],
) -> str:
    """Aggregate per-pass telemetry into a time / gate-delta table.

    ``timings`` is any iterable of compiler-pass telemetry — either the
    :class:`~repro.obs.Span` records the pass manager stores in
    ``CompilationResult.pass_spans``, or the legacy ``{"pass", "stage",
    "seconds", "size_before", "size_after"}`` dicts derived from them
    (``pass_timings``); records of the same pass (across compilations and
    fixed-point sweeps) are summed.
    """
    totals: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for record in timings:
        if isinstance(record, Span):
            record = legacy_pass_timing(record)
        key = f"{record.get('stage') or '-'}/{record['pass']}"
        if key not in totals:
            totals[key] = {"calls": 0, "seconds": 0.0, "delta": 0}
            order.append(key)
        entry = totals[key]
        entry["calls"] += 1
        entry["seconds"] += float(record["seconds"])
        entry["delta"] += int(record["size_after"]) - int(record["size_before"])
    if not totals:
        return "(no pass telemetry recorded)"
    rows = []
    for key in sorted(order, key=lambda k: -totals[k]["seconds"]):
        stage, name = key.split("/", 1)
        entry = totals[key]
        rows.append(
            (
                name,
                stage,
                int(entry["calls"]),
                f"{entry['seconds'] * 1e3:.1f}",
                f"{int(entry['delta']):+d}",
            )
        )
    headers = ("pass", "stage", "calls", "total ms", "gate delta")
    return _format_table(headers, rows)


def format_trace_summary(spans: Sequence[Span], top: Optional[int] = None) -> str:
    """Aggregate a span list into a per-(category, name) duration table.

    One row per distinct ``(category, name)`` pair with call count, total,
    mean and max duration in milliseconds, sorted by total descending; the
    terminal-friendly counterpart of the Chrome trace export.  ``top`` caps
    the number of rows (all by default).
    """
    if not spans:
        return "(no spans recorded)"
    totals: Dict[tuple, Dict[str, float]] = {}
    pids = set()
    for span in spans:
        pids.add(span.pid)
        entry = totals.setdefault(
            (span.category or "-", span.name),
            {"calls": 0, "total": 0.0, "max": 0.0},
        )
        entry["calls"] += 1
        entry["total"] += span.duration
        entry["max"] = max(entry["max"], span.duration)
    ranked = sorted(totals.items(), key=lambda item: -item[1]["total"])
    if top is not None:
        ranked = ranked[:top]
    rows = []
    for (category, name), entry in ranked:
        calls = int(entry["calls"])
        rows.append(
            (
                name,
                category,
                calls,
                f"{entry['total'] * 1e3:.1f}",
                f"{entry['total'] * 1e3 / calls:.2f}",
                f"{entry['max'] * 1e3:.2f}",
            )
        )
    headers = ("span", "category", "calls", "total ms", "mean ms", "max ms")
    table = _format_table(headers, rows)
    footer = f"\n({len(spans)} spans from {len(pids)} process(es))"
    return table + footer


def format_metrics_summary(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Render :func:`repro.obs.metrics_summary` as a flat metric/stat table.

    Counters and gauges get one row; histograms get one row per statistic
    (count, sum, min, max, p50/p90/p99).
    """
    if not summary:
        return "(no metrics recorded)"
    rows = []
    for name in sorted(summary):
        stats = summary[name]
        for stat in stats:
            value = stats[stat]
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            rows.append((name, stat, rendered))
    headers = ("metric", "stat", "value")
    return _format_table(headers, rows)
