"""Small statistics helpers shared by the experiment harnesses."""

from __future__ import annotations

import math
from typing import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregate the paper uses for all its headline numbers.

    Zero or negative entries are clamped to a tiny positive value so a single
    zero-success data point does not collapse the whole aggregate to zero.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    clamped = [max(float(v), 1e-300) for v in values]
    return math.exp(sum(math.log(v) for v in clamped) / len(clamped))


def percent_change(before: float, after: float) -> float:
    """Relative change ``(after - before) / before`` expressed as a fraction."""
    if before == 0:
        return math.inf if after > 0 else 0.0
    return (after - before) / before


def percent_reduction(before: float, after: float) -> float:
    """Fractional reduction ``1 - after/before`` (0.35 means 35% fewer)."""
    if before == 0:
        return 0.0
    return 1.0 - after / before
