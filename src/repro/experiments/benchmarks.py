"""The simulated NISQ-benchmark experiment (paper §5.2, Figures 9, 10 and 11).

Every Table 1 benchmark is compiled with the baseline and with Trios onto each
of the four 20-qubit topologies of Figure 5, and the analytic success model
(§2.6) is evaluated with error rates 20x better than the 2020-08-19
Johannesburg calibration — exactly the setup the paper simulates.

The sweep is embarrassingly parallel over its (topology, benchmark) cells:
:func:`run_benchmark_experiment` accepts ``jobs`` (also exposed as the CLI's
``--jobs``) and fans the cells out over a process pool.  Every cell compiles
with the same deterministic seed it would receive serially, so ``jobs=8``
reproduces ``jobs=1`` bit for bit.  Compilations are additionally memoized in
a per-process, content-addressed cache (the service layer's sharded LRU,
keyed by ``sha256(canonical QASM + topology signature + canonical
options)``), so repeated sweeps — and the sensitivity study, which compiles
the same circuits — reuse them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..bench_circuits.suite import (
    PAPER_BENCHMARKS,
    TOFFOLI_BENCHMARKS,
    get_benchmark,
)
from ..circuits.circuit import QuantumCircuit
from ..compiler.result import CompilationResult
from ..exceptions import ReproError, SimulationError
from ..hardware.calibration import DeviceCalibration, near_term_calibration
from ..hardware.library import PAPER_TOPOLOGIES
from ..hardware.topology import CouplingMap
from ..passes.base import pass_timings_view
from ..runtime import (
    CellFailure,
    CellRunner,
    FailurePolicy,
    FaultPlan,
    failure_records,
    resolve_jobs,
)
from ..service.cache import ShardedLRUCache
from ..service.jobs import CompileJob, run_job_cached
from ..sim import (
    EXACT_PROBABILITY_BACKENDS,
    StatevectorSimulator,
    get_backend,
    supports_exact_probabilities,
)
from .stats import geometric_mean, percent_reduction


@dataclass
class BenchmarkComparison:
    """Baseline-vs-Trios numbers for one benchmark on one topology."""

    benchmark: str
    topology: str
    baseline_cnots: int
    trios_cnots: int
    baseline_success: float
    trios_success: float
    baseline_depth: int
    trios_depth: int
    #: Per-pass telemetry spans of the two compilations (``--profile-passes``
    #: data); ``None`` for rows built before the observability layer.
    baseline_pass_spans: Optional[List[obs.Span]] = None
    trios_pass_spans: Optional[List[obs.Span]] = None

    @property
    def cnot_reduction(self) -> float:
        """Figure 10's metric: fraction of CNOTs removed by Trios."""
        return percent_reduction(self.baseline_cnots, self.trios_cnots)

    @property
    def success_ratio(self) -> float:
        """Figure 11's metric: ``p_trios / p_baseline``."""
        if self.baseline_success <= 0:
            return float("inf") if self.trios_success > 0 else 1.0
        return self.trios_success / self.baseline_success


@dataclass
class BenchmarkExperimentResult:
    """All comparisons, indexed by topology label then benchmark label."""

    calibration_name: str
    comparisons: Dict[str, Dict[str, BenchmarkComparison]] = field(default_factory=dict)
    #: Cells the fault-tolerant runtime could not complete (worker crashed,
    #: timed out, or kept raising): explicit skip records, so a partial sweep
    #: reports what is missing instead of crashing.  The geomean aggregates
    #: below simply cover the surviving rows.
    failures: List[CellFailure] = field(default_factory=list)

    def topologies(self) -> List[str]:
        return list(self.comparisons)

    def row(self, topology: str, benchmark: str) -> BenchmarkComparison:
        return self.comparisons[topology][benchmark]

    # Aggregates over the Toffoli-containing benchmarks, as in the figures.
    def geomean_cnot_reduction(self, topology: str) -> float:
        rows = self._toffoli_rows(topology)
        return 1.0 - geometric_mean(
            max(r.trios_cnots, 1) / max(r.baseline_cnots, 1) for r in rows
        )

    def geomean_success(self, topology: str, method: str) -> float:
        rows = self._toffoli_rows(topology)
        if method == "baseline":
            return geometric_mean(r.baseline_success for r in rows)
        if method == "trios":
            return geometric_mean(r.trios_success for r in rows)
        raise ReproError(f"unknown method {method!r}")

    def geomean_success_ratio(self, topology: str) -> float:
        rows = self._toffoli_rows(topology)
        return geometric_mean(min(r.success_ratio, 1e9) for r in rows)

    def _toffoli_rows(self, topology: str) -> List[BenchmarkComparison]:
        table = self.comparisons[topology]
        return [table[name] for name in table if name in TOFFOLI_BENCHMARKS]

    def all_pass_spans(self) -> List[obs.Span]:
        """Every pass-telemetry span across the sweep (both pipelines)."""
        spans: List[obs.Span] = []
        for table in self.comparisons.values():
            for row in table.values():
                for recorded in (row.baseline_pass_spans, row.trios_pass_spans):
                    if recorded:
                        spans.extend(recorded)
        return spans

    def all_pass_timings(self) -> List[Dict[str, object]]:
        """Every pass-telemetry record across the sweep, as legacy dicts."""
        return pass_timings_view(self.all_pass_spans())


# ----------------------------------------------------------------------
# Compile-once cache
# ----------------------------------------------------------------------
#: The drivers' compile memoization — the same bounded, sharded,
#: content-addressed LRU the compile service uses (one implementation, one
#: key recipe: ``sha256(canonical QASM + topology signature + canonical
#: options)``).  Content addressing subsumes the old (benchmark, topology,
#: method, seed) tuple *and* closes its two bugs: the cache no longer grows
#: without bound in a long-lived process, and two calls differing in any
#: semantic transpile option (``optimization_level``, ``toffoli_mode``, ...)
#: can never collide on one entry.  Both pipelines are deterministic given a
#: seed, so caching never changes results.  The cache is per process; pool
#: workers each warm their own copy.
_COMPILE_CACHE = ShardedLRUCache(name="compile")


def clear_compile_cache() -> None:
    """Drop all memoized compilations (mainly useful in benchmarks/tests)."""
    _COMPILE_CACHE.clear()


def compile_cache_stats():
    """Counters of the shared compile cache (hits/misses/evictions/bytes)."""
    return _COMPILE_CACHE.stats()


def compile_benchmark_cached(
    benchmark: str,
    coupling_map: CouplingMap,
    method: str,
    seed: Optional[int],
    circuit: Optional[QuantumCircuit] = None,
    **options: object,
) -> CompilationResult:
    """Compile a Table 1 benchmark with one pipeline, memoized.

    A thin client of the service's job API: the request is keyed by
    content (:func:`repro.service.compile_job_key`), so any further
    ``transpile()`` keyword passed via ``options`` participates in the key
    and differing option sets never share an entry.

    ``circuit`` may pass in an already-built instance of the benchmark to
    avoid regenerating it; it must be the circuit ``get_benchmark(benchmark)``
    would return (with content addressing an impostor would merely miss).
    """
    if method not in ("baseline", "trios"):
        raise ReproError(f"unknown compilation method {method!r}")
    if circuit is None:
        circuit = get_benchmark(benchmark)
    job = CompileJob.from_circuit(
        circuit, coupling_map, method, seed=seed, **options
    )
    result, _ = run_job_cached(job, _COMPILE_CACHE)
    return result


def ideal_expected_outcome(logical: QuantumCircuit) -> str:
    """The most likely outcome of the *ideal* logical circuit.

    This is the success criterion the paper's hardware runs use — the
    benchmarks are engineered to concentrate on one answer.  Compute it once
    per benchmark and pass it to :func:`sampled_success`; the dense statevector
    simulation behind it is the expensive part of a sampled sweep.
    """
    ideal = StatevectorSimulator(num_qubits_limit=24).probabilities(
        logical.without(["measure"])
    )
    return max(ideal, key=ideal.get)


def require_exact_capable_backend(backend: str) -> None:
    """Reject ``exact=True`` with a backend that has no analytic distribution.

    Validates the *name* against :data:`repro.sim.EXACT_PROBABILITY_BACKENDS`
    so the sweeps (and the Toffoli driver) fail up front — before any
    compilation or process-pool fan-out — instead of erroring per cell.
    """
    if backend.lower() not in EXACT_PROBABILITY_BACKENDS:
        raise ReproError(
            f"exact=True requires a backend with analytic run_probabilities "
            f"({', '.join(EXACT_PROBABILITY_BACKENDS)}); got {backend!r}"
        )


def sampled_success(
    compiled: CompilationResult,
    logical: QuantumCircuit,
    backend: str,
    calibration: DeviceCalibration,
    shots: int,
    seed: int,
    expected: Optional[str] = None,
    exact: bool = False,
) -> float:
    """Success rate of a compiled circuit under a shot-level backend.

    ``expected`` is the ideal outcome from :func:`ideal_expected_outcome`;
    it is computed on the fly when omitted, but callers evaluating the same
    logical circuit repeatedly should hoist it.  With ``exact=True`` the
    backend's analytic ``run_probabilities`` replaces shot sampling, so the
    returned probability carries zero shot variance (requires a
    probability-capable backend such as ``"density"`` or ``"ptm"``).
    """
    if expected is None:
        expected = ideal_expected_outcome(logical)
    measured = compiled.physical_qubits_of(list(range(logical.num_qubits)))
    engine = get_backend(backend, calibration, seed=seed)
    circuit = compiled.circuit.without(["measure"])
    if exact:
        if not supports_exact_probabilities(engine):
            raise ReproError(
                f"backend {backend!r} cannot produce exact probabilities; "
                "use 'density' or 'ptm' (noisy) or 'ideal' (noiseless)"
            )
        return engine.run_probabilities(circuit, measured_qubits=measured).get(
            expected, 0.0
        )
    result = engine.run_counts(circuit, shots, measured_qubits=measured)
    return result.success_rate(expected)


def compare_benchmark(
    benchmark: str,
    coupling_map: CouplingMap,
    calibration: DeviceCalibration,
    seed: int = 11,
    backend: str = "analytic",
    shots: int = 2048,
    expected: Optional[str] = None,
    circuit: Optional[QuantumCircuit] = None,
    exact: bool = False,
) -> BenchmarkComparison:
    """Compile one benchmark with both pipelines and evaluate its success.

    Args:
        benchmark: Table 1 benchmark label.
        coupling_map: Target topology.
        calibration: Device error model.
        seed: Seed for the baseline's stochastic routing (and the sampler).
        backend: ``"analytic"`` evaluates the paper's closed-form success
            model (§2.6, the default); any registered
            :class:`~repro.sim.SimulationBackend` name (``"failure"``,
            ``"trajectory"``, ``"density"``, ``"ptm"``, ``"ideal"``) instead
            *samples* the compiled circuits for ``shots`` shots.
        shots: Shots per circuit when a sampling backend is selected.
        expected: Precomputed :func:`ideal_expected_outcome` for sampling
            backends; computed on the fly when omitted.
        circuit: Already-built instance of the benchmark, so sweep callers
            construct each logical circuit once instead of once per cell.
        exact: Evaluate analytic success probabilities via the backend's
            ``run_probabilities`` (zero shot variance) instead of sampling;
            requires a probability-capable backend such as ``"density"`` or ``"ptm"``.
    """
    if circuit is None:
        circuit = get_benchmark(benchmark)
    if exact:
        require_exact_capable_backend(backend)
    baseline = compile_benchmark_cached(benchmark, coupling_map, "baseline", seed, circuit)
    # Same routing policy and seed as the baseline so that Toffoli-free
    # circuits compile identically (the paper's "no effect" control).
    trios = compile_benchmark_cached(benchmark, coupling_map, "trios", seed, circuit)
    if backend == "analytic":
        baseline_success = baseline.success_probability(calibration)
        trios_success = trios.success_probability(calibration)
    else:
        if expected is None:
            expected = ideal_expected_outcome(circuit)
        baseline_success = sampled_success(
            baseline, circuit, backend, calibration, shots, seed, expected,
            exact=exact,
        )
        trios_success = sampled_success(
            trios, circuit, backend, calibration, shots, seed, expected,
            exact=exact,
        )
    return BenchmarkComparison(
        benchmark=benchmark,
        topology=coupling_map.name,
        baseline_cnots=baseline.two_qubit_gate_count,
        trios_cnots=trios.two_qubit_gate_count,
        baseline_success=baseline_success,
        trios_success=trios_success,
        baseline_depth=baseline.depth,
        trios_depth=trios.depth,
        baseline_pass_spans=baseline.pass_spans,
        trios_pass_spans=trios.pass_spans,
    )


def _benchmark_cell(
    payload: Tuple[str, CouplingMap, str, QuantumCircuit, DeviceCalibration,
                   int, str, int, Optional[str], bool],
) -> Tuple[str, str, Optional[BenchmarkComparison]]:
    """Evaluate one (topology, benchmark) cell; process-pool entry point."""
    (label, coupling_map, benchmark, circuit, calibration, seed, backend,
     shots, expected, exact) = payload
    try:
        comparison = compare_benchmark(
            benchmark, coupling_map, calibration, seed,
            backend=backend, shots=shots, expected=expected, circuit=circuit,
            exact=exact,
        )
    except SimulationError as exc:
        # The selected sampling backend cannot simulate this compiled
        # circuit (e.g. too many active qubits for the trajectory
        # sampler); skip the row rather than aborting the sweep.
        warnings.warn(
            f"skipping {benchmark} on {label}: {exc}", RuntimeWarning,
            stacklevel=2,
        )
        return label, benchmark, None
    return label, benchmark, comparison


def run_benchmark_experiment(
    topologies: Optional[Mapping[str, Callable[[], CouplingMap]]] = None,
    calibration: Optional[DeviceCalibration] = None,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 11,
    backend: str = "analytic",
    shots: int = 2048,
    jobs: int = 1,
    exact: bool = False,
    timeout: Optional[float] = None,
    retries: int = 2,
    on_error: str = "skip",
    faults: Optional[FaultPlan] = None,
) -> BenchmarkExperimentResult:
    """Run the full Figures 9-11 sweep on the fault-tolerant runtime.

    Args:
        topologies: Mapping from label to topology builder; defaults to the
            paper's four devices.
        calibration: Error model; defaults to 20x-improved Johannesburg.
        benchmarks: Benchmark labels to include; defaults to all of Table 1.
        seed: Seed for the baseline's stochastic routing.
        backend: ``"analytic"`` (paper default) or a registered
            :class:`~repro.sim.SimulationBackend` name to sample shot counts.
        shots: Shots per circuit when a sampling backend is selected.
        jobs: Worker processes for the (topology, benchmark) cells; ``1``
            (the default) runs serially, ``0`` uses all CPUs.  Results are
            identical either way (the exact backend's channels and simulator
            pickle cleanly), and a cell that succeeds after retries is
            byte-identical to its fault-free serial run (each cell derives
            randomness from the seed carried in its own payload).
        exact: Record the backend's analytic success probabilities instead
            of sampled frequencies (zero shot variance); requires a
            probability-capable backend such as ``"density"`` or ``"ptm"``.
        timeout: Per-cell wall-clock seconds (pool mode) before a hung cell's
            worker is killed and the cell retried; ``None`` disables.
        retries: Extra attempts per faulted cell (crash, timeout, exception).
        on_error: What a permanently failed cell does — ``"fail"`` aborts the
            sweep (the pre-runtime behaviour), ``"skip"`` (default) records
            it under :attr:`BenchmarkExperimentResult.failures`, ``"serial"``
            additionally degrades to in-process execution when the pool keeps
            breaking.
        faults: Deterministic fault-injection plan (tests/benchmarks); by
            default the ``REPRO_FAULTS`` environment variable is honoured.
    """
    topologies = topologies or PAPER_TOPOLOGIES
    calibration = calibration or near_term_calibration()
    benchmarks = list(benchmarks or PAPER_BENCHMARKS)
    if exact:
        require_exact_capable_backend(backend)
    obs.maybe_enable_from_env()
    with obs.span(
        "benchmark_experiment",
        category="experiment",
        backend=backend,
        benchmarks=len(benchmarks),
        jobs=jobs,
    ):
        return _run_benchmark_experiment(
            topologies, calibration, benchmarks, seed, backend, shots, jobs,
            exact, timeout, retries, on_error, faults,
        )


def _run_benchmark_experiment(
    topologies: Mapping[str, Callable[[], CouplingMap]],
    calibration: DeviceCalibration,
    benchmarks: List[str],
    seed: int,
    backend: str,
    shots: int,
    jobs: int,
    exact: bool,
    timeout: Optional[float],
    retries: int,
    on_error: str,
    faults: Optional[FaultPlan],
) -> BenchmarkExperimentResult:
    result = BenchmarkExperimentResult(calibration_name=calibration.name)
    # Build each topology and each logical circuit exactly once per sweep.
    built = {label: builder() for label, builder in topologies.items()}
    circuits = {name: get_benchmark(name) for name in benchmarks}
    # The ideal expected outcome depends only on the logical circuit, so
    # compute it once per benchmark, not once per (topology, benchmark) cell.
    expected_cache: Dict[str, str] = {}
    payloads = []
    for label, coupling_map in built.items():
        result.comparisons[label] = {}
        for benchmark in benchmarks:
            if circuits[benchmark].num_qubits > coupling_map.num_qubits:
                continue
            expected = None
            if backend != "analytic":
                if benchmark not in expected_cache:
                    expected_cache[benchmark] = ideal_expected_outcome(
                        circuits[benchmark]
                    )
                expected = expected_cache[benchmark]
            payloads.append(
                (label, coupling_map, benchmark, circuits[benchmark],
                 calibration, seed, backend, shots, expected, exact)
            )
    runner = CellRunner(
        jobs=resolve_jobs(jobs),
        policy=FailurePolicy(timeout=timeout, retries=retries, on_error=on_error),
        faults=faults if faults is not None else "env",
        label="benchmark sweep",
    )
    records = runner.run(payloads, _benchmark_cell)
    labels = [f"{label}|{benchmark}" for (label, _, benchmark, *_rest) in payloads]
    result.failures = failure_records(records, labels)
    for record in records:
        if not record.ok:
            continue
        label, benchmark, comparison = record.value
        if comparison is not None:
            result.comparisons[label][benchmark] = comparison
    return result
