"""NISQ benchmark algorithms: Grover search, Bernstein–Vazirani, QAOA and the
borrowed-bit incrementer (Table 1).

Grover and the incrementer are Toffoli-heavy; Bernstein–Vazirani and QAOA
contain no Toffolis and serve as the paper's controls showing Trios introduces
no overhead on such programs.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..exceptions import BenchmarkError
from .cnx import apply_cnx_dirty, apply_cnx_logancilla


# ----------------------------------------------------------------------
# Grover's algorithm
# ----------------------------------------------------------------------
def grovers(
    num_data_qubits: int = 6,
    marked: Optional[str] = None,
    iterations: Optional[int] = None,
) -> QuantumCircuit:
    """Grover search over ``num_data_qubits`` qubits using the log-ancilla CnX.

    The oracle marks a single computational basis state (all-ones by default)
    with a phase flip; the diffusion operator is the standard inversion about
    the mean.  Both need a multi-controlled Z over the data register, built
    from the clean-ancilla CnX subroutine (the paper notes grovers-9 uses
    ``cnx_logancilla``).

    ``num_data_qubits=6`` gives a 9-qubit circuit (6 data + 3 ancilla) with 6
    Grover iterations and 84 Toffolis — the Table 1 instance ``grovers-9``.
    """
    if num_data_qubits < 3:
        raise BenchmarkError("grovers needs at least 3 data qubits")
    marked = marked or "1" * num_data_qubits
    if len(marked) != num_data_qubits or set(marked) - {"0", "1"}:
        raise BenchmarkError(f"marked state {marked!r} must be a {num_data_qubits}-bit string")
    if iterations is None:
        iterations = max(1, int(math.floor(math.pi / 4 * math.sqrt(2**num_data_qubits))))
    # The multi-controlled Z over the data register has num_data_qubits - 1
    # controls, so the tree construction needs num_data_qubits - 3 ancillas.
    num_ancillas = max(0, num_data_qubits - 3)
    num_qubits = num_data_qubits + num_ancillas
    circuit = QuantumCircuit(num_qubits, f"grovers-{num_qubits}")
    data = list(range(num_data_qubits))
    ancillas = list(range(num_data_qubits, num_qubits))

    def multi_controlled_z(qubits: List[int]) -> None:
        *controls, target = qubits
        circuit.h(target)
        apply_cnx_logancilla(circuit, controls, ancillas, target)
        circuit.h(target)

    def oracle() -> None:
        # Phase-flip the marked state: X-conjugate the zero bits, then MCZ.
        flips = [data[i] for i, bit in enumerate(marked) if bit == "0"]
        for qubit in flips:
            circuit.x(qubit)
        multi_controlled_z(data)
        for qubit in flips:
            circuit.x(qubit)

    def diffusion() -> None:
        for qubit in data:
            circuit.h(qubit)
            circuit.x(qubit)
        multi_controlled_z(data)
        for qubit in data:
            circuit.x(qubit)
            circuit.h(qubit)

    for qubit in data:
        circuit.h(qubit)
    for _ in range(iterations):
        oracle()
        diffusion()
    return circuit


# ----------------------------------------------------------------------
# Bernstein–Vazirani
# ----------------------------------------------------------------------
def bernstein_vazirani(num_qubits: int = 20, secret: Optional[str] = None) -> QuantumCircuit:
    """Bernstein–Vazirani with an ``num_qubits - 1``-bit secret string.

    The paper assumes the all-ones secret, giving 19 CNOTs on 20 qubits and,
    crucially, zero Toffolis.  The last qubit is the phase-kickback ancilla.
    """
    if num_qubits < 2:
        raise BenchmarkError("bernstein_vazirani needs at least 2 qubits")
    num_data = num_qubits - 1
    secret = secret or "1" * num_data
    if len(secret) != num_data or set(secret) - {"0", "1"}:
        raise BenchmarkError(f"secret {secret!r} must be a {num_data}-bit string")
    circuit = QuantumCircuit(num_qubits, f"bv-{num_qubits}")
    ancilla = num_qubits - 1
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)
    for qubit, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(qubit, ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)
    circuit.h(ancilla)
    return circuit


# ----------------------------------------------------------------------
# QAOA for Max-Cut on a complete graph
# ----------------------------------------------------------------------
def qaoa_complete(
    num_qubits: int = 10,
    rounds: int = 1,
    gamma: float = 0.7,
    beta: float = 0.3,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """QAOA Max-Cut ansatz on the complete graph K_n (zero Toffolis).

    Every edge contributes one ZZ interaction per round (two CNOTs after
    decomposition); ``num_qubits=10`` and one round give the 90-CNOT Table 1
    instance ``qaoa_complete-10``.  When ``seed`` is given the angles of each
    round are drawn randomly, mimicking a parameterised ansatz instance.
    """
    if num_qubits < 2:
        raise BenchmarkError("qaoa needs at least 2 qubits")
    if rounds < 1:
        raise BenchmarkError("qaoa needs at least one round")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"qaoa_complete-{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _ in range(rounds):
        round_gamma = float(rng.uniform(0, math.pi)) if seed is not None else gamma
        round_beta = float(rng.uniform(0, math.pi)) if seed is not None else beta
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                circuit.rzz(2 * round_gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2 * round_beta, qubit)
    return circuit


# ----------------------------------------------------------------------
# Incrementer with one borrowed bit
# ----------------------------------------------------------------------
def incrementer_borrowedbit(num_bits: int = 4) -> QuantumCircuit:
    """Increment an ``num_bits`` register using one borrowed (dirty) qubit.

    The register occupies qubits ``0 .. num_bits-1`` (little endian) and the
    borrowed qubit is the last one; it may hold arbitrary data and is restored.
    The construction is the carry cascade — bit ``k`` flips when all lower bits
    are one — with each multi-controlled X realised through the dirty-ancilla
    V-chain borrowing the unused upper bits plus the borrowed qubit.

    ``num_bits=4`` gives the 5-qubit Table 1 instance
    ``incrementer_borrowedbit-5``.  (The paper's Gidney construction uses more
    Toffolis for the same function; see EXPERIMENTS.md for the comparison.)
    """
    if num_bits < 2:
        raise BenchmarkError("the incrementer needs at least 2 bits")
    num_qubits = num_bits + 1
    circuit = QuantumCircuit(num_qubits, f"incrementer_borrowedbit-{num_qubits}")
    borrowed = num_bits
    register = list(range(num_bits))
    # Highest bit first so lower bits still hold their pre-increment values.
    for target_bit in range(num_bits - 1, 0, -1):
        controls = register[:target_bit]
        # Dirty ancillas: the untouched higher bits plus the borrowed qubit.
        spare = register[target_bit + 1 :] + [borrowed]
        apply_cnx_dirty(circuit, controls, spare, register[target_bit])
    circuit.x(register[0])
    return circuit
