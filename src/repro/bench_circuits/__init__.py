"""Benchmark circuit generators reproducing Table 1 of the paper."""

from .cnx import (
    cnx_dirty,
    cnx_halfborrowed,
    cnx_logancilla,
    cnx_inplace,
    apply_cnx_dirty,
    apply_cnx_logancilla,
    apply_cnx_inplace,
)
from .adders import (
    cuccaro_adder,
    cuccaro_layout,
    takahashi_adder,
    takahashi_layout,
    qft_adder,
    qft_adder_layout,
    AdderLayout,
)
from .algorithms import (
    grovers,
    bernstein_vazirani,
    qaoa_complete,
    incrementer_borrowedbit,
)
from .suite import (
    PAPER_BENCHMARKS,
    PAPER_TABLE1,
    TOFFOLI_BENCHMARKS,
    TOFFOLI_FREE_BENCHMARKS,
    BenchmarkStats,
    get_benchmark,
    benchmark_statistics,
    all_benchmark_statistics,
)

__all__ = [
    "cnx_dirty",
    "cnx_halfborrowed",
    "cnx_logancilla",
    "cnx_inplace",
    "apply_cnx_dirty",
    "apply_cnx_logancilla",
    "apply_cnx_inplace",
    "cuccaro_adder",
    "cuccaro_layout",
    "takahashi_adder",
    "takahashi_layout",
    "qft_adder",
    "qft_adder_layout",
    "AdderLayout",
    "grovers",
    "bernstein_vazirani",
    "qaoa_complete",
    "incrementer_borrowedbit",
    "PAPER_BENCHMARKS",
    "PAPER_TABLE1",
    "TOFFOLI_BENCHMARKS",
    "TOFFOLI_FREE_BENCHMARKS",
    "BenchmarkStats",
    "get_benchmark",
    "benchmark_statistics",
    "all_benchmark_statistics",
]
