"""Many-controlled-NOT (CnX) constructions used by the Table 1 benchmarks.

Four variants, following the references cited by the paper:

* :func:`cnx_dirty` — the Barenco/Baker V-chain using ``k-2`` *dirty* (borrowed)
  ancillas; ``4(k-2)`` Toffolis.
* :func:`cnx_halfborrowed` — Gidney's construction where roughly half of the
  register is borrowed; same V-chain core, exposed with the paper's naming and
  sizing (``k`` controls on ``2k-1`` qubits).
* :func:`cnx_logancilla` — the clean-ancilla tree construction (log depth),
  ``2k-3`` Toffolis on ``2k-1`` qubits.
* :func:`cnx_inplace` — a no-ancilla construction.  The paper uses Gidney's
  iterated construction (54 Toffolis for 3 controls); we substitute Barenco's
  Lemma 7.5 recursion with controlled roots of X, which is exact, uses zero
  ancillas and keeps the benchmark a Toffoli-containing 4-qubit circuit (the
  substitution is recorded in DESIGN.md/EXPERIMENTS.md).

All builders return a fresh :class:`~repro.circuits.circuit.QuantumCircuit`
whose semantic is "flip the last qubit iff every control qubit is 1"; the
tests verify this truth table exhaustively for small sizes.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..circuits.circuit import QuantumCircuit
from ..exceptions import BenchmarkError


# ----------------------------------------------------------------------
# Dirty-ancilla V-chain
# ----------------------------------------------------------------------
def _vchain_sweep(
    circuit: QuantumCircuit, controls: Sequence[int], ancillas: Sequence[int], target: int
) -> None:
    """One sweep of the dirty-ancilla V-chain; applying it twice gives CnX."""
    k = len(controls)
    m = len(ancillas)
    circuit.ccx(controls[k - 1], ancillas[m - 1], target)
    for i in range(k - 2, 1, -1):
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1])
    circuit.ccx(controls[0], controls[1], ancillas[0])
    for i in range(2, k - 1):
        circuit.ccx(controls[i], ancillas[i - 2], ancillas[i - 1])


def apply_cnx_dirty(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    ancillas: Sequence[int],
    target: int,
) -> None:
    """Apply a CnX to an existing circuit using ``len(controls) - 2`` dirty ancillas."""
    controls = list(controls)
    ancillas = list(ancillas)
    k = len(controls)
    if k == 0:
        circuit.x(target)
        return
    if k == 1:
        circuit.cx(controls[0], target)
        return
    if k == 2:
        circuit.ccx(controls[0], controls[1], target)
        return
    if len(ancillas) < k - 2:
        raise BenchmarkError(
            f"CnX with {k} controls needs {k - 2} dirty ancillas, got {len(ancillas)}"
        )
    ancillas = ancillas[: k - 2]
    _vchain_sweep(circuit, controls, ancillas, target)
    _vchain_sweep(circuit, controls, ancillas, target)


def cnx_dirty(num_controls: int = 6) -> QuantumCircuit:
    """CnX with ``num_controls`` controls and ``num_controls - 2`` dirty ancillas.

    The Table 1 instance ``cnx_dirty-11`` is ``num_controls=6``: 6 controls,
    4 dirty ancillas and 1 target = 11 qubits, 16 Toffolis.
    """
    if num_controls < 3:
        raise BenchmarkError("cnx_dirty needs at least 3 controls")
    num_qubits = 2 * num_controls - 1
    circuit = QuantumCircuit(num_qubits, f"cnx_dirty-{num_qubits}")
    controls = list(range(num_controls))
    ancillas = list(range(num_controls, 2 * num_controls - 2))
    target = num_qubits - 1
    apply_cnx_dirty(circuit, controls, ancillas, target)
    return circuit


def cnx_halfborrowed(num_controls: int = 10) -> QuantumCircuit:
    """Gidney-style CnX where roughly half of the device register is borrowed.

    The Table 1 instance ``cnx_halfborrowed-19`` is ``num_controls=10``:
    10 controls, 8 borrowed ancillas, 1 target = 19 qubits, 32 Toffolis.  The
    borrowed qubits hold arbitrary data and are restored, which the tests check
    by initialising them to every basis value.
    """
    if num_controls < 3:
        raise BenchmarkError("cnx_halfborrowed needs at least 3 controls")
    num_qubits = 2 * num_controls - 1
    circuit = QuantumCircuit(num_qubits, f"cnx_halfborrowed-{num_qubits}")
    controls = list(range(num_controls))
    borrowed = list(range(num_controls, 2 * num_controls - 2))
    target = num_qubits - 1
    apply_cnx_dirty(circuit, controls, borrowed, target)
    return circuit


# ----------------------------------------------------------------------
# Clean-ancilla tree ("log ancilla" in the paper's naming)
# ----------------------------------------------------------------------
def apply_cnx_logancilla(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    ancillas: Sequence[int],
    target: int,
) -> None:
    """Apply a CnX using ``len(controls) - 2`` *clean* ancillas (tree of ANDs)."""
    controls = list(controls)
    ancillas = list(ancillas)
    k = len(controls)
    if k <= 2:
        apply_cnx_dirty(circuit, controls, [], target)
        return
    if len(ancillas) < k - 2:
        raise BenchmarkError(
            f"CnX with {k} controls needs {k - 2} clean ancillas, got {len(ancillas)}"
        )
    ancillas = ancillas[: k - 2]
    # Compute: repeatedly AND the first two live wires into a fresh ancilla.
    live: List[int] = list(controls)
    compute: List[tuple] = []
    for ancilla in ancillas:
        a, b = live.pop(0), live.pop(0)
        circuit.ccx(a, b, ancilla)
        compute.append((a, b, ancilla))
        live.append(ancilla)
    # Final AND of the last two live wires goes straight onto the target.
    circuit.ccx(live[0], live[1], target)
    # Uncompute the ancillas in reverse order.
    for a, b, ancilla in reversed(compute):
        circuit.ccx(a, b, ancilla)


def cnx_logancilla(num_controls: int = 10) -> QuantumCircuit:
    """CnX via a tree of Toffolis over clean ancillas (Barenco et al.).

    The Table 1 instance ``cnx_logancilla-19`` is ``num_controls=10``:
    10 controls, 8 clean ancillas, 1 target = 19 qubits, 17 Toffolis.
    """
    if num_controls < 3:
        raise BenchmarkError("cnx_logancilla needs at least 3 controls")
    num_qubits = 2 * num_controls - 1
    circuit = QuantumCircuit(num_qubits, f"cnx_logancilla-{num_qubits}")
    controls = list(range(num_controls))
    ancillas = list(range(num_controls, 2 * num_controls - 2))
    target = num_qubits - 1
    apply_cnx_logancilla(circuit, controls, ancillas, target)
    return circuit


# ----------------------------------------------------------------------
# No-ancilla ("in place") construction
# ----------------------------------------------------------------------
def _apply_controlled_root_x(
    circuit: QuantumCircuit, control: int, target: int, power_of_two: int, inverse: bool = False
) -> None:
    """Apply controlled-X^(1/2^power_of_two) as H · CP(±pi/2^power_of_two) · H."""
    angle = math.pi / (2**power_of_two)
    if inverse:
        angle = -angle
    circuit.h(target)
    circuit.cp(angle, control, target)
    circuit.h(target)


def _apply_mc_root_x(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    power_of_two: int,
) -> None:
    """Apply a multi-controlled X^(1/2^power_of_two) with no ancilla (recursive)."""
    controls = list(controls)
    if not controls:
        if power_of_two == 0:
            circuit.x(target)
        else:
            circuit.h(target)
            circuit.u1(math.pi / (2**power_of_two), target)
            circuit.h(target)
        return
    if len(controls) == 1:
        if power_of_two == 0:
            circuit.cx(controls[0], target)
        else:
            _apply_controlled_root_x(circuit, controls[0], target, power_of_two)
        return
    if len(controls) == 2 and power_of_two == 0:
        circuit.ccx(controls[0], controls[1], target)
        return
    # Barenco Lemma 7.5 recursion:
    #   Λ_k(U) = Λ_1(V)(c_k, t) · Λ_{k-1}(X)(c_1..c_{k-1} -> c_k) · Λ_1(V†)(c_k, t)
    #            · Λ_{k-1}(X)(c_1..c_{k-1} -> c_k) · Λ_{k-1}(V)(c_1..c_{k-1} -> t)
    # with V² = U, i.e. V = X^(1/2^(power_of_two+1)).
    *rest, last = controls
    _apply_controlled_root_x(circuit, last, target, power_of_two + 1)
    _apply_mc_root_x(circuit, rest, last, 0)
    _apply_controlled_root_x(circuit, last, target, power_of_two + 1, inverse=True)
    _apply_mc_root_x(circuit, rest, last, 0)
    _apply_mc_root_x(circuit, rest, target, power_of_two + 1)


def apply_cnx_inplace(
    circuit: QuantumCircuit, controls: Sequence[int], target: int
) -> None:
    """Apply a CnX using no ancilla qubits at all."""
    _apply_mc_root_x(circuit, list(controls), target, 0)


def cnx_inplace(num_controls: int = 3) -> QuantumCircuit:
    """CnX on exactly ``num_controls + 1`` qubits with no ancillas.

    The Table 1 instance ``cnx_inplace-4`` is ``num_controls=3``.  The paper
    uses Gidney's iterated construction (54 Toffolis); we substitute the
    Barenco no-ancilla recursion, which is exact but smaller (2 Toffolis plus
    controlled phase rotations for 3 controls) — see EXPERIMENTS.md.
    """
    if num_controls < 2:
        raise BenchmarkError("cnx_inplace needs at least 2 controls")
    num_qubits = num_controls + 1
    circuit = QuantumCircuit(num_qubits, f"cnx_inplace-{num_qubits}")
    apply_cnx_inplace(circuit, list(range(num_controls)), num_qubits - 1)
    return circuit
