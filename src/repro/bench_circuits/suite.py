"""The Table 1 benchmark suite.

:data:`PAPER_BENCHMARKS` maps the paper's benchmark labels to zero-argument
builders producing the same instances (qubit counts match Table 1 exactly;
Toffoli/CNOT counts are recorded next to the paper's numbers in
EXPERIMENTS.md).  :func:`benchmark_statistics` reproduces the Table 1 columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..circuits.circuit import QuantumCircuit
from ..exceptions import BenchmarkError
from ..passes.base import PropertySet
from ..passes.decompose import DecomposeToBasisPass
from .adders import cuccaro_adder, qft_adder, takahashi_adder
from .algorithms import bernstein_vazirani, grovers, incrementer_borrowedbit, qaoa_complete
from .cnx import cnx_dirty, cnx_halfborrowed, cnx_inplace, cnx_logancilla

#: Builders for every Table 1 benchmark, keyed by the paper's labels.
PAPER_BENCHMARKS: Dict[str, Callable[[], QuantumCircuit]] = {
    "cnx_dirty-11": lambda: cnx_dirty(6),
    "cnx_halfborrowed-19": lambda: cnx_halfborrowed(10),
    "cnx_logancilla-19": lambda: cnx_logancilla(10),
    "cnx_inplace-4": lambda: cnx_inplace(3),
    "cuccaro_adder-20": lambda: cuccaro_adder(9),
    "takahashi_adder-20": lambda: takahashi_adder(9),
    "incrementer_borrowedbit-5": lambda: incrementer_borrowedbit(4),
    "grovers-9": lambda: grovers(6),
    "qft_adder-16": lambda: qft_adder(8),
    "bv-20": lambda: bernstein_vazirani(20),
    "qaoa_complete-10": lambda: qaoa_complete(10),
}

#: Benchmarks that contain Toffoli gates (the ones where Trios helps).
TOFFOLI_BENCHMARKS = (
    "cnx_dirty-11",
    "cnx_halfborrowed-19",
    "cnx_logancilla-19",
    "cnx_inplace-4",
    "cuccaro_adder-20",
    "takahashi_adder-20",
    "incrementer_borrowedbit-5",
    "grovers-9",
)

#: Benchmarks without Toffolis (the paper's no-change controls).
TOFFOLI_FREE_BENCHMARKS = ("qft_adder-16", "bv-20", "qaoa_complete-10")

#: Qubit / Toffoli / CNOT numbers exactly as printed in Table 1 of the paper,
#: for side-by-side comparison in EXPERIMENTS.md.
PAPER_TABLE1 = {
    "cnx_dirty-11": {"qubits": 11, "toffolis": 16, "cnots": 128},
    "cnx_halfborrowed-19": {"qubits": 19, "toffolis": 32, "cnots": 256},
    "cnx_logancilla-19": {"qubits": 19, "toffolis": 17, "cnots": 136},
    "cnx_inplace-4": {"qubits": 4, "toffolis": 54, "cnots": 490},
    "cuccaro_adder-20": {"qubits": 20, "toffolis": 18, "cnots": 190},
    "takahashi_adder-20": {"qubits": 20, "toffolis": 18, "cnots": 188},
    "incrementer_borrowedbit-5": {"qubits": 5, "toffolis": 50, "cnots": 448},
    "grovers-9": {"qubits": 9, "toffolis": 84, "cnots": 672},
    "qft_adder-16": {"qubits": 16, "toffolis": 0, "cnots": 92},
    "bv-20": {"qubits": 20, "toffolis": 0, "cnots": 19},
    "qaoa_complete-10": {"qubits": 10, "toffolis": 0, "cnots": 90},
}


@dataclass(frozen=True)
class BenchmarkStats:
    """One row of Table 1 as measured from our generators."""

    name: str
    qubits: int
    toffolis: int
    cnots_after_8cnot_decomposition: int

    def as_row(self) -> Dict[str, int]:
        return {
            "qubits": self.qubits,
            "toffolis": self.toffolis,
            "cnots": self.cnots_after_8cnot_decomposition,
        }


def get_benchmark(name: str) -> QuantumCircuit:
    """Build one of the Table 1 benchmarks by its paper label."""
    try:
        return PAPER_BENCHMARKS[name]()
    except KeyError as exc:
        raise BenchmarkError(
            f"unknown benchmark {name!r}; expected one of {sorted(PAPER_BENCHMARKS)}"
        ) from exc


def benchmark_statistics(name: str) -> BenchmarkStats:
    """Reproduce the Table 1 columns for a benchmark.

    The CNOT column follows the paper's convention: the number of CNOT gates
    after decomposing with the 8-CNOT Toffoli, *before* any routing SWAPs.
    """
    circuit = get_benchmark(name)
    toffolis = circuit.count_ops().get("ccx", 0) + circuit.count_ops().get("ccz", 0)
    decomposed = DecomposeToBasisPass(toffoli_mode="8cnot").run(circuit, PropertySet())
    cnots = decomposed.two_qubit_gate_count(count_swap_as=3)
    return BenchmarkStats(
        name=name,
        qubits=circuit.num_qubits,
        toffolis=toffolis,
        cnots_after_8cnot_decomposition=cnots,
    )


def all_benchmark_statistics() -> List[BenchmarkStats]:
    """Table 1 statistics for every benchmark, in the paper's order."""
    return [benchmark_statistics(name) for name in PAPER_BENCHMARKS]
