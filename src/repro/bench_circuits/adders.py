"""Quantum adders: Cuccaro, Takahashi and the Draper QFT adder (Table 1).

All adders compute ``b := a + b`` over two ``n``-bit registers (little endian:
bit 0 is the least significant).  The ripple-carry adders (Cuccaro, Takahashi)
are Toffoli-heavy; the QFT adder contains no Toffolis at all and is included in
the paper precisely as a control showing Trios leaves such circuits unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..circuits.circuit import QuantumCircuit
from ..exceptions import BenchmarkError


@dataclass(frozen=True)
class AdderLayout:
    """Qubit indices for the registers of an adder circuit."""

    a: Tuple[int, ...]
    b: Tuple[int, ...]
    carry_in: int = -1
    carry_out: int = -1


def cuccaro_layout(num_bits: int) -> AdderLayout:
    """Register layout of :func:`cuccaro_adder`: [cin, a0..an-1, b0..bn-1, cout]."""
    a = tuple(range(1, num_bits + 1))
    b = tuple(range(num_bits + 1, 2 * num_bits + 1))
    return AdderLayout(a=a, b=b, carry_in=0, carry_out=2 * num_bits + 1)


def cuccaro_adder(num_bits: int = 9) -> QuantumCircuit:
    """The Cuccaro ripple-carry adder (CDKM, quant-ph/0410184).

    Uses one carry-in ancilla and one carry-out qubit, so ``2*num_bits + 2``
    qubits in total; ``num_bits=9`` gives the 20-qubit, 18-Toffoli instance of
    Table 1.  Computes ``b := a + b`` with the carry written to ``cout``.
    """
    if num_bits < 1:
        raise BenchmarkError("the adder needs at least one bit")
    layout = cuccaro_layout(num_bits)
    circuit = QuantumCircuit(2 * num_bits + 2, f"cuccaro_adder-{2 * num_bits + 2}")
    a, b = layout.a, layout.b

    def maj(x: int, y: int, z: int) -> None:
        circuit.cx(z, y)
        circuit.cx(z, x)
        circuit.ccx(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circuit.ccx(x, y, z)
        circuit.cx(z, x)
        circuit.cx(x, y)

    chain = [layout.carry_in] + [a[i] for i in range(num_bits)]
    for i in range(num_bits):
        maj(chain[i], b[i], a[i])
    circuit.cx(a[num_bits - 1], layout.carry_out)
    for i in reversed(range(num_bits)):
        uma(chain[i], b[i], a[i])
    return circuit


def takahashi_layout(num_bits: int) -> AdderLayout:
    """Register layout of :func:`takahashi_adder`: [a0..an-1, b0..bn-1, cout, idle]."""
    a = tuple(range(num_bits))
    b = tuple(range(num_bits, 2 * num_bits))
    return AdderLayout(a=a, b=b, carry_in=-1, carry_out=2 * num_bits)


def takahashi_adder(num_bits: int = 9, pad_to: int = 20) -> QuantumCircuit:
    """The Takahashi–Tani–Kunihiro adder (arXiv:0910.2530), no ancilla.

    Computes ``b := a + b`` in place over ``2*num_bits`` qubits plus a carry-out
    qubit.  ``num_bits=9`` with ``pad_to=20`` reproduces Table 1's 20-qubit,
    18-Toffoli ``takahashi_adder-20`` instance (one qubit is idle, as in the
    original benchmark suite which always targets the full 20-qubit device).
    """
    if num_bits < 2:
        raise BenchmarkError("the Takahashi adder needs at least two bits")
    num_qubits = max(2 * num_bits + 1, pad_to)
    circuit = QuantumCircuit(num_qubits, f"takahashi_adder-{num_qubits}")
    layout = takahashi_layout(num_bits)
    a, b, z = list(layout.a), list(layout.b), layout.carry_out
    n = num_bits
    # Step 1: CNOTs a_i -> b_i for i >= 1.
    for i in range(1, n):
        circuit.cx(a[i], b[i])
    # Step 2: carry ladder preparation a_i -> a_{i+1} (top uses the carry-out).
    circuit.cx(a[n - 1], z)
    for i in range(n - 2, 0, -1):
        circuit.cx(a[i], a[i + 1])
    # Step 3: forward Toffoli ladder computing carries into a.
    for i in range(n - 1):
        circuit.ccx(a[i], b[i], a[i + 1])
    circuit.ccx(a[n - 1], b[n - 1], z)
    # Step 4: backward ladder writing sums into b and uncomputing carries.
    for i in range(n - 1, 0, -1):
        circuit.cx(a[i], b[i])
        circuit.ccx(a[i - 1], b[i - 1], a[i])
    # Step 5: undo the carry ladder preparation.
    for i in range(1, n - 1):
        circuit.cx(a[i], a[i + 1])
    # Step 6: final CNOTs to complete the sum bits.
    for i in range(1, n):
        circuit.cx(a[i], b[i])
    circuit.cx(a[0], b[0])
    return circuit


def qft_adder_layout(num_bits: int) -> AdderLayout:
    """Register layout of :func:`qft_adder`: [a0..an-1, b0..bn-1]."""
    return AdderLayout(
        a=tuple(range(num_bits)), b=tuple(range(num_bits, 2 * num_bits))
    )


def _qft(circuit: QuantumCircuit, qubits: List[int]) -> None:
    """Quantum Fourier transform (without the final swap reordering)."""
    n = len(qubits)
    for i in range(n - 1, -1, -1):
        circuit.h(qubits[i])
        for j in range(i - 1, -1, -1):
            circuit.cp(math.pi / (2 ** (i - j)), qubits[j], qubits[i])


def _inverse_qft(circuit: QuantumCircuit, qubits: List[int]) -> None:
    n = len(qubits)
    for i in range(n):
        for j in range(i):
            circuit.cp(-math.pi / (2 ** (i - j)), qubits[j], qubits[i])
        circuit.h(qubits[i])


def qft_adder(num_bits: int = 8) -> QuantumCircuit:
    """The Draper transform adder (Ruiz-Perez & Garcia-Escartin variant).

    Computes ``b := a + b`` by rotating ``b`` into the Fourier basis, applying
    controlled phases from ``a`` and rotating back.  Contains zero Toffoli
    gates; ``num_bits=8`` gives the 16-qubit Table 1 instance ``qft_adder-16``.
    """
    if num_bits < 1:
        raise BenchmarkError("the adder needs at least one bit")
    layout = qft_adder_layout(num_bits)
    circuit = QuantumCircuit(2 * num_bits, f"qft_adder-{2 * num_bits}")
    a, b = list(layout.a), list(layout.b)
    _qft(circuit, b)
    # Phase kickback: bit a_j adds 2^j, i.e. rotates Fourier mode b_i by
    # pi / 2^(i-j) for every i >= j.
    for i in range(num_bits - 1, -1, -1):
        for j in range(i, -1, -1):
            circuit.cp(math.pi / (2 ** (i - j)), a[j], b[i])
    _inverse_qft(circuit, b)
    return circuit
