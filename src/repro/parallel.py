"""Deprecated shim — the process-pool fan-out moved to :mod:`repro.runtime`.

The bare :func:`run_experiment_cells` helper grew into the fault-tolerant
execution runtime (:class:`repro.runtime.CellRunner`): per-cell timeouts,
bounded deterministic retries, worker-crash survival with pool respawn,
serial-fallback degradation and structured :class:`repro.runtime.CellResult`
records.  This module re-exports the legacy entry point so historical imports
keep working; new code should import from :mod:`repro.runtime`.
"""

from __future__ import annotations

import warnings

from .runtime import run_experiment_cells

warnings.warn(
    "repro.parallel is deprecated; import run_experiment_cells from "
    "repro.runtime (or use repro.runtime.CellRunner for structured results, "
    "retries and timeouts)",
    DeprecationWarning,
    stacklevel=2,  # attribute the warning to the importing module
)

__all__ = ["run_experiment_cells"]
