"""The shared process-pool fan-out used by sweeps and the level-3 seed search.

One deliberately small helper: map a worker over payload tuples, either
serially or across a ``ProcessPoolExecutor``, with results returned in payload
order.  Every payload carries its own seed, so a parallel run is bit-identical
to the serial one — the invariant the experiment sweeps (PR 2's ``--jobs``)
established and that ``transpile(..., optimization_level=3, jobs=N)`` now
reuses for its multi-seed layout/routing search.

Lives outside both :mod:`repro.experiments` and :mod:`repro.compiler` so the
compiler can fan out without importing the experiment layer.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence


def run_experiment_cells(payloads: Sequence[tuple], worker: Callable, jobs: int) -> List:
    """Run experiment cells serially or over a process pool, preserving order.

    Results come back in payload order regardless of completion order, and
    every cell derives its randomness from the seed carried in its own
    payload, so the parallel sweep is deterministic and identical to the
    serial one.
    """
    if jobs <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(worker, payloads))
