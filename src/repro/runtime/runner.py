"""The fault-tolerant cell runner behind every process-pool fan-out.

:class:`CellRunner` executes payload cells — the (topology, benchmark) cells
of the experiment sweeps, the candidate seeds of the level-3 search — under an
explicit :class:`FailurePolicy` and returns structured :class:`CellResult`
records instead of raising on the first fault:

* **Retries with deterministic backoff.**  A failing cell is retried up to
  ``retries`` times; the delay before each retry is seeded exponential
  backoff with jitter (:meth:`FailurePolicy.backoff_delay`), deterministic
  per (seed, cell, attempt).  Every cell derives its randomness from the seed
  carried in its own payload, so a cell that succeeds on attempt 3 is
  byte-identical to one that succeeds on attempt 1 — the bit-identical-to-
  serial invariant of the sweeps survives retries by construction.
* **Per-cell wall-clock timeouts.**  In pool mode at most ``jobs`` cells are
  in flight at once (one per worker), so submission time is start time; a
  cell running past ``timeout`` has its (hung) pool killed and respawned,
  the other in-flight cells requeued without penalty, and is itself retried
  or recorded as ``"timed_out"``.
* **Worker-crash survival.**  A died worker (segfault, OOM kill,
  ``os._exit``) breaks the whole ``ProcessPoolExecutor``; the runner kills
  and respawns the pool, gives each implicated in-flight cell a crash strike
  (the culprit exhausts its retries and is recorded as ``"crashed"``;
  innocents requeue and succeed), and requeues only unfinished cells.
* **Graceful degradation.**  Under ``on_error="serial"`` a pool that keeps
  breaking (more than ``max_pool_respawns`` times) is abandoned with a
  warning and the remaining cells run serially in the driver process.
* **Circuit breaker.**  ``max_failures`` bounds the number of permanently
  failed cells before the run aborts with :class:`ExecutionError`;
  ``on_error="fail"`` aborts on the first one, re-raising the worker's
  original exception when there is one.
* **Prompt Ctrl-C.**  ``KeyboardInterrupt`` cancels pending futures,
  terminates the pool (``shutdown(cancel_futures=True)``), notes how many
  cells had finished, and re-raises.

The deterministic fault-injection layer (:mod:`repro.runtime.faults`) hooks
into the same wrapper every worker runs, so all of the above is provable in
tests without real segfaults.
"""

from __future__ import annotations

import heapq
import os
import random
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from traceback import format_exception
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..exceptions import ExecutionError
from .faults import FaultPlan, is_corrupted

#: Sentinel for "resolve the fault plan from the REPRO_FAULTS environment".
ENV_FAULTS = "env"


def resolve_jobs(jobs: int) -> int:
    """Resolve a ``jobs`` request: ``0`` means all CPUs, negatives are errors."""
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ExecutionError(f"jobs must be >= 0 (0 = all CPUs), got {jobs}")
    return jobs


@dataclass(frozen=True)
class ExceptionRecord:
    """A pickled-safe snapshot of an exception raised in a worker.

    Exceptions themselves may hold unpicklable state and always hold a
    traceback that dies with the worker; the record carries the type name,
    message and formatted traceback as plain strings so it survives the pool
    boundary and serialises into failure reports.
    """

    type_name: str
    message: str
    traceback_text: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ExceptionRecord":
        return cls(
            type_name=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(format_exception(type(exc), exc, exc.__traceback__)),
        )

    @classmethod
    def from_message(cls, type_name: str, message: str) -> "ExceptionRecord":
        return cls(type_name=type_name, message=message)

    def __str__(self) -> str:
        return f"{self.type_name}: {self.message}"


#: CellResult.status values.
CELL_STATUSES = ("ok", "failed", "timed_out", "crashed")


@dataclass
class CellResult:
    """The structured outcome of one payload cell.

    ``status`` is ``"ok"`` (``value`` holds the worker's return), ``"failed"``
    (the worker raised, or returned a corrupted payload), ``"timed_out"``
    (exceeded the policy's wall-clock timeout on its final attempt) or
    ``"crashed"`` (its worker process died).  ``attempts`` counts tries
    actually made, so ``retried`` is true whenever recovery machinery ran.
    """

    index: int
    status: str
    value: Any = None
    attempts: int = 1
    duration: float = 0.0
    error: Optional[ExceptionRecord] = None
    #: Spans the worker process produced for the final (successful) attempt,
    #: already adopted into the driver's trace and re-parented under this
    #: cell's attempt span.  Empty when tracing is off or in serial mode
    #: (serial cells record straight into the driver trace).
    spans: List[obs.Span] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass(frozen=True)
class CellFailure:
    """A labelled permanent failure, as surfaced in experiment reports."""

    label: str
    status: str
    attempts: int
    error: str


def failure_records(
    results: Sequence[CellResult], labels: Sequence[str]
) -> List[CellFailure]:
    """The failed cells of a run as labelled report records."""
    return [
        CellFailure(
            label=labels[result.index],
            status=result.status,
            attempts=result.attempts,
            error=str(result.error) if result.error else "",
        )
        for result in results
        if not result.ok
    ]


@dataclass(frozen=True)
class FailurePolicy:
    """The knobs governing how a :class:`CellRunner` absorbs faults.

    Args:
        timeout: Per-cell wall-clock seconds before an in-flight cell is
            declared hung (pool mode only; serial execution cannot preempt a
            running cell).  ``None`` disables the timeout.
        retries: Extra attempts after the first failed one (so a cell runs at
            most ``retries + 1`` times).
        backoff_base: First retry delay in seconds; doubles per attempt.
        backoff_cap: Upper bound on the undithered delay.
        backoff_jitter: Fractional jitter added on top (``0.1`` = up to +10%).
        backoff_seed: Seed of the deterministic jitter stream.
        max_failures: Circuit breaker — abort the whole run with
            :class:`ExecutionError` once more than this many cells have
            permanently failed (``None`` = never).
        max_pool_respawns: Pool breaks tolerated before ``on_error="serial"``
            abandons the pool for in-process serial execution.
        on_error: What a *permanent* cell failure does — ``"fail"`` aborts
            the run immediately (re-raising the worker's exception when
            available), ``"skip"`` records it and carries on, ``"serial"``
            is ``"skip"`` plus the serial-fallback degradation above.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.1
    backoff_seed: int = 0
    max_failures: Optional[int] = None
    max_pool_respawns: int = 2
    on_error: str = "skip"

    def __post_init__(self) -> None:
        if self.on_error not in ("fail", "skip", "serial"):
            raise ExecutionError(
                f"on_error must be 'fail', 'skip' or 'serial', got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ExecutionError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ExecutionError(f"timeout must be positive, got {self.timeout}")
        if self.max_failures is not None and self.max_failures < 0:
            raise ExecutionError(
                f"max_failures must be >= 0, got {self.max_failures}"
            )
        if self.max_pool_respawns < 0:
            raise ExecutionError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )

    def backoff_delay(self, index: int, attempt: int) -> float:
        """Deterministic seeded exponential backoff + jitter before a retry.

        ``attempt`` is the attempt that just failed (1-based); the jitter
        stream depends only on (seed, cell, attempt), so two identical runs
        sleep identically.
        """
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        rng = random.Random(f"{self.backoff_seed}:{index}:{attempt}")
        return base * (1.0 + self.backoff_jitter * rng.random())


@dataclass
class _TracedValue:
    """Pool-boundary envelope: the worker's return plus captured telemetry."""

    value: Any
    telemetry: obs.WorkerTelemetry


def _unwrap_traced(value: Any) -> Tuple[Any, Optional[obs.WorkerTelemetry]]:
    if isinstance(value, _TracedValue):
        return value.value, value.telemetry
    return value, None


def _invoke(
    worker: Callable[[Any], Any],
    payload: Any,
    index: int,
    attempt: int,
    plan: Optional[FaultPlan],
    trace_pid: Optional[int] = None,
) -> Any:
    """The wrapper every cell attempt runs (in a worker or in-process).

    This is where the fault-injection layer hooks in: the plan may crash or
    hang the worker process, raise a transient error, or corrupt the return
    value, before/after the real ``worker(payload)`` call.

    ``trace_pid`` is the driver's pid when the driver is tracing: an attempt
    running in a *different* process then captures every span (and metric
    increment) the cell produces and ships it back inside a
    :class:`_TracedValue` envelope, which the pool loop unwraps and adopts
    into the driver's trace.  In-process attempts record straight into the
    driver's tracer, so no envelope is needed.
    """
    if plan is not None:
        plan.apply(index, attempt)
    if trace_pid is not None and os.getpid() != trace_pid:
        with obs.capture() as telemetry:
            value = worker(payload)
        if plan is not None:
            value = plan.corrupt(index, attempt, value)
        return _TracedValue(value, telemetry)
    value = worker(payload)
    if plan is not None:
        value = plan.corrupt(index, attempt, value)
    return value


class CellRunner:
    """Execute payload cells under a :class:`FailurePolicy`; see module docs.

    Args:
        jobs: Worker processes; ``1`` runs serially in-process, ``0`` means
            all CPUs (:func:`resolve_jobs`).
        policy: The failure policy; defaults to ``FailurePolicy()``.
        faults: A :class:`FaultPlan` to inject, ``None`` for none, or the
            default ``"env"`` to honour the ``REPRO_FAULTS`` variable.
        result_check: Optional validator; a cell whose value fails it is
            treated like a raised failure (corrupted payloads from the fault
            plan are always rejected).
        label: Name used in warnings and error messages.
    """

    def __init__(
        self,
        jobs: int = 1,
        policy: Optional[FailurePolicy] = None,
        faults: Any = ENV_FAULTS,
        result_check: Optional[Callable[[Any], bool]] = None,
        label: str = "cells",
    ):
        self.jobs = jobs
        self.policy = policy or FailurePolicy()
        self._faults = faults
        self.result_check = result_check
        self.label = label

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, payloads: Sequence[Any], worker: Callable[[Any], Any]) -> List[CellResult]:
        """Run every payload; returns one :class:`CellResult` per payload, in order."""
        n = len(payloads)
        if n == 0:
            return []
        jobs = resolve_jobs(self.jobs)
        plan = self._resolve_faults()
        results: List[Optional[CellResult]] = [None] * n
        failures: List[CellResult] = []
        obs.maybe_enable_from_env()
        with obs.span(
            "cell_sweep", category="runtime", label=self.label, cells=n, jobs=jobs
        ):
            if jobs <= 1 or n == 1:
                for index in range(n):
                    result = self._run_cell_serial(
                        index, payloads[index], worker, plan, 0
                    )
                    results[index] = result
                    if not result.ok:
                        self._permanent_failure(
                            result, getattr(result, "_exception", None), failures
                        )
            else:
                self._run_pool(payloads, worker, jobs, plan, results, failures)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _resolve_faults(self) -> Optional[FaultPlan]:
        if self._faults == ENV_FAULTS:
            return FaultPlan.from_env()
        return self._faults

    def _value_failure(self, value: Any) -> Optional[ExceptionRecord]:
        """A record when ``value`` is corrupt/invalid, else ``None``."""
        if is_corrupted(value):
            return ExceptionRecord.from_message(
                "CorruptedResult", f"worker returned a corrupted payload: {value!r}"
            )
        if self.result_check is not None and not self.result_check(value):
            return ExceptionRecord.from_message(
                "InvalidResult", f"worker result failed validation: {value!r}"
            )
        return None

    def _permanent_failure(
        self,
        result: CellResult,
        exc: Optional[BaseException],
        failures: List[CellResult],
    ) -> None:
        """Apply the on_error / circuit-breaker policy to a permanent failure."""
        failures.append(result)
        if self.policy.on_error == "fail":
            if exc is not None:
                raise exc
            raise ExecutionError(
                f"{self.label}: cell {result.index} {result.status} after "
                f"{result.attempts} attempt(s): {result.error}"
            )
        if (
            self.policy.max_failures is not None
            and len(failures) > self.policy.max_failures
        ):
            summary = "; ".join(
                f"cell {r.index} {r.status} ({r.error})" for r in failures[-3:]
            )
            raise ExecutionError(
                f"{self.label}: circuit breaker tripped — "
                f"{len(failures)} cells permanently failed "
                f"(max_failures={self.policy.max_failures}): {summary}"
            )

    def _run_cell_serial(
        self,
        index: int,
        payload: Any,
        worker: Callable[[Any], Any],
        plan: Optional[FaultPlan],
        attempts_used: int,
    ) -> CellResult:
        """Run one cell in-process, honouring the retry budget.

        ``attempts_used`` carries over attempts already consumed in pool mode
        (the serial-fallback path); timeouts are not enforced in-process.
        Injected crash/hang faults are inert here by design — a worker death
        cannot take the driver process with it, and neither may its simulation.
        """
        attempt = attempts_used
        last: Optional[ExceptionRecord] = None
        exc_seen: Optional[BaseException] = None
        while True:
            attempt += 1
            start = time.monotonic()
            cell_span = obs.span(
                "cell",
                category="runtime.cell",
                label=self.label,
                index=index,
                attempt=attempt,
            )
            with cell_span:
                record: Optional[ExceptionRecord] = None
                value: Any = None
                try:
                    value = _invoke(worker, payload, index, attempt, plan)
                    record = self._value_failure(value)
                    exc_seen = None
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    record, exc_seen = ExceptionRecord.from_exception(exc), exc
                cell_span.add_attrs(status="ok" if record is None else "failed")
            if record is None:
                return CellResult(
                    index=index,
                    status="ok",
                    value=value,
                    attempts=attempt,
                    duration=time.monotonic() - start,
                )
            last = record
            if attempt >= self.policy.retries + 1:
                result = CellResult(
                    index=index,
                    status="failed",
                    attempts=attempt,
                    duration=time.monotonic() - start,
                    error=last,
                )
                result._exception = exc_seen  # type: ignore[attr-defined]
                return result
            delay = self.policy.backoff_delay(index, attempt)
            with obs.span(
                "backoff",
                category="runtime.backoff",
                label=self.label,
                index=index,
                attempt=attempt,
                delay=delay,
            ):
                time.sleep(delay)

    # ------------------------------------------------------------------
    # The pool loop
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        payloads: Sequence[Any],
        worker: Callable[[Any], Any],
        jobs: int,
        plan: Optional[FaultPlan],
        results: List[Optional[CellResult]],
        failures: List[CellResult],
    ) -> None:
        n = len(payloads)
        policy = self.policy
        max_workers = min(jobs, n)
        pending: deque = deque(range(n))
        delayed: List[Tuple[float, int]] = []  # (ready_time, index) heap
        attempts = [0] * n
        # future -> (index, submitted monotonic, submitted trace timestamp)
        in_flight: Dict[Any, Tuple[int, float, float]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        pool_breaks = 0
        interrupted = False
        trace_pid = os.getpid() if obs.is_enabled() else None

        def record_attempt(
            index: int,
            status: str,
            submitted_ts: float,
            telemetry: Optional[obs.WorkerTelemetry] = None,
        ) -> List[obs.Span]:
            """Record one completed pool attempt as a driver-side span.

            The span covers submit-to-completion (at most ``jobs`` cells are
            in flight, so submission is start time), and any telemetry the
            worker shipped back is adopted into the driver trace re-parented
            under it.  Returns the adopted worker spans.
            """
            if trace_pid is None:
                return []
            attempt_span = obs.record_span(
                "cell",
                category="runtime.cell",
                start=submitted_ts,
                duration=obs.now() - submitted_ts,
                attrs={
                    "label": self.label,
                    "index": index,
                    "attempt": attempts[index],
                    "status": status,
                },
            )
            if telemetry is None or attempt_span is None:
                return []
            adopted = obs.adopt_spans(telemetry.spans, attempt_span.span_id)
            obs.merge_metrics(telemetry.metrics)
            return adopted

        def finish(result: CellResult, exc: Optional[BaseException] = None) -> None:
            results[result.index] = result
            if not result.ok:
                self._permanent_failure(result, exc, failures)

        def retry_or_finish(
            index: int,
            status: str,
            record: ExceptionRecord,
            duration: float,
            exc: Optional[BaseException] = None,
        ) -> None:
            if attempts[index] <= policy.retries:
                delay = policy.backoff_delay(index, attempts[index])
                heapq.heappush(delayed, (time.monotonic() + delay, index))
                if trace_pid is not None:
                    # Pool retries wait on the scheduler heap, not in a
                    # sleep; the span covers the scheduled delay.
                    obs.record_span(
                        "backoff",
                        category="runtime.backoff",
                        start=obs.now(),
                        duration=delay,
                        attrs={
                            "label": self.label,
                            "index": index,
                            "attempt": attempts[index],
                            "delay": delay,
                        },
                    )
                return
            finish(
                CellResult(
                    index=index,
                    status=status,
                    attempts=attempts[index],
                    duration=duration,
                    error=record,
                ),
                exc,
            )

        def unfinished() -> List[int]:
            return [i for i in range(n) if results[i] is None]

        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
            while any(result is None for result in results):
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    pending.append(heapq.heappop(delayed)[1])
                while pending and len(in_flight) < max_workers:
                    index = pending.popleft()
                    attempts[index] += 1
                    future = pool.submit(
                        _invoke,
                        worker,
                        payloads[index],
                        index,
                        attempts[index],
                        plan,
                        trace_pid,
                    )
                    in_flight[future] = (index, time.monotonic(), obs.now())
                if not in_flight:
                    if delayed:
                        time.sleep(max(0.0, min(delayed[0][0] - time.monotonic(), 0.05)))
                        continue
                    break  # defensive: nothing queued but cells unfinished
                done, _ = wait(
                    set(in_flight), timeout=self._poll_interval(delayed),
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                broken = False
                for future in done:
                    index, submitted, submitted_ts = in_flight.pop(future)
                    try:
                        value = future.result()
                    except BrokenExecutor:
                        # A worker died; every in-flight cell is implicated.
                        broken = True
                        in_flight[future] = (index, submitted, submitted_ts)
                        continue
                    except Exception as exc:
                        # A raising worker loses its telemetry envelope (the
                        # exception is the only thing that crosses the pool).
                        record_attempt(index, "failed", submitted_ts)
                        retry_or_finish(
                            index, "failed", ExceptionRecord.from_exception(exc),
                            now - submitted, exc,
                        )
                        continue
                    value, telemetry = _unwrap_traced(value)
                    record = self._value_failure(value)
                    if record is not None:
                        record_attempt(index, "failed", submitted_ts, telemetry)
                        retry_or_finish(index, "failed", record, now - submitted)
                        continue
                    finish(
                        CellResult(
                            index=index,
                            status="ok",
                            value=value,
                            attempts=attempts[index],
                            duration=now - submitted,
                            spans=record_attempt(index, "ok", submitted_ts, telemetry),
                        )
                    )
                if broken:
                    pool_breaks += 1
                    respawn_start = obs.now()
                    crash_record = ExceptionRecord.from_message(
                        "WorkerCrash",
                        "worker process died (segfault/OOM/killed); "
                        "the process pool was respawned",
                    )
                    for future, (index, submitted, submitted_ts) in list(
                        in_flight.items()
                    ):
                        record_attempt(index, "crashed", submitted_ts)
                        retry_or_finish(index, "crashed", crash_record, now - submitted)
                    in_flight.clear()
                    self._stop_pool(pool, hard=True)
                    pool = None
                    if (
                        policy.on_error == "serial"
                        and pool_breaks > policy.max_pool_respawns
                    ):
                        remaining = unfinished()
                        warnings.warn(
                            f"{self.label}: process pool broke {pool_breaks} "
                            f"times; degrading to serial execution for the "
                            f"{len(remaining)} remaining cell(s)",
                            RuntimeWarning, stacklevel=3,
                        )
                        # Drain the queues; the serial loop owns the rest.
                        pending.clear()
                        delayed.clear()
                        for index in remaining:
                            finish_result = self._run_cell_serial(
                                index, payloads[index], worker, plan, attempts[index]
                            )
                            finish(
                                finish_result,
                                getattr(finish_result, "_exception", None),
                            )
                        break
                    if pool_breaks == 1:
                        warnings.warn(
                            f"{self.label}: a worker process died; respawning "
                            f"the pool and requeueing unfinished cells",
                            RuntimeWarning, stacklevel=3,
                        )
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                    if trace_pid is not None:
                        obs.record_span(
                            "pool_respawn",
                            category="runtime.pool",
                            start=respawn_start,
                            duration=obs.now() - respawn_start,
                            attrs={"label": self.label, "reason": "worker_crash"},
                        )
                    continue
                if policy.timeout is not None:
                    expired = [
                        (future, index, submitted, submitted_ts)
                        for future, (index, submitted, submitted_ts) in in_flight.items()
                        if now - submitted > policy.timeout
                    ]
                    if expired:
                        timeout_record = ExceptionRecord.from_message(
                            "CellTimeout",
                            f"cell exceeded the {policy.timeout:.3g}s wall-clock "
                            f"timeout; its worker was killed",
                        )
                        expired_ids = {index for _, index, _, _ in expired}
                        # The hung workers cannot be cancelled individually:
                        # kill the pool, requeue the innocent in-flight cells
                        # without consuming one of their attempts.
                        for future, (index, submitted, submitted_ts) in list(
                            in_flight.items()
                        ):
                            if index not in expired_ids:
                                attempts[index] -= 1
                                pending.append(index)
                        for _, index, submitted, submitted_ts in expired:
                            record_attempt(index, "timed_out", submitted_ts)
                            retry_or_finish(
                                index, "timed_out", timeout_record, now - submitted
                            )
                        in_flight.clear()
                        respawn_start = obs.now()
                        self._stop_pool(pool, hard=True)
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                        if trace_pid is not None:
                            obs.record_span(
                                "pool_respawn",
                                category="runtime.pool",
                                start=respawn_start,
                                duration=obs.now() - respawn_start,
                                attrs={"label": self.label, "reason": "timeout"},
                            )
        except KeyboardInterrupt:
            interrupted = True
            completed = sum(result is not None for result in results)
            warnings.warn(
                f"{self.label}: interrupted — cancelling pending cells "
                f"({completed}/{n} finished; partial results preserved)",
                RuntimeWarning, stacklevel=2,
            )
            raise
        except BaseException:
            interrupted = True  # hard teardown for breaker/fail aborts too
            raise
        finally:
            self._stop_pool(pool, hard=interrupted or bool(in_flight))

    @staticmethod
    def _poll_interval(delayed: List[Tuple[float, int]]) -> Optional[float]:
        """How long ``wait()`` may block before the loop must look around."""
        intervals = [0.25]  # always wake up to notice hung workers promptly
        if delayed:
            intervals.append(max(0.0, delayed[0][0] - time.monotonic()))
        return min(intervals)

    @staticmethod
    def _stop_pool(pool: Optional[ProcessPoolExecutor], hard: bool) -> None:
        """Shut a pool down; ``hard`` terminates workers and cancels futures."""
        if pool is None:
            return
        if hard:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                if process.is_alive():
                    process.terminate()
        pool.shutdown(wait=True, cancel_futures=hard)


def run_experiment_cells(payloads: Sequence[tuple], worker: Callable, jobs: int) -> List:
    """Map a worker over payloads, serially or across a pool (legacy API).

    The historical ``repro.parallel`` entry point: returns plain values in
    payload order and propagates the first worker exception (``on_error=
    "fail"``, no retries) — but now survives worker crashes long enough to
    attribute them, via :class:`CellRunner`.  New callers should use
    :class:`CellRunner` directly and get structured :class:`CellResult`
    records, retries and timeouts.
    """
    runner = CellRunner(
        jobs=jobs,
        policy=FailurePolicy(retries=0, on_error="fail"),
        label="run_experiment_cells",
    )
    return [result.value for result in runner.run(payloads, worker)]
