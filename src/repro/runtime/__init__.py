"""repro.runtime: the fault-tolerant execution substrate for every fan-out.

Module map:

* :mod:`repro.runtime.runner` — :class:`CellRunner` executes payload cells
  under a :class:`FailurePolicy` (per-cell timeouts, bounded retries with
  deterministic seeded backoff + jitter, max-failure circuit breaker, pool
  respawn on worker crash, serial-fallback degradation, prompt Ctrl-C) and
  returns structured :class:`CellResult` records; :func:`resolve_jobs` maps
  ``jobs=0`` to all CPUs; :func:`run_experiment_cells` is the historical
  raise-on-first-fault API, kept for legacy callers.
* :mod:`repro.runtime.faults` — the deterministic fault-injection layer:
  a :class:`FaultPlan` (arg- or ``REPRO_FAULTS`` env-activated) makes
  designated worker cells crash, hang, raise transiently, or return
  corrupted payloads on chosen attempts, reproducibly.

The experiment sweeps (``repro.experiments``), the level-3 seed search
(``repro.compiler.pipeline``) and the CLI all fan out through this package;
a faulted cell becomes an explicit failure record instead of a crashed sweep,
and every surviving cell is bit-identical to a fault-free serial run because
each payload carries its own seed.
"""

from .faults import (
    FAULT_KINDS,
    FAULTS_ENV_VAR,
    Corrupted,
    Fault,
    FaultPlan,
    is_corrupted,
)
from .runner import (
    CELL_STATUSES,
    CellFailure,
    CellResult,
    CellRunner,
    ExceptionRecord,
    FailurePolicy,
    failure_records,
    resolve_jobs,
    run_experiment_cells,
)

__all__ = [
    "CELL_STATUSES",
    "CellFailure",
    "CellResult",
    "CellRunner",
    "Corrupted",
    "ExceptionRecord",
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "FailurePolicy",
    "Fault",
    "FaultPlan",
    "failure_records",
    "is_corrupted",
    "resolve_jobs",
    "run_experiment_cells",
]
