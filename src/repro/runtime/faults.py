"""Deterministic fault injection for the execution runtime.

A :class:`FaultPlan` designates payload cells (by their position in the
submitted payload sequence) that misbehave on chosen attempts: crash the
worker process, hang past the runner's timeout, raise a transient exception,
or return a corrupted payload.  Plans are plain data — seeded, picklable and
reproducible — so the same plan injected twice produces the same sequence of
faults, which is what lets ``tests/test_runtime.py`` assert exact recovery
behaviour and ``benchmarks/bench_runtime.py`` demo a crashing sweep.

Activation is explicit (pass a plan to :class:`repro.runtime.CellRunner` or a
driver's ``faults=`` argument) or environmental: the ``REPRO_FAULTS`` variable
holds the JSON form of a plan (:meth:`FaultPlan.to_json`) and is picked up by
every runner whose caller did not pass one, so a whole CLI sweep can be run
under injected faults without touching its code.

Process-killing faults (``"crash"``) and hangs only fire inside pool *worker*
processes, never in the parent — so the runtime's serial fallback and the
level-3 base-seed re-run are immune to them by construction, exactly like a
real segfaulting worker cannot take down the driver process.
"""

from __future__ import annotations

import json
import os
import time
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..exceptions import ExecutionError, FaultInjectionError

#: Environment variable holding a JSON-encoded fault plan.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Recognised fault kinds.
FAULT_KINDS = ("crash", "hang", "raise", "corrupt")


class Corrupted:
    """Sentinel returned in place of a real result by a ``"corrupt"`` fault.

    The runner recognises instances structurally (class name + marker
    attribute) rather than by identity, so the sentinel survives the pickle
    round-trip across the pool boundary.
    """

    is_corrupted_payload = True

    def __init__(self, index: int, attempt: int):
        self.index = index
        self.attempt = attempt

    def __repr__(self) -> str:
        return f"Corrupted(index={self.index}, attempt={self.attempt})"


def is_corrupted(value: Any) -> bool:
    """True when ``value`` is a corruption sentinel from an injected fault."""
    return getattr(value, "is_corrupted_payload", False) is True


def _in_worker_process() -> bool:
    """True inside a spawned/forked pool worker, False in the driver process."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class Fault:
    """One injected misbehaviour for one cell.

    Args:
        kind: ``"crash"`` kills the worker process (``os._exit``), ``"hang"``
            sleeps for ``duration`` seconds (to trip the runner's per-cell
            timeout), ``"raise"`` raises :class:`FaultInjectionError`, and
            ``"corrupt"`` replaces the worker's return value with a
            :class:`Corrupted` sentinel.
        attempts: Attempt numbers (1-based) the fault fires on; empty means
            every attempt.  ``attempts=(1,)`` models a transient fault healed
            by one retry.
        duration: Sleep length for ``"hang"`` faults.
        message: Carried into the raised/recorded error text.
    """

    kind: str
    attempts: Tuple[int, ...] = ()
    duration: float = 3600.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def fires_on(self, attempt: int) -> bool:
        return not self.attempts or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic mapping from cell index to its injected faults.

    The plan is consulted by the runner's worker-side wrapper on every
    attempt; it is pure data, so it travels through the process pool with the
    payload and behaves identically in every worker.
    """

    faults: Mapping[int, Tuple[Fault, ...]] = field(default_factory=dict)

    @staticmethod
    def single(index: int, fault: Fault) -> "FaultPlan":
        """A plan with one faulty cell."""
        return FaultPlan({index: (fault,)})

    @staticmethod
    def of(faults: Mapping[int, Sequence[Fault]]) -> "FaultPlan":
        """A plan from any index → fault-sequence mapping."""
        return FaultPlan({int(i): tuple(fs) for i, fs in faults.items()})

    def fault_for(self, index: int, attempt: int) -> Optional[Fault]:
        """The first fault scheduled for this (cell, attempt), if any."""
        for fault in self.faults.get(index, ()):
            if fault.fires_on(attempt):
                return fault
        return None

    def apply(self, index: int, attempt: int) -> None:
        """Fire any pre-execution fault for this (cell, attempt).

        Called by the runner's wrapper before the real worker runs.  Crash
        and hang faults are inert outside pool workers (see module docstring).
        """
        fault = self.fault_for(index, attempt)
        if fault is None:
            return
        if fault.kind == "crash":
            if _in_worker_process():
                os._exit(13)
            return
        if fault.kind == "hang":
            if _in_worker_process():
                time.sleep(fault.duration)
            return
        if fault.kind == "raise":
            raise FaultInjectionError(
                f"{fault.message} (cell {index}, attempt {attempt})"
            )
        # "corrupt" fires post-execution, in corrupt().

    def corrupt(self, index: int, attempt: int, value: Any) -> Any:
        """Replace ``value`` with a corruption sentinel when scheduled."""
        fault = self.fault_for(index, attempt)
        if fault is not None and fault.kind == "corrupt":
            return Corrupted(index, attempt)
        return value

    # ------------------------------------------------------------------
    # JSON round-trip (the REPRO_FAULTS activation path)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the plan for the ``REPRO_FAULTS`` environment variable."""
        payload: Dict[str, list] = {
            str(index): [
                {
                    "kind": fault.kind,
                    "attempts": list(fault.attempts),
                    "duration": fault.duration,
                    "message": fault.message,
                }
                for fault in faults
            ]
            for index, faults in self.faults.items()
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
            plan = {
                int(index): tuple(
                    Fault(
                        kind=spec["kind"],
                        attempts=tuple(spec.get("attempts", ())),
                        duration=float(spec.get("duration", 3600.0)),
                        message=str(spec.get("message", "injected fault")),
                    )
                    for spec in specs
                )
                for index, specs in payload.items()
            }
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise ExecutionError(f"malformed {FAULTS_ENV_VAR} plan: {exc}") from exc
        return cls(plan)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan encoded in ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        environ = os.environ if environ is None else environ
        text = environ.get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_json(text)
