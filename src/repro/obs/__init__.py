"""Unified observability layer: hierarchical spans + a metrics registry.

Module map:

- ``tracer``  — :class:`Span` records, the :class:`Tracer`, context-manager
  :func:`span`, worker-side :func:`capture_spans`, driver-side
  :func:`adopt_spans`.
- ``metrics`` — counters, gauges, p50/p90/p99 histograms, and the pickle-safe
  :class:`MetricsDelta` for shipping worker increments to the driver.
- ``export``  — Chrome trace-event JSON (:func:`export_chrome_trace`) and the
  schema check CI's trace smoke step uses (:func:`validate_chrome_trace`).

Everything is a zero-overhead no-op until :func:`enable` is called (or the
``REPRO_TRACE`` environment variable is set — see
:func:`maybe_enable_from_env`).  The typical entry points — ``transpile()``,
the experiment drivers, and every CLI subcommand — all call
:func:`maybe_enable_from_env`, so ``REPRO_TRACE=trace.json`` traces any
existing workflow without code changes.

Example::

    from repro import obs

    obs.enable()
    with obs.span("compile", category="demo", benchmark="grovers-9") as sp:
        ...
        sp.add_attrs(cnots=42)
    obs.counter("demo.compiles").inc()
    obs.export_chrome_trace("trace.json")   # load in chrome://tracing
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .export import chrome_trace_events, export_chrome_trace, validate_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsDelta,
    MetricsRegistry,
    counter,
    disable_metrics,
    enable_metrics,
    gauge,
    get_metrics,
    histogram,
    merge_metrics,
    metrics_enabled,
    metrics_summary,
)
from .tracer import (
    Span,
    SpanContext,
    Tracer,
    add_attrs,
    adopt_spans,
    capture_spans,
    clear_trace,
    current_span_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    now,
    record_span,
    span,
    trace_spans,
    tracing_enabled,
)

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsDelta",
    "MetricsRegistry",
    "TRACE_ENV_VAR",
    "WorkerTelemetry",
    "add_attrs",
    "adopt_spans",
    "capture",
    "capture_spans",
    "chrome_trace_events",
    "clear",
    "clear_trace",
    "counter",
    "current_span_id",
    "disable",
    "enable",
    "export_chrome_trace",
    "gauge",
    "get_metrics",
    "get_tracer",
    "histogram",
    "is_enabled",
    "maybe_enable_from_env",
    "merge_metrics",
    "metrics_summary",
    "now",
    "record_span",
    "span",
    "trace_path_from_env",
    "trace_spans",
    "validate_chrome_trace",
]

#: Environment variable that turns tracing on without code changes.  A path
#: value ("trace.json") additionally tells the CLI/drivers where to export;
#: bare flag values ("1", "true", "on", "yes") just enable collection.
TRACE_ENV_VAR = "REPRO_TRACE"

_FLAG_ON = frozenset({"1", "true", "on", "yes"})
_FLAG_OFF = frozenset({"", "0", "false", "off", "no"})


def enable() -> None:
    """Turn on span collection and the metrics registry for this process."""
    enable_tracing()
    enable_metrics()


def disable() -> None:
    """Drop all collected telemetry and revert to the no-op fast path."""
    disable_tracing()
    disable_metrics()


def is_enabled() -> bool:
    return tracing_enabled()


def clear() -> None:
    """Empty the span buffer and metrics registry but keep collection on."""
    clear_trace()
    registry = get_metrics()
    if registry is not None:
        disable_metrics()
        enable_metrics()


def env_requests_tracing() -> bool:
    value = os.environ.get(TRACE_ENV_VAR, "").strip().lower()
    return value not in _FLAG_OFF


def trace_path_from_env() -> Optional[str]:
    """The export path carried by ``REPRO_TRACE``, if it names one."""
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    if value.lower() in _FLAG_ON or value.lower() in _FLAG_OFF:
        return None
    return value


_ATEXIT_REGISTERED = False


def _register_env_export(path: str) -> None:
    """Export the trace at interpreter exit (library use, no CLI to do it)."""
    global _ATEXIT_REGISTERED
    if _ATEXIT_REGISTERED:
        return
    _ATEXIT_REGISTERED = True
    pid = os.getpid()

    def _export() -> None:
        if os.getpid() != pid:
            return  # a forked child inherited the handler; not its trace
        spans = trace_spans()
        if not spans:
            return  # pool workers ship their spans to the driver instead
        export_chrome_trace(path, spans)

    atexit.register(_export)


def maybe_enable_from_env() -> bool:
    """Enable telemetry when ``REPRO_TRACE`` asks for it; report the state.

    When the variable names an export path and this call is what turned
    tracing on (i.e. no CLI/driver already manages the trace), the buffer is
    additionally exported there at interpreter exit, so
    ``REPRO_TRACE=trace.json python my_script.py`` works with no code changes.
    """
    if is_enabled():
        return True
    if env_requests_tracing():
        enable()
        path = trace_path_from_env()
        if path:
            _register_env_export(path)
        return True
    return False


@dataclass
class WorkerTelemetry:
    """Spans + metrics a worker produced for one cell, shipped to the driver."""

    spans: List[Span] = field(default_factory=list)
    metrics: Optional[MetricsDelta] = None

    def empty(self) -> bool:
        return not self.spans and (self.metrics is None or self.metrics.empty())


@contextmanager
def capture() -> Iterator[WorkerTelemetry]:
    """Worker-side capture of both spans and metric increments.

    Enables telemetry if the worker does not have it yet (spawn start
    method), collects on a fresh span stack, and fills the yielded
    :class:`WorkerTelemetry` when the block exits.  The driver folds the
    result in with :func:`adopt_spans` + :func:`merge_metrics`.
    """
    enable()
    telemetry = WorkerTelemetry()
    registry = get_metrics()
    metrics_mark = registry.mark() if registry is not None else None
    with capture_spans(force=True) as spans:
        try:
            yield telemetry
        finally:
            if registry is not None and metrics_mark is not None:
                telemetry.metrics = registry.collect_since(metrics_mark)
                registry.rollback(metrics_mark)
    telemetry.spans = spans
