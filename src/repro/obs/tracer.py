"""Hierarchical span tracer with a zero-overhead disabled path.

A :class:`Span` is a finished, pickle-safe record: name, category, wall-aligned
start timestamp, duration, numeric span/parent ids, the producing process id,
and a free-form attribute dict.  Spans nest: the tracer keeps a stack of open
spans per process, and every new span (context-managed or explicitly recorded)
parents under the innermost open one.

Timestamps combine both clock families: each tracer captures a wall-clock
epoch (``time.time``) and a monotonic epoch (``time.perf_counter``) at
construction, and every timestamp is ``epoch_wall + (perf_counter() -
epoch_perf)``.  Durations therefore have monotonic-clock quality while
timestamps from different processes still land on one comparable timeline.

When tracing is disabled (the default) the module-level :func:`span` returns a
shared no-op context manager — no allocation, no clock read, no branch beyond
a single ``is None`` check — so instrumented code costs nothing in production
paths.

Cross-process use (the runtime's worker pools) goes through
:func:`capture_spans` on the worker side — which collects every span finished
inside the block, detached from any fork-inherited driver state — and
:func:`adopt_spans` on the driver side, which re-ids the shipped spans into
the driver's trace and re-parents their roots under a given span.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Type, Union

__all__ = [
    "Span",
    "Tracer",
    "SpanContext",
    "adopt_spans",
    "add_attrs",
    "capture_spans",
    "clear_trace",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "now",
    "record_span",
    "span",
    "trace_spans",
    "tracing_enabled",
]

Attrs = Dict[str, object]

#: Sentinel for :meth:`Tracer.record`'s ``parent_id``: span ids start at 1, so
#: -1 can never name a real span and means "parent under the current open span".
CURRENT_PARENT = -1


@dataclass
class Span:
    """One finished span.  Plain data, safe to pickle across process pools."""

    name: str
    category: str
    start: float
    duration: float
    span_id: int
    parent_id: Optional[int]
    pid: int
    attrs: Attrs = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _SpanHandle:
    """An open span: context manager that records a :class:`Span` on exit."""

    __slots__ = ("_tracer", "name", "category", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: Attrs) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def add_attrs(self, **attrs: object) -> None:
        """Attach attributes to this span before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self)
        self._start = self._tracer.now()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._tracer._pop(self, failed=exc_type is not None)


class _NullSpan:
    """Shared no-op stand-in for :class:`_SpanHandle` when tracing is off."""

    __slots__ = ()

    span_id = 0
    parent_id: Optional[int] = None

    def add_attrs(self, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: What instrumented code receives from :func:`span` — a real open span when
#: tracing is on, the shared null singleton when it is off.
SpanContext = Union[_SpanHandle, _NullSpan]


class Tracer:
    """Collects spans for one process on a wall-aligned monotonic timeline."""

    def __init__(self) -> None:
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self._spans: List[Span] = []
        self._stack: List[_SpanHandle] = []
        self._next_id = 1
        self.pid = os.getpid()

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Wall-aligned monotonic timestamp in seconds."""
        return self._epoch_wall + (time.perf_counter() - self._epoch_perf)

    # -- span lifecycle ------------------------------------------------

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def current_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def span(self, name: str, category: str = "", **attrs: object) -> _SpanHandle:
        return _SpanHandle(self, name, category, dict(attrs))

    def add_attrs(self, **attrs: object) -> None:
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def _push(self, handle: _SpanHandle) -> None:
        handle.span_id = self._new_id()
        handle.parent_id = self.current_id()
        self._stack.append(handle)

    def _pop(self, handle: _SpanHandle, failed: bool) -> None:
        end = self.now()
        # Unwind past any handles abandoned by an exception between enters.
        while self._stack:
            if self._stack.pop() is handle:
                break
        if failed:
            handle.attrs.setdefault("error", True)
        self._spans.append(
            Span(
                name=handle.name,
                category=handle.category,
                start=handle._start,
                duration=max(0.0, end - handle._start),
                span_id=handle.span_id,
                parent_id=handle.parent_id,
                pid=self.pid,
                attrs=handle.attrs,
            )
        )

    def record(
        self,
        name: str,
        category: str = "",
        *,
        start: float,
        duration: float,
        attrs: Optional[Attrs] = None,
        parent_id: Optional[int] = CURRENT_PARENT,
    ) -> Span:
        """Append a span with explicit timing (for events timed elsewhere)."""
        if parent_id == CURRENT_PARENT:
            parent_id = self.current_id()
        completed = Span(
            name=name,
            category=category,
            start=start,
            duration=max(0.0, duration),
            span_id=self._new_id(),
            parent_id=parent_id,
            pid=self.pid,
            attrs=dict(attrs or {}),
        )
        self._spans.append(completed)
        return completed

    # -- buffer access -------------------------------------------------

    def spans(self) -> List[Span]:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def mark(self) -> int:
        """Position in the span buffer, for :meth:`take_since`."""
        return len(self._spans)

    def take_since(self, mark: int) -> List[Span]:
        """Remove and return every span finished after ``mark``."""
        taken = self._spans[mark:]
        del self._spans[mark:]
        return taken

    def swap_stack(self, stack: List[_SpanHandle]) -> List[_SpanHandle]:
        """Replace the open-span stack (worker capture isolation)."""
        previous = self._stack
        self._stack = stack
        return previous

    def adopt(self, spans: List[Span], parent_id: Optional[int]) -> List[Span]:
        """Re-id foreign spans into this trace, rooting them at ``parent_id``.

        Every shipped span gets a fresh id from this tracer's sequence; parent
        links inside the shipped set are remapped, and any span whose parent
        is missing from the set (a root, or a stale fork-inherited id) is
        re-parented under ``parent_id``.
        """
        mapping = {foreign.span_id: self._new_id() for foreign in spans}
        adopted: List[Span] = []
        for foreign in spans:
            remapped = mapping.get(foreign.parent_id or 0, parent_id)
            adopted.append(
                replace(foreign, span_id=mapping[foreign.span_id], parent_id=remapped)
            )
        self._spans.extend(adopted)
        return adopted


# ----------------------------------------------------------------------
# Module-level tracer (the fast path checked by every instrumentation site)
# ----------------------------------------------------------------------

_TRACER: Optional[Tracer] = None


def enable_tracing() -> Tracer:
    """Install (or return) the process-global tracer."""
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer()
    return _TRACER


def disable_tracing() -> None:
    """Drop the global tracer; :func:`span` reverts to the no-op path."""
    global _TRACER
    _TRACER = None


def tracing_enabled() -> bool:
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, category: str = "", **attrs: object) -> SpanContext:
    """Open a span under the current one; a shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **attrs)


def add_attrs(**attrs: object) -> None:
    """Attach attributes to the innermost open span, if any."""
    tracer = _TRACER
    if tracer is not None:
        tracer.add_attrs(**attrs)


def record_span(
    name: str,
    category: str = "",
    *,
    start: float,
    duration: float,
    attrs: Optional[Attrs] = None,
    parent_id: Optional[int] = CURRENT_PARENT,
) -> Optional[Span]:
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.record(
        name, category, start=start, duration=duration, attrs=attrs, parent_id=parent_id
    )


def now() -> float:
    """Timestamp on the trace timeline (plain wall clock when disabled)."""
    tracer = _TRACER
    return tracer.now() if tracer is not None else time.time()


def current_span_id() -> Optional[int]:
    tracer = _TRACER
    return tracer.current_id() if tracer is not None else None


def trace_spans() -> List[Span]:
    tracer = _TRACER
    return tracer.spans() if tracer is not None else []


def clear_trace() -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.clear()


def adopt_spans(spans: List[Span], parent_id: Optional[int]) -> List[Span]:
    tracer = _TRACER
    if tracer is None or not spans:
        return []
    return tracer.adopt(spans, parent_id)


@contextmanager
def capture_spans(force: bool = True) -> Iterator[List[Span]]:
    """Collect every span finished inside the block (worker-side capture).

    The capture runs on a fresh open-span stack, so spans recorded inside
    cannot parent under fork-inherited driver spans; captured spans are
    *removed* from the local buffer (they ship to the driver instead, which
    also prevents duplicates when a forked worker inherits the driver's
    buffer).  With ``force`` (the default) tracing is enabled if it is not
    already — a spawn-started worker has no inherited tracer.
    """
    if _TRACER is None and force:
        enable_tracing()
    tracer = _TRACER
    collected: List[Span] = []
    if tracer is None:
        yield collected
        return
    # A fork-started worker inherits the driver's tracer object; refresh the
    # pid so its spans carry the worker's identity (epochs stay valid — both
    # clocks are system-wide).
    tracer.pid = os.getpid()
    saved_stack = tracer.swap_stack([])
    start = tracer.mark()
    try:
        yield collected
    finally:
        collected.extend(tracer.take_since(start))
        tracer.swap_stack(saved_stack)
