"""Metrics registry: counters, gauges, and percentile histograms.

Mirrors the tracer's enable/disable model: when metrics are disabled (the
default) the module-level :func:`counter` / :func:`gauge` / :func:`histogram`
accessors return shared null instruments whose mutators are no-ops, so
instrumented code pays one ``is None`` check and nothing else.

Histograms keep their raw observations (sweeps here are thousands of points,
not millions), so summaries report exact p50/p90/p99 by sorted interpolation
rather than bucketed approximations.

For worker pools the registry supports the same mark/collect/merge protocol
as the tracer: :meth:`MetricsRegistry.mark` snapshots positions, ``collect_since``
returns a pickle-safe :class:`MetricsDelta` of what the worker added, and the
driver folds it in with :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsDelta",
    "MetricsMark",
    "MetricsRegistry",
    "counter",
    "disable_metrics",
    "enable_metrics",
    "gauge",
    "get_metrics",
    "histogram",
    "merge_metrics",
    "metrics_enabled",
    "metrics_summary",
]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. peak working-set bytes of the latest run)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the high-water mark."""
        if value > self.value:
            self.value = value


class Histogram:
    """Distribution with exact percentile summaries."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    def percentile(self, q: float) -> float:
        """Exact percentile (0 <= q <= 100) by linear interpolation."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        position = (len(ordered) - 1) * (q / 100.0)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0.0}
        return {
            "count": float(len(self._values)),
            "sum": float(sum(self._values)),
            "min": min(self._values),
            "max": max(self._values),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def max(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

CounterLike = Union[Counter, _NullCounter]
GaugeLike = Union[Gauge, _NullGauge]
HistogramLike = Union[Histogram, _NullHistogram]


@dataclass
class MetricsMark:
    """Registry positions at capture start (see :meth:`MetricsRegistry.mark`)."""

    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, int] = field(default_factory=dict)


@dataclass
class MetricsDelta:
    """Pickle-safe increment shipped from a worker back to the driver."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)

    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """Named instruments for one process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Flat ``{metric-name: {stat: value}}`` snapshot of every instrument."""
        out: Dict[str, Dict[str, float]] = {}
        for name, instrument in sorted(self._counters.items()):
            out[name] = {"count": instrument.value}
        for name, g in sorted(self._gauges.items()):
            out[name] = {"value": g.value}
        for name, h in sorted(self._histograms.items()):
            out[name] = h.summary()
        return out

    # -- cross-process capture ----------------------------------------

    def mark(self) -> MetricsMark:
        return MetricsMark(
            counters={name: c.value for name, c in self._counters.items()},
            histograms={name: h.count for name, h in self._histograms.items()},
        )

    def collect_since(self, mark: MetricsMark) -> MetricsDelta:
        delta = MetricsDelta()
        for name, instrument in self._counters.items():
            step = instrument.value - mark.counters.get(name, 0.0)
            if step:
                delta.counters[name] = step
        for name, g in self._gauges.items():
            delta.gauges[name] = g.value
        for name, h in self._histograms.items():
            new = h._values[mark.histograms.get(name, 0):]
            if new:
                delta.histograms[name] = list(new)
        return delta

    def rollback(self, mark: MetricsMark) -> None:
        """Undo everything since ``mark`` (the captured delta ships instead).

        Keeps a same-process capture from double-counting: the collected
        increments are subtracted locally exactly once, mirroring how span
        capture removes spans from the local buffer.  Gauges keep their last
        value — they are not additive.
        """
        for name, instrument in self._counters.items():
            instrument.value = mark.counters.get(name, 0.0)
        for name, h in self._histograms.items():
            del h._values[mark.histograms.get(name, 0):]

    def merge(self, delta: MetricsDelta) -> None:
        for name, step in delta.counters.items():
            self.counter(name).inc(step)
        for name, value in delta.gauges.items():
            self.gauge(name).max(value)
        for name, values in delta.histograms.items():
            self.histogram(name)._values.extend(values)


# ----------------------------------------------------------------------
# Module-level registry
# ----------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def enable_metrics() -> MetricsRegistry:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disable_metrics() -> None:
    global _REGISTRY
    _REGISTRY = None


def metrics_enabled() -> bool:
    return _REGISTRY is not None


def get_metrics() -> Optional[MetricsRegistry]:
    return _REGISTRY


def counter(name: str) -> CounterLike:
    registry = _REGISTRY
    return _NULL_COUNTER if registry is None else registry.counter(name)


def gauge(name: str) -> GaugeLike:
    registry = _REGISTRY
    return _NULL_GAUGE if registry is None else registry.gauge(name)


def histogram(name: str) -> HistogramLike:
    registry = _REGISTRY
    return _NULL_HISTOGRAM if registry is None else registry.histogram(name)


def metrics_summary() -> Dict[str, Dict[str, float]]:
    registry = _REGISTRY
    return {} if registry is None else registry.summary()


def merge_metrics(delta: Optional[MetricsDelta]) -> None:
    registry = _REGISTRY
    if registry is not None and delta is not None and not delta.empty():
        registry.merge(delta)
