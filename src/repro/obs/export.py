"""Chrome trace-event export and validation.

The emitted file is the JSON Object Format of the Trace Event specification
(the format ``chrome://tracing`` and Perfetto load): a top-level object with a
``traceEvents`` list of complete ("ph": "X") events.  Each span becomes one
event; timestamps are microseconds relative to the earliest span in the
export so the numbers stay small, and each producing process keeps its own
``pid`` lane so cross-process clock skew cannot visually corrupt nesting.

:func:`validate_chrome_trace` checks a written file (or parsed object)
against the parts of the spec the export relies on — CI uses it as the trace
smoke gate, and the test suite as a structural oracle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .tracer import Span, trace_spans

__all__ = ["chrome_trace_events", "export_chrome_trace", "validate_chrome_trace"]


def _json_safe(value: object) -> object:
    """Coerce attr values (numpy scalars included) to JSON-encodable types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            return str(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(entry) for key, entry in value.items()}
    return str(value)


def chrome_trace_events(spans: List[Span]) -> List[Dict[str, object]]:
    """Convert spans to Trace Event complete events (``"ph": "X"``)."""
    if not spans:
        return []
    base = min(span.start for span in spans)
    events: List[Dict[str, object]] = []
    for span in spans:
        args: Dict[str, object] = {
            str(key): _json_safe(value) for key, value in span.attrs.items()
        }
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "default",
                "ph": "X",
                "ts": (span.start - base) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.pid,
                "args": args,
            }
        )
    return events


def export_chrome_trace(
    path: Union[str, Path], spans: Optional[List[Span]] = None
) -> int:
    """Write the trace (default: the global tracer's buffer) to ``path``.

    Returns the number of spans written.
    """
    selected = trace_spans() if spans is None else spans
    document = {
        "traceEvents": chrome_trace_events(selected),
        "displayTimeUnit": "ms",
    }
    Path(path).write_text(json.dumps(document, indent=None), encoding="utf-8")
    return len(selected)


def validate_chrome_trace(
    source: Union[str, Path, Dict[str, object]],
) -> Dict[str, object]:
    """Check a trace file (or parsed document) against the trace-event schema.

    Raises :class:`ValueError` on the first structural violation; returns a
    small summary (event count, categories, pids) on success.
    """
    if isinstance(source, (str, Path)):
        document = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        document = source
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document is missing the traceEvents list")
    categories: Dict[str, int] = {}
    pids: Dict[int, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] is missing {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"traceEvents[{index}].name is not a string")
        phase = event["ph"]
        if not isinstance(phase, str) or not phase:
            raise ValueError(f"traceEvents[{index}].ph is not a phase string")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{index}].ts is not a timestamp >= 0")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(
                    f"traceEvents[{index}].dur is required and >= 0 for ph='X'"
                )
        category = event.get("cat", "default")
        if isinstance(category, str):
            categories[category] = categories.get(category, 0) + 1
        pid = event["pid"]
        if isinstance(pid, int):
            pids[pid] = pids.get(pid, 0) + 1
    return {
        "events": len(events),
        "categories": categories,
        "pids": sorted(pids),
    }
