"""Compiler passes: decomposition, layout, routing, optimisation and scheduling."""

from .base import (
    AnalysisPass,
    BasePass,
    FixedPoint,
    PassManager,
    PropertySet,
    Stage,
    TransformationPass,
)
from .synthesis import zyz_angles, u3_from_matrix, matrix_is_identity
from .layout import (
    Layout,
    TrivialLayoutPass,
    FixedLayoutPass,
    GreedyInteractionLayoutPass,
    NoiseAwareLayoutPass,
    apply_layout,
)
from .decompose import DecomposeToBasisPass, DEFAULT_BASIS
from .toffoli import (
    toffoli_6cnot,
    toffoli_8cnot_line,
    ccz_6cnot,
    ccz_8cnot_line,
    ToffoliDecomposePass,
    MappingAwareToffoliDecomposePass,
)
from .routing import GreedySwapRouter, LegalizationRouter
from .trios_routing import TriosRouter
from .optimization import (
    DecomposeSwapsPass,
    RemoveBarriersPass,
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    RemoveIdentitiesPass,
    is_inverse_pair,
)
from .commutation import (
    CommutationAnalysisPass,
    CommutationSets,
    CommutativeCancellationPass,
    clear_commutation_cache,
    commutation_cache_size,
    gates_commute,
    instructions_commute,
)
from .scheduling import Schedule, ScheduledInstruction, asap_schedule, ASAPSchedulePass

__all__ = [
    "AnalysisPass",
    "BasePass",
    "FixedPoint",
    "PassManager",
    "PropertySet",
    "Stage",
    "TransformationPass",
    "zyz_angles",
    "u3_from_matrix",
    "matrix_is_identity",
    "Layout",
    "TrivialLayoutPass",
    "FixedLayoutPass",
    "GreedyInteractionLayoutPass",
    "NoiseAwareLayoutPass",
    "apply_layout",
    "DecomposeToBasisPass",
    "DEFAULT_BASIS",
    "toffoli_6cnot",
    "toffoli_8cnot_line",
    "ccz_6cnot",
    "ccz_8cnot_line",
    "ToffoliDecomposePass",
    "MappingAwareToffoliDecomposePass",
    "GreedySwapRouter",
    "LegalizationRouter",
    "TriosRouter",
    "DecomposeSwapsPass",
    "RemoveBarriersPass",
    "CancelAdjacentInversesPass",
    "Consolidate1qRunsPass",
    "RemoveIdentitiesPass",
    "is_inverse_pair",
    "CommutationAnalysisPass",
    "CommutationSets",
    "CommutativeCancellationPass",
    "clear_commutation_cache",
    "commutation_cache_size",
    "gates_commute",
    "instructions_commute",
    "Schedule",
    "ScheduledInstruction",
    "asap_schedule",
    "ASAPSchedulePass",
]
