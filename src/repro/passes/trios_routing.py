"""Trios routing: move the three qubits of a Toffoli into one neighbourhood.

This is the modified routing pass of §4.  Two-qubit gates are routed exactly
like the baseline router.  For a three-qubit gate, the router:

1. finds shortest paths between all pairs of the gate's current physical
   qubits (optionally noise-weighted),
2. picks the qubit with the smallest sum of path lengths to the other two as
   the *destination*,
3. walks the nearer of the other two qubits along its shortest path until it is
   adjacent to the destination,
4. walks the remaining qubit toward the destination, stopping as soon as the
   three qubits induce a connected subgraph of the coupling map — which
   reproduces the paper's "ending points overlap" optimisation (the second
   qubit stops next to the first, which becomes the middle of a line, saving a
   SWAP).

The Toffoli itself is left in the circuit (still a ``ccx``), now guaranteed to
sit on mutually connected physical qubits, ready for the mapping-aware second
decomposition pass.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..circuits.circuit import Instruction
from ..circuits.dag import DagCircuit
from ..exceptions import RoutingError
from ..hardware.topology import CouplingMap
from .layout import Layout
from .routing import GreedySwapRouter


class TriosRouter(GreedySwapRouter):
    """Routing pass that handles one-, two- and three-qubit gates (§4)."""

    # Unlike the plain router, the output may still carry 3q Toffoli-family
    # gates — but every one sits on a connected trio (routed_toffoli), ready
    # for the mapping-aware second decomposition.
    establishes = ("routed_toffoli",)
    invalidates = ("scheduled", "swaps_expanded")

    def __init__(
        self,
        coupling_map: CouplingMap,
        edge_weights: Optional[Mapping[Tuple[int, int], float]] = None,
        meet_in_middle: bool = False,
        overlap_optimization: bool = True,
        stochastic: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            coupling_map,
            edge_weights,
            meet_in_middle,
            stochastic=stochastic,
            seed=seed,
        )
        self.overlap_optimization = overlap_optimization

    # ------------------------------------------------------------------
    def _path_length(self, a: int, b: int) -> float:
        return self.coupling_map.path_length(a, b, self.edge_weights)

    def _trio_connected(self, positions: Sequence[int]) -> bool:
        # Three distinct qubits induce a connected subgraph exactly when at
        # least two of the three pairs are coupled; checking adjacency
        # directly avoids building a networkx subgraph in the routing loop.
        a, b, c = positions
        adjacent = self.coupling_map.are_adjacent
        return (adjacent(a, b) + adjacent(b, c) + adjacent(a, c)) >= 2

    # ------------------------------------------------------------------
    def _route_multi(
        self, out: DagCircuit, layout: Layout, instruction: Instruction
    ) -> int:
        if instruction.gate.num_qubits != 3:
            raise RoutingError(
                f"Trios routing supports up to three-qubit gates, got "
                f"{instruction.gate.num_qubits}-qubit {instruction.name!r}"
            )
        swaps = self._gather_trio(out, layout, instruction.qubits)
        physical = tuple(layout.physical(q) for q in instruction.qubits)
        if not self._trio_connected(physical):
            raise RoutingError(
                f"internal error: trio {physical} still disconnected after routing"
            )
        out.append(instruction.gate, physical, instruction.clbits)
        return swaps

    # ------------------------------------------------------------------
    def _gather_trio(
        self, out: DagCircuit, layout: Layout, logical_qubits: Sequence[int]
    ) -> int:
        """Insert SWAPs until the trio's physical qubits form a connected group."""
        logical_qubits = list(logical_qubits)
        positions = [layout.physical(q) for q in logical_qubits]
        if self._trio_connected(positions):
            return 0

        # Step 1-2: pick the destination (smallest sum of path lengths).
        def total_path_length(index: int) -> float:
            return sum(
                self._path_length(positions[index], positions[other])
                for other in range(3)
                if other != index
            )

        destination_index = min(range(3), key=total_path_length)
        destination_logical = logical_qubits[destination_index]
        movers = [q for i, q in enumerate(logical_qubits) if i != destination_index]
        # Route the nearer mover first.
        movers.sort(
            key=lambda q: self._path_length(
                layout.physical(q), layout.physical(destination_logical)
            )
        )
        swaps = 0
        swaps += self._walk_until_adjacent(out, layout, movers[0], destination_logical)
        if self.overlap_optimization:
            # Step 4: move the second qubit until the whole trio is connected;
            # stopping next to the first mover reproduces the paper's
            # "ending points overlap" SWAP saving.
            swaps += self._walk_until_connected(out, layout, movers[1],
                                                destination_logical, logical_qubits)
        else:
            # Ablation: always walk the second qubit all the way to the
            # destination's neighbourhood.
            swaps += self._walk_until_adjacent(out, layout, movers[1],
                                               destination_logical)
        return swaps

    def _walk_until_adjacent(
        self,
        out: DagCircuit,
        layout: Layout,
        mover: int,
        destination: int,
        avoid: Tuple[int, ...] = (),
    ) -> int:
        """SWAP ``mover``'s data along a shortest path until adjacent to ``destination``."""
        swaps = 0
        guard = 0
        while True:
            start = layout.physical(mover)
            end = layout.physical(destination)
            if self.coupling_map.are_adjacent(start, end):
                return swaps
            path = self._shortest_path(start, end, avoid=avoid)
            # Walk only the first edge, then re-evaluate: walking step by step
            # keeps the loop correct even if a SWAP displaced another tracked
            # qubit along the way.
            self._emit_swap(out, layout, path[0], path[1])
            swaps += 1
            guard += 1
            if guard > self.coupling_map.num_qubits * 4:
                raise RoutingError("trio routing did not converge (adjacency walk)")

    def _walk_until_connected(
        self,
        out: DagCircuit,
        layout: Layout,
        mover: int,
        destination: int,
        trio: Sequence[int],
    ) -> int:
        """SWAP ``mover`` toward ``destination`` until the trio is connected."""
        swaps = 0
        guard = 0
        while True:
            positions = [layout.physical(q) for q in trio]
            if self._trio_connected(positions):
                return swaps
            start = layout.physical(mover)
            end = layout.physical(destination)
            # Walk one step along the shortest path toward the destination and
            # re-check connectivity: stopping as soon as the trio is connected
            # is the paper's "ending points overlap" SWAP saving (the second
            # qubit halts next to the first, which becomes the middle of the
            # line).  The walk can never displace the destination or the
            # already-routed qubit, because reaching a position adjacent to
            # either of them makes the trio connected and ends the loop first.
            path = self._shortest_path(start, end)
            self._emit_swap(out, layout, path[0], path[1])
            swaps += 1
            guard += 1
            if guard > self.coupling_map.num_qubits * 4:
                raise RoutingError("trio routing did not converge (connectivity walk)")
