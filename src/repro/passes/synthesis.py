"""Single-qubit unitary synthesis (ZYZ / u3 decomposition).

Used by the one-qubit consolidation pass and by the basis decomposition pass to
rewrite arbitrary single-qubit gates as the hardware's ``u3`` gate.
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

from ..circuits.gate import Gate
from ..exceptions import TranspilerError


def zyz_angles(matrix: np.ndarray, atol: float = 1e-12) -> Tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``e^{i phase} Rz(phi) Ry(theta) Rz(lam)``.

    Returns ``(theta, phi, lam, phase)`` such that the IBM ``u3(theta, phi,
    lam)`` gate equals the input up to the returned global phase.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise TranspilerError(f"expected a 2x2 matrix, got shape {matrix.shape}")
    det = np.linalg.det(matrix)
    if abs(abs(det) - 1.0) > 1e-6:
        raise TranspilerError("matrix is not unitary (|det| != 1)")
    # Remove the global phase so the matrix is special unitary.
    phase = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * phase)
    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    cos_half = abs(su2[0, 0])
    sin_half = abs(su2[1, 0])
    # atan2 is well conditioned at both theta ~ 0 and theta ~ pi, unlike acos.
    theta = 2.0 * math.atan2(sin_half, cos_half)
    if sin_half > atol and cos_half > atol:
        phi_plus_lam = 2.0 * cmath.phase(su2[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
        phi = (phi_plus_lam + phi_minus_lam) / 2.0
        lam = (phi_plus_lam - phi_minus_lam) / 2.0
    elif sin_half <= atol:
        # Diagonal matrix: only phi + lam is determined.
        theta = 0.0
        phi = 2.0 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:
        # Anti-diagonal matrix: only phi - lam is determined.
        theta = math.pi
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0
    # The u3 matrix convention carries an extra phase of (phi + lam)/2 relative
    # to the Rz Ry Rz product; fold it into the reported global phase.
    global_phase = phase - (phi + lam) / 2.0
    return theta, phi, lam, global_phase


def u3_from_matrix(matrix: np.ndarray) -> Gate:
    """Return the ``u3`` gate implementing ``matrix`` up to global phase."""
    theta, phi, lam, _ = zyz_angles(matrix)
    return Gate("u3", 1, (theta, phi, lam))


def matrix_is_identity(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Whether a 2x2 unitary is the identity up to global phase."""
    matrix = np.asarray(matrix, dtype=complex)
    phase = matrix[0, 0]
    if abs(phase) < atol:
        return False
    return bool(np.allclose(matrix / phase, np.eye(2), atol=atol))
