"""Circuit-level optimisation passes.

These mirror the "light optimisation" the paper says Qiskit's default transpile
performs (§5.2): single-qubit gate consolidation and adjacent inverse-gate
cancellation, plus the SWAP→3-CNOT expansion that every routed circuit needs
before gate counting, scheduling and noise estimation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits import library
from ..exceptions import TranspilerError
from .base import BasePass, PropertySet
from .synthesis import matrix_is_identity, u3_from_matrix


class DecomposeSwapsPass(BasePass):
    """Expand every explicit SWAP into its three-CNOT implementation (§2.2)."""

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = circuit.copy_empty()
        for instruction in circuit.instructions:
            if instruction.name != "swap":
                out.append_instruction(instruction)
                continue
            a, b = instruction.qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        return out


class RemoveBarriersPass(BasePass):
    """Drop barrier markers (they carry no semantics for our simulators)."""

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        return circuit.without(["barrier"])


class CancelAdjacentInversesPass(BasePass):
    """Cancel neighbouring gate pairs ``G · G⁻¹`` acting on the same qubits.

    Routing frequently produces back-to-back CNOT pairs (end of one SWAP,
    start of the next gate); removing them is the cheapest of Qiskit's standard
    clean-ups and keeps the baseline comparison fair.
    """

    def __init__(self, max_iterations: int = 10) -> None:
        self.max_iterations = max_iterations

    def _single_pass(self, circuit: QuantumCircuit) -> Tuple[QuantumCircuit, bool]:
        out_instructions: List[Instruction] = []
        # For every qubit, index into out_instructions of the last op touching it.
        last_touch: Dict[int, int] = {}
        changed = False
        for instruction in circuit.instructions:
            qubits = instruction.qubits
            candidate_index: Optional[int] = None
            if instruction.gate.is_unitary and qubits:
                touches = [last_touch.get(q) for q in qubits]
                if all(t is not None for t in touches) and len(set(touches)) == 1:
                    candidate_index = touches[0]
            if candidate_index is not None:
                previous = out_instructions[candidate_index]
                same_wires = previous.qubits == qubits
                is_inverse = (
                    previous.gate.is_unitary
                    and same_wires
                    and previous.gate == instruction.gate.inverse()
                )
                if is_inverse:
                    # Drop both gates; mark the slot as removed (None placeholder).
                    out_instructions[candidate_index] = None  # type: ignore[call-overload]
                    for qubit in qubits:
                        last_touch.pop(qubit, None)
                    changed = True
                    continue
            out_instructions.append(instruction)
            index = len(out_instructions) - 1
            for qubit in qubits:
                last_touch[qubit] = index
        new_circuit = circuit.copy_empty()
        for instruction in out_instructions:
            if instruction is not None:
                new_circuit.append_instruction(instruction)
        return new_circuit, changed

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        current = circuit
        for _ in range(self.max_iterations):
            current, changed = self._single_pass(current)
            if not changed:
                break
        return current


class Consolidate1qRunsPass(BasePass):
    """Merge runs of single-qubit gates on a wire into a single ``u3`` gate.

    This is Qiskit's "single qubit gate consolidation" (§5.2).  Runs that
    multiply to the identity are dropped entirely.
    """

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = circuit.copy_empty()
        pending: Dict[int, np.ndarray] = {}

        def flush(qubit: int) -> None:
            matrix = pending.pop(qubit, None)
            if matrix is None:
                return
            if matrix_is_identity(matrix):
                return
            out.append(u3_from_matrix(matrix), (qubit,))

        for instruction in circuit.instructions:
            if (
                instruction.gate.is_unitary
                and instruction.gate.num_qubits == 1
            ):
                qubit = instruction.qubits[0]
                accumulated = pending.get(qubit, np.eye(2, dtype=complex))
                pending[qubit] = instruction.gate.matrix() @ accumulated
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            out.append_instruction(instruction)
        for qubit in sorted(pending):
            flush(qubit)
        return out


class RemoveIdentitiesPass(BasePass):
    """Remove explicit identity gates and zero-angle rotations."""

    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        out = circuit.copy_empty()
        for instruction in circuit.instructions:
            if (
                instruction.gate.is_unitary
                and instruction.gate.num_qubits == 1
                and instruction.gate.is_identity()
            ):
                continue
            out.append_instruction(instruction)
        return out
