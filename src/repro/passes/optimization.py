"""Circuit-level optimisation passes, expressed as local DAG rewrites.

These mirror the "light optimisation" the paper says Qiskit's default transpile
performs (§5.2): single-qubit gate consolidation and adjacent inverse-gate
cancellation, plus the SWAP→3-CNOT expansion that every routed circuit needs
before gate counting, scheduling and noise estimation.

All passes here mutate the :class:`~repro.circuits.dag.DagCircuit` in place —
removing cancelled pairs, splicing merged gates before their anchor — instead
of rebuilding an instruction list per sweep, which is what lets the driver's
:class:`~repro.passes.base.FixedPoint` combinator iterate them to convergence
cheaply.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import Instruction
from ..circuits.dag import DagCircuit, DagNode
from ..circuits import library
from .base import PropertySet, TransformationPass
from .synthesis import matrix_is_identity, u3_from_matrix


class DecomposeSwapsPass(TransformationPass):
    """Expand every explicit SWAP into its three-CNOT implementation (§2.2)."""

    establishes = ("swaps_expanded",)

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        node = dag.head
        while node is not None:
            if node.name != "swap":
                node = node.next_node
                continue
            a, b = node.qubits
            _, node = dag.substitute_node_with_instructions(
                node,
                [
                    Instruction(library.cx_gate(), (a, b)),
                    Instruction(library.cx_gate(), (b, a)),
                    Instruction(library.cx_gate(), (a, b)),
                ],
            )
        return dag


class RemoveBarriersPass(TransformationPass):
    """Drop barrier markers (they carry no semantics for our simulators)."""

    checks = ("gate_count_nonincreasing",)

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        node = dag.head
        while node is not None:
            nxt = node.next_node
            if node.name == "barrier":
                dag.remove_node(node)
            node = nxt
        return dag


def is_inverse_pair(first: Instruction, second: Instruction) -> bool:
    """Whether ``first · second`` is the identity: same qubits, inverse gates.

    The shared cancellation test of :class:`CancelAdjacentInversesPass` and the
    commutation-aware :class:`~repro.passes.commutation.CommutativeCancellationPass`.
    """
    # Compare ``first == second.inverse()`` (not the flipped form): the two
    # differ at the object level for gates whose ``inverse()`` changes the
    # gate name (``u2`` inverts to a ``u3``), and this orientation is the one
    # the byte-frozen level-1 pipelines have always used.
    return (
        first.gate.is_unitary
        and second.gate.is_unitary
        and first.qubits == second.qubits
        and first.gate == second.gate.inverse()
    )


class CancelAdjacentInversesPass(TransformationPass):
    """Cancel neighbouring gate pairs ``G · G⁻¹`` acting on the same qubits.

    Routing frequently produces back-to-back CNOT pairs (end of one SWAP,
    start of the next gate); removing them is the cheapest of Qiskit's standard
    clean-ups and keeps the baseline comparison fair.

    A gate cancels when its immediate predecessor *on every one of its wires*
    is one single gate applied to the same qubits in the same order whose gate
    object is the inverse.  Because removing a pair relinks the wire chains,
    cancellations enabled by earlier cancellations (e.g. ``[X, CX, CX, X]``)
    are found in the same sweep; ``max_iterations`` extra sweeps remain as a
    safety net and for convergence under the fixed-point combinator.
    """

    checks = ("gate_count_nonincreasing",)

    def __init__(self, max_iterations: int = 10) -> None:
        self.max_iterations = max_iterations

    def _sweep(self, dag: DagCircuit) -> bool:
        changed = False
        node = dag.head
        while node is not None:
            nxt = node.next_node
            instruction = node.instruction
            qubits = instruction.qubits
            if instruction.gate.is_unitary and qubits:
                previous: Optional[DagNode] = node.prev_on(qubits[0])
                if previous is not None and all(
                    node.prev_on(q) is previous for q in qubits
                ):
                    if is_inverse_pair(previous.instruction, instruction):
                        dag.remove_node(previous)
                        dag.remove_node(node)
                        changed = True
            node = nxt
        return changed

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        for _ in range(self.max_iterations):
            if not self._sweep(dag):
                break
        return dag


class Consolidate1qRunsPass(TransformationPass):
    """Merge runs of single-qubit gates on a wire into a single ``u3`` gate.

    This is Qiskit's "single qubit gate consolidation" (§5.2).  Runs that
    multiply to the identity are dropped entirely.  The merged ``u3`` is
    spliced immediately before the instruction that ended the run (or appended
    at the end of the DAG), exactly where the list-based pass used to emit it.

    ZYZ synthesis is not byte-idempotent (re-deriving the angles of a ``u3``
    from its own matrix can wobble in the last float bit or wrap a phase), so
    nodes this pass emits are tagged ``canonical_1q``; a later sweep that finds
    a run consisting of one already-canonical gate leaves it untouched and
    reports no modification.  That makes the pass a genuine fixed point for the
    :class:`~repro.passes.base.FixedPoint` combinator while keeping its first
    application bit-identical to the historical behaviour.
    """

    checks = ("gate_count_nonincreasing",)

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        # Per-qubit pending run: the nodes collected so far and their product.
        pending: Dict[int, Tuple[List[DagNode], np.ndarray]] = {}

        def flush(qubit: int, anchor: Optional[DagNode]) -> None:
            run = pending.pop(qubit, None)
            if run is None:
                return
            nodes, matrix = run
            if len(nodes) == 1 and nodes[0].canonical_1q:
                return  # already in canonical form; rewriting would only churn bytes
            for stale in nodes:
                dag.remove_node(stale)
            if matrix_is_identity(matrix):
                return
            instruction = Instruction(u3_from_matrix(matrix), (qubit,))
            if anchor is None:
                new = dag.append_instruction(instruction)
            else:
                new = dag.insert_before(anchor, instruction)
            new.canonical_1q = True

        node = dag.head
        while node is not None:
            nxt = node.next_node
            instruction = node.instruction
            if instruction.gate.is_unitary and instruction.gate.num_qubits == 1:
                qubit = instruction.qubits[0]
                nodes, matrix = pending.get(qubit, ([], np.eye(2, dtype=complex)))
                pending[qubit] = (nodes + [node], instruction.gate.matrix() @ matrix)
                node = nxt
                continue
            for qubit in instruction.qubits:
                flush(qubit, node)
            node = nxt
        for qubit in sorted(pending):
            flush(qubit, None)
        return dag


class RemoveIdentitiesPass(TransformationPass):
    """Remove explicit identity gates and zero-angle rotations."""

    checks = ("gate_count_nonincreasing",)

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        node = dag.head
        while node is not None:
            nxt = node.next_node
            gate = node.instruction.gate
            if gate.is_unitary and gate.num_qubits == 1 and gate.is_identity():
                dag.remove_node(node)
            node = nxt
        return dag
