"""Unrolling / decomposition to the hardware gate set.

The target basis is IBM's ``{u1, u2, u3, cx}`` (§1).  The pass can be told to
*keep* selected multi-qubit gates — the Trios flow keeps ``ccx``/``ccz`` intact
through mapping and routing and only decomposes them afterwards
(:class:`~repro.passes.toffoli.MappingAwareToffoliDecomposePass`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from ..circuits.circuit import Instruction
from ..circuits.dag import DagCircuit
from ..circuits import library
from ..exceptions import TranspilerError
from .base import PropertySet, TransformationPass
from .synthesis import u3_from_matrix
from .toffoli import toffoli_6cnot, toffoli_8cnot_line, ccz_6cnot, ccz_8cnot_line

#: Default hardware basis (plus SWAP, which routing inserts and a later pass expands).
DEFAULT_BASIS: Tuple[str, ...] = ("u1", "u2", "u3", "cx")

_PI = math.pi

# Direct translations of common one-qubit gates into u1/u2/u3 (avoids numerics).
_ONE_QUBIT_RULES: Dict[str, callable] = {
    "id": lambda params: [],
    "x": lambda params: [Instruction(library.u3_gate(_PI, 0.0, _PI), (0,))],
    "y": lambda params: [Instruction(library.u3_gate(_PI, _PI / 2, _PI / 2), (0,))],
    "z": lambda params: [Instruction(library.u1_gate(_PI), (0,))],
    "h": lambda params: [Instruction(library.u2_gate(0.0, _PI), (0,))],
    "s": lambda params: [Instruction(library.u1_gate(_PI / 2), (0,))],
    "sdg": lambda params: [Instruction(library.u1_gate(-_PI / 2), (0,))],
    "t": lambda params: [Instruction(library.u1_gate(_PI / 4), (0,))],
    "tdg": lambda params: [Instruction(library.u1_gate(-_PI / 4), (0,))],
    "sx": lambda params: [Instruction(library.u3_gate(_PI / 2, -_PI / 2, _PI / 2), (0,))],
    "sxdg": lambda params: [Instruction(library.u3_gate(-_PI / 2, -_PI / 2, _PI / 2), (0,))],
    "rx": lambda params: [Instruction(library.u3_gate(params[0], -_PI / 2, _PI / 2), (0,))],
    "ry": lambda params: [Instruction(library.u3_gate(params[0], 0.0, 0.0), (0,))],
    "rz": lambda params: [Instruction(library.u1_gate(params[0]), (0,))],
    "p": lambda params: [Instruction(library.u1_gate(params[0]), (0,))],
}


def _two_qubit_rule(instruction: Instruction) -> List[Instruction]:
    """Rewrite a non-basis two-qubit gate in terms of {1q gates, cx, swap}."""
    name = instruction.name
    a, b = 0, 1
    params = instruction.gate.params
    if name == "cz":
        return [
            Instruction(library.h_gate(), (b,)),
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.h_gate(), (b,)),
        ]
    if name == "cy":
        return [
            Instruction(library.sdg_gate(), (b,)),
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.s_gate(), (b,)),
        ]
    if name == "ch":
        return [
            Instruction(library.s_gate(), (b,)),
            Instruction(library.h_gate(), (b,)),
            Instruction(library.t_gate(), (b,)),
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.tdg_gate(), (b,)),
            Instruction(library.h_gate(), (b,)),
            Instruction(library.sdg_gate(), (b,)),
        ]
    if name == "cp":
        theta = params[0]
        return [
            Instruction(library.u1_gate(theta / 2), (a,)),
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.u1_gate(-theta / 2), (b,)),
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.u1_gate(theta / 2), (b,)),
        ]
    if name == "crz":
        theta = params[0]
        return [
            Instruction(library.rz_gate(theta / 2), (b,)),
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.rz_gate(-theta / 2), (b,)),
            Instruction(library.cx_gate(), (a, b)),
        ]
    if name == "rzz":
        theta = params[0]
        return [
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.rz_gate(theta), (b,)),
            Instruction(library.cx_gate(), (a, b)),
        ]
    if name == "swap":
        return [
            Instruction(library.cx_gate(), (a, b)),
            Instruction(library.cx_gate(), (b, a)),
            Instruction(library.cx_gate(), (a, b)),
        ]
    raise TranspilerError(f"no decomposition rule for two-qubit gate {name!r}")


def _three_qubit_rule(instruction: Instruction, toffoli_mode: str) -> List[Instruction]:
    """Rewrite a three-qubit gate in terms of {1q, cx, ccx}-level pieces."""
    name = instruction.name
    if name == "ccx":
        if toffoli_mode == "8cnot":
            return toffoli_8cnot_line(0, 1, 2)
        return toffoli_6cnot(0, 1, 2)
    if name == "ccz":
        if toffoli_mode == "8cnot":
            return ccz_8cnot_line(0, 1, 2)
        return ccz_6cnot(0, 1, 2)
    if name == "cswap":
        return [
            Instruction(library.cx_gate(), (2, 1)),
            Instruction(library.ccx_gate(), (0, 1, 2)),
            Instruction(library.cx_gate(), (2, 1)),
        ]
    raise TranspilerError(f"no decomposition rule for gate {name!r}")


class DecomposeToBasisPass(TransformationPass):
    """Unroll every gate into the target basis, optionally keeping some gates.

    Args:
        basis: Allowed gate names in the output (non-unitary operations and
            ``swap``/``barrier`` are always allowed; routing introduces SWAPs
            which a later pass expands).
        keep: Gate names to leave untouched, e.g. ``("ccx", "ccz")`` for the
            first Trios decomposition pass ("Unroll+Decompose to Toffoli").
        toffoli_mode: Which Toffoli decomposition to use when ``ccx``/``ccz``
            are *not* kept — ``"6cnot"`` (Qiskit default) or ``"8cnot"``.
    """

    _ALWAYS_ALLOWED = ("measure", "reset", "barrier", "swap")

    def __init__(
        self,
        basis: Sequence[str] = DEFAULT_BASIS,
        keep: Sequence[str] = (),
        toffoli_mode: str = "6cnot",
    ) -> None:
        if toffoli_mode not in ("6cnot", "8cnot"):
            raise TranspilerError(f"unknown toffoli_mode {toffoli_mode!r}")
        self.basis: Set[str] = set(basis) | set(self._ALWAYS_ALLOWED)
        self.keep: Set[str] = set(keep)
        self.toffoli_mode = toffoli_mode
        # Contract: only when no multi-qubit gate is deliberately kept does
        # the unroll guarantee a 1q/2q-only ("decomposed") circuit.
        if not self.keep & {"ccx", "ccz", "cswap"}:
            self.establishes = ("decomposed",)

    # ------------------------------------------------------------------
    def _expand(self, instruction: Instruction) -> List[Instruction]:
        """One level of expansion for an out-of-basis instruction."""
        name = instruction.name
        num_qubits = instruction.gate.num_qubits
        if num_qubits == 1:
            if name in _ONE_QUBIT_RULES:
                template = _ONE_QUBIT_RULES[name](instruction.gate.params)
            else:
                template = [Instruction(u3_from_matrix(instruction.gate.matrix()), (0,))]
        elif num_qubits == 2:
            template = _two_qubit_rule(instruction)
        elif num_qubits == 3:
            template = _three_qubit_rule(instruction, self.toffoli_mode)
        else:
            raise TranspilerError(
                f"cannot decompose {name!r} acting on {num_qubits} qubits"
            )
        # Rebind the template (written on qubits 0..k-1) onto the real qubits.
        mapping = dict(enumerate(instruction.qubits))
        return [piece.remap(mapping) for piece in template]

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        # Record the basis for downstream consumers (the lint CLI checks
        # compiled output against it).
        properties.setdefault("basis_gates", tuple(sorted(self.basis)))
        # Expand one level at a time, in place: an out-of-basis node is
        # substituted by its (possibly still out-of-basis) pieces and the
        # cursor re-examines the first piece, exactly like the old worklist.
        node = dag.head
        guard = 0
        max_steps = 200 * (len(dag) + 1)
        while node is not None:
            guard += 1
            if guard > max_steps:
                raise TranspilerError("decomposition did not converge")
            instruction = node.instruction
            name = instruction.name
            if name in self.keep or name in self.basis or not instruction.gate.is_unitary:
                node = node.next_node
                continue
            replacements = self._expand(instruction)
            first, after = dag.substitute_node_with_instructions(node, replacements)
            node = first if first is not None else after
        return dag
