"""Baseline SWAP routing of one- and two-qubit gates.

This pass models the conventional compiler's routing stage: every gate is taken
in program order, and when a two-qubit gate acts on physical qubits that are
not coupled, SWAPs are inserted along a shortest path until the two data qubits
become adjacent (§2.4, §3).  The router works on *logical* circuits plus a
:class:`~repro.passes.layout.Layout`; its output is a circuit on the device's
physical wires that still contains explicit ``swap`` gates (expanded to CNOTs
by :class:`~repro.passes.optimization.DecomposeSwapsPass`).

The router optionally takes noise-aware edge weights (``-log`` CNOT success),
in which case "shortest" means "most reliable" (§4).

Path queries go through :class:`~repro.hardware.topology.CouplingMap`'s cached
shortest-path machinery: deterministic paths are memoized, and the stochastic
policy samples a uniformly random tied path from the cached predecessor DAG in
O(path length) instead of enumerating every shortest path (the frozen original
enumeration lives in ``benchmarks/_legacy_routing.py`` for comparison).
"""

from __future__ import annotations

import random
from typing import List, Mapping, Optional, Tuple

from ..circuits.circuit import Instruction
from ..circuits.dag import DagCircuit
from ..circuits import library
from ..exceptions import HardwareError, RoutingError
from ..hardware.topology import CouplingMap
from .base import PropertySet, TransformationPass
from .layout import Layout

Edge = Tuple[int, int]


class GreedySwapRouter(TransformationPass):
    """Route two-qubit gates one at a time along shortest SWAP paths.

    Args:
        coupling_map: Target device connectivity.
        edge_weights: Optional per-edge weights for noise-aware routing.
        meet_in_middle: Move both endpoints toward the centre of the path
            instead of walking only the first endpoint to the second.  The SWAP
            count is identical; only which data ends up where differs (§3
            mentions both strategies).
        stochastic: Model Qiskit's stochastic swap policy (the paper's
            baseline, §5.2): pick uniformly at random which endpoint walks and
            which of the tied shortest paths it follows.  The paper's §3
            motivation — "there is an even chance that the SWAPs for the second
            CNOT separate the two qubits that were just brought together" — is
            exactly this behaviour.
        seed: RNG seed for the stochastic mode.
    """

    establishes = ("routed",)
    invalidates = ("scheduled", "swaps_expanded")

    def __init__(
        self,
        coupling_map: CouplingMap,
        edge_weights: Optional[Mapping[Edge, float]] = None,
        meet_in_middle: bool = False,
        stochastic: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        self.coupling_map = coupling_map
        self.edge_weights = dict(edge_weights) if edge_weights else None
        self.meet_in_middle = meet_in_middle
        self.stochastic = stochastic
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Helpers shared with the Trios router
    # ------------------------------------------------------------------
    def _shortest_path(self, a: int, b: int, avoid: Tuple[int, ...] = ()) -> List[int]:
        """Shortest path from ``a`` to ``b``, preferring to avoid given nodes."""
        if avoid:
            blocked = tuple(sorted(set(avoid) - {a, b}))
            if blocked:
                try:
                    return self._pick_path(a, b, blocked)
                except HardwareError:
                    pass  # avoiding those nodes is impossible; use the full graph
        return self._pick_path(a, b)

    def _pick_path(self, a: int, b: int, avoid: Tuple[int, ...] = ()) -> List[int]:
        """One shortest path; in stochastic mode a uniformly random tied path."""
        if not self.stochastic:
            return self.coupling_map.shortest_path(
                a, b, weight=self.edge_weights, avoid=avoid
            )
        return self.coupling_map.sample_shortest_path(
            a, b, self._rng, weight=self.edge_weights, avoid=avoid
        )

    def _emit_swap(
        self, out: DagCircuit, layout: Layout, physical_a: int, physical_b: int
    ) -> None:
        if not self.coupling_map.are_adjacent(physical_a, physical_b):
            raise RoutingError(
                f"internal error: SWAP on non-adjacent qubits {physical_a}, {physical_b}"
            )
        out.append(library.swap_gate(), (physical_a, physical_b))
        layout.swap_physical(physical_a, physical_b)

    def _route_pair(
        self, out: DagCircuit, layout: Layout, logical_a: int, logical_b: int
    ) -> int:
        """Insert SWAPs until the two logical qubits sit on coupled wires."""
        swaps = 0
        physical_a = layout.physical(logical_a)
        physical_b = layout.physical(logical_b)
        if self.coupling_map.are_adjacent(physical_a, physical_b):
            return 0
        if self.stochastic and self._rng.random() < 0.5:
            # Qiskit's stochastic policy may just as well move the other qubit.
            physical_a, physical_b = physical_b, physical_a
        path = self._shortest_path(physical_a, physical_b)
        if not self.meet_in_middle:
            # Walk the data at ``a`` along the path until adjacent to ``b``.
            for step in range(len(path) - 2):
                self._emit_swap(out, layout, path[step], path[step + 1])
                swaps += 1
            return swaps
        # Meet in the middle: alternately advance each endpoint along the path.
        left = 0
        right = len(path) - 1
        move_left = True
        while right - left > 1:
            if move_left:
                self._emit_swap(out, layout, path[left], path[left + 1])
                left += 1
            else:
                self._emit_swap(out, layout, path[right], path[right - 1])
                right -= 1
            swaps += 1
            move_left = not move_left
        return swaps

    # ------------------------------------------------------------------
    def _route_instruction(
        self, out: DagCircuit, layout: Layout, instruction: Instruction
    ) -> int:
        """Route one instruction; returns the number of SWAPs inserted."""
        logical_qubits = instruction.qubits
        if instruction.name == "barrier" or len(logical_qubits) == 1:
            physical = tuple(layout.physical(q) for q in logical_qubits)
            out.append(instruction.gate, physical, instruction.clbits)
            return 0
        if len(logical_qubits) == 2:
            swaps = self._route_pair(out, layout, *logical_qubits)
            physical = tuple(layout.physical(q) for q in logical_qubits)
            out.append(instruction.gate, physical, instruction.clbits)
            return swaps
        return self._route_multi(out, layout, instruction)

    def _route_multi(
        self, out: DagCircuit, layout: Layout, instruction: Instruction
    ) -> int:
        raise RoutingError(
            f"{type(self).__name__} cannot route the {instruction.gate.num_qubits}-qubit "
            f"gate {instruction.name!r}; decompose it first or use the Trios router"
        )

    # ------------------------------------------------------------------
    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        layout: Layout = properties.get("layout") or Layout.trivial(dag.num_qubits)
        if layout.num_logical < dag.num_qubits:
            raise RoutingError(
                f"layout places {layout.num_logical} qubits but the circuit has "
                f"{dag.num_qubits}"
            )
        layout = layout.copy()
        properties.setdefault("initial_layout", layout.copy())
        # Routing changes the wire set (logical program wires → the device's
        # physical wires), so it emits a fresh DAG in one O(1)-per-append sweep
        # over the input's topological order.
        out = DagCircuit(self.coupling_map.num_qubits, dag.name)
        swaps = 0
        for node in dag:
            swaps += self._route_instruction(out, layout, node.instruction)
        properties["final_layout"] = layout.copy()
        properties["swaps_inserted"] = properties.get("swaps_inserted", 0) + swaps
        return out


class LegalizationRouter(GreedySwapRouter):
    """Re-route a circuit that already lives on physical wires.

    Used after a non-mapping-aware second decomposition (the "Trios (6-CNOT
    Toffoli)" ablation): any CNOT that the decomposition produced between
    non-coupled physical qubits gets the usual SWAP treatment.  For the real
    Trios flow this pass inserts zero SWAPs, which the tests assert.
    """

    establishes = ("routed",)
    invalidates = ("scheduled", "swaps_expanded")

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        # The circuit is already expressed on physical wires; route with an
        # identity layout over the whole device, then compose the wire
        # permutation it introduces into the recorded final layout.
        saved_layout = properties.get("layout")
        saved_initial = properties.get("initial_layout")
        saved_final = properties.get("final_layout")
        properties["layout"] = Layout.trivial(self.coupling_map.num_qubits)
        routed = super().run_dag(dag, properties)
        wire_permutation: Layout = properties["final_layout"]
        if saved_final is not None:
            composed = {
                logical: wire_permutation.physical(physical)
                for logical, physical in saved_final.to_dict().items()
            }
            properties["final_layout"] = Layout(composed)
        # Restore (or remove) the keys the temporary trivial layout touched so
        # no full-device placeholder leaks into later passes.
        if saved_initial is not None:
            properties["initial_layout"] = saved_initial
        else:
            properties.pop("initial_layout", None)
        if saved_layout is not None:
            properties["layout"] = saved_layout
        else:
            properties.pop("layout", None)
        return routed
