"""Initial placement of program (logical) qubits onto hardware (physical) qubits.

The paper's mapper "can simply treat the non-decomposed Toffoli as it would the
equivalent 6 CNOTs for the purposes of determining which qubits most need to be
placed nearby" (§4).  :class:`GreedyInteractionLayoutPass` implements that: it
builds a weighted interaction graph (each Toffoli contributes weight 2 to each
of its three qubit pairs, i.e. 6 CNOTs total) and greedily places heavily
interacting program qubits on nearby, well-connected hardware qubits.
:class:`NoiseAwareLayoutPass` swaps the hop-count distance for the ``-log``
CNOT-success distance, mirroring the noise-aware extension described in §4.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DagCircuit
from ..exceptions import LayoutError
from ..hardware.calibration import DeviceCalibration
from ..hardware.topology import CouplingMap
from .base import AnalysisPass, PropertySet


class Layout:
    """A bijection between logical (program) qubits and physical (device) qubits."""

    def __init__(self, logical_to_physical: Mapping[int, int]) -> None:
        self._l2p: Dict[int, int] = {
            int(logical): int(physical)
            for logical, physical in logical_to_physical.items()
        }
        self._p2l: Dict[int, int] = {}
        for logical, physical in self._l2p.items():
            if physical in self._p2l:
                raise LayoutError(
                    f"physical qubit {physical} assigned to both logical "
                    f"{self._p2l[physical]} and {logical}"
                )
            self._p2l[physical] = logical

    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, num_logical: int) -> "Layout":
        """Logical qubit ``i`` on physical qubit ``i``."""
        return cls({i: i for i in range(num_logical)})

    # ------------------------------------------------------------------
    def physical(self, logical: int) -> int:
        """Physical qubit currently holding logical qubit ``logical``."""
        try:
            return self._l2p[logical]
        except KeyError as exc:
            raise LayoutError(f"logical qubit {logical} has no placement") from exc

    def logical(self, physical: int) -> Optional[int]:
        """Logical qubit currently held by ``physical`` (None if unassigned)."""
        return self._p2l.get(physical)

    def to_dict(self) -> Dict[int, int]:
        """The logical→physical mapping as a plain dict."""
        return dict(self._l2p)

    @property
    def num_logical(self) -> int:
        return len(self._l2p)

    def physical_qubits(self) -> List[int]:
        """All physical qubits currently in use."""
        return sorted(self._p2l)

    # ------------------------------------------------------------------
    def copy(self) -> "Layout":
        return Layout(self._l2p)

    def swap_physical(self, physical_a: int, physical_b: int) -> None:
        """Exchange whatever data sits on two physical qubits (a routing SWAP)."""
        logical_a = self._p2l.pop(physical_a, None)
        logical_b = self._p2l.pop(physical_b, None)
        if logical_a is not None:
            self._p2l[physical_b] = logical_a
            self._l2p[logical_a] = physical_b
        if logical_b is not None:
            self._p2l[physical_a] = logical_b
            self._l2p[logical_b] = physical_a

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._l2p == other._l2p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({self._l2p})"


# ----------------------------------------------------------------------
# Layout passes
# ----------------------------------------------------------------------
class TrivialLayoutPass(AnalysisPass):
    """Place logical qubit ``i`` on physical qubit ``i``."""

    establishes = ("laid_out",)

    def __init__(self, coupling_map: CouplingMap) -> None:
        self.coupling_map = coupling_map

    def analyze(self, dag: DagCircuit, properties: PropertySet) -> None:
        if dag.num_qubits > self.coupling_map.num_qubits:
            raise LayoutError(
                f"circuit needs {dag.num_qubits} qubits but the device has "
                f"{self.coupling_map.num_qubits}"
            )
        properties["layout"] = Layout.trivial(dag.num_qubits)
        properties["coupling_map"] = self.coupling_map


class FixedLayoutPass(AnalysisPass):
    """Use an explicit logical→physical placement.

    The paper's Toffoli-only experiments place the three inputs at chosen
    physical locations and "fix the initial mapping to force routing to occur";
    this pass is how the experiment harness does that.
    """

    establishes = ("laid_out",)

    def __init__(self, coupling_map: CouplingMap, mapping: Mapping[int, int]) -> None:
        self.coupling_map = coupling_map
        self.mapping = dict(mapping)

    def analyze(self, dag: DagCircuit, properties: PropertySet) -> None:
        for logical in range(dag.num_qubits):
            if logical not in self.mapping:
                raise LayoutError(f"fixed layout is missing logical qubit {logical}")
            physical = self.mapping[logical]
            if not 0 <= physical < self.coupling_map.num_qubits:
                raise LayoutError(f"physical qubit {physical} outside the device")
        properties["layout"] = Layout(self.mapping)
        properties["coupling_map"] = self.coupling_map


class GreedyInteractionLayoutPass(AnalysisPass):
    """Greedy placement driven by the program's weighted interaction graph.

    Toffoli gates are weighted as the equivalent 6 CNOTs (weight 2 per qubit
    pair), so programs kept at the Toffoli level (the Trios flow) and fully
    decomposed programs (the baseline flow) see the same placement pressure.
    """

    #: Weight contributed by each pair of a three-qubit gate: a Toffoli is 6
    #: CNOTs spread over 3 pairs, i.e. 2 per pair.
    TOFFOLI_PAIR_WEIGHT = 2

    establishes = ("laid_out",)

    def __init__(
        self,
        coupling_map: CouplingMap,
        distance: Optional[Mapping[Tuple[int, int], float]] = None,
    ) -> None:
        self.coupling_map = coupling_map
        self._edge_weights = dict(distance) if distance else None

    # ------------------------------------------------------------------
    def _physical_distance(self, a: int, b: int) -> float:
        if self._edge_weights is None:
            return float(self.coupling_map.distance(a, b))
        return self.coupling_map.path_length(a, b, self._edge_weights)

    def analyze(self, dag: DagCircuit, properties: PropertySet) -> None:
        if dag.num_qubits > self.coupling_map.num_qubits:
            raise LayoutError(
                f"circuit needs {dag.num_qubits} qubits but the device has "
                f"{self.coupling_map.num_qubits}"
            )
        interactions = dag.interactions(toffoli_weight=self.TOFFOLI_PAIR_WEIGHT)
        placement = self._place(dag.num_qubits, interactions)
        properties["layout"] = Layout(placement)
        properties["coupling_map"] = self.coupling_map

    # ------------------------------------------------------------------
    def _place(
        self, num_logical: int, interactions: Mapping[Tuple[int, int], int]
    ) -> Dict[int, int]:
        # Total interaction weight per logical qubit, used as placement order.
        weight_of: Dict[int, float] = {q: 0.0 for q in range(num_logical)}
        neighbours: Dict[int, List[Tuple[int, float]]] = {q: [] for q in range(num_logical)}
        for (a, b), weight in interactions.items():
            weight_of[a] += weight
            weight_of[b] += weight
            neighbours[a].append((b, float(weight)))
            neighbours[b].append((a, float(weight)))
        order = sorted(range(num_logical), key=lambda q: -weight_of[q])

        # Candidate physical qubits ordered by connectivity (well-connected first).
        physical_order = sorted(
            range(self.coupling_map.num_qubits),
            key=lambda p: (-self.coupling_map.degree(p), p),
        )
        placement: Dict[int, int] = {}
        used: set = set()
        for logical in order:
            placed_neighbours = [
                (placement[other], weight)
                for other, weight in neighbours[logical]
                if other in placement
            ]
            best_physical = None
            best_cost = None
            for physical in physical_order:
                if physical in used:
                    continue
                if placed_neighbours:
                    cost = sum(
                        weight * self._physical_distance(physical, other_physical)
                        for other_physical, weight in placed_neighbours
                    )
                else:
                    # No placed neighbours yet: prefer central, well-connected qubits.
                    cost = -float(self.coupling_map.degree(physical))
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_physical = physical
            assert best_physical is not None  # there is always a free qubit
            placement[logical] = best_physical
            used.add(best_physical)
        return placement


class NoiseAwareLayoutPass(GreedyInteractionLayoutPass):
    """Greedy layout using ``-log`` CNOT-success distances (noise-aware variant)."""

    def __init__(self, coupling_map: CouplingMap, calibration: DeviceCalibration) -> None:
        weights = calibration.edge_weight_neg_log_success(coupling_map)
        super().__init__(coupling_map, distance=weights)
        self.calibration = calibration


def apply_layout(circuit: QuantumCircuit, layout: Layout, num_physical: int) -> QuantumCircuit:
    """Re-express a logical circuit on physical wires according to ``layout``."""
    mapping = layout.to_dict()
    return circuit.remap_qubits(mapping, num_qubits=num_physical)
