"""Commutation-aware optimisation: analysis and cancellation through commuting gates.

The adjacent-inverse cleanup of :mod:`repro.passes.optimization` only cancels
gate pairs that touch on every shared wire.  Routed circuits, however, are full
of CNOT pairs separated by *commuting* gates — diagonals on the control wire,
X-rotations on the target wire — that the paper's late Toffoli decomposition
exposes (§5.2 follow-ons).  This module cancels through them:

* :func:`gates_commute` decides whether two gates commute by comparing the two
  products of their matrices on the union of their wires.  Results are
  memoized per (gate, gate, relative-placement) triple, so the matrix algebra
  runs once per distinct gate pair, not once per circuit site.
* :class:`CommutationAnalysisPass` is an :class:`~repro.passes.base.AnalysisPass`
  that walks every wire chain of the DAG and groups consecutive instructions
  into maximal *commutation runs* — spans in which every pair of instructions
  commutes.  The runs are recorded in the property set.
* :class:`CommutativeCancellationPass` consumes those runs: any two gates in
  the same run on all their wires can be made adjacent by commuting one past
  the gates between them, so inverse pairs inside a run annihilate and
  same-axis rotations merge into a single rotation — even when separated by
  commuting gates.

Soundness rests on one argument, machine-checked by ``verify=True`` and by the
equivalence property tests: if ``a`` and ``b`` sit in the same commutation run
on every wire of ``a``, then ``a`` commutes with each instruction between them
on those wires (runs are *pairwise* commuting), and instructions on disjoint
wires commute trivially — so ``a`` can be displaced until it is adjacent to
``b`` without changing the circuit's unitary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.dag import DagCircuit, DagNode
from ..circuits.gate import Gate
from ..exceptions import TranspilerError
from .base import AnalysisPass, PropertySet, TransformationPass
from .optimization import is_inverse_pair

#: Memoized commutation verdicts keyed by (gate_a, placement_a, gate_b,
#: placement_b) with placements expressed in canonical relative coordinates,
#: so e.g. ``cx(2,7)`` vs ``rz(2)`` and ``cx(0,4)`` vs ``rz(0)`` share one
#: entry.  Gates are frozen value objects, hence hashable.
_COMMUTATION_CACHE: Dict[tuple, bool] = {}

#: Cap on the memo above.  Parameterised gates (synthesised ``u3`` triples,
#: random-angle rotations) can make effectively unique keys, so a long-lived
#: process sweeping many circuits would otherwise grow the dict without
#: bound.  On overflow the whole cache is dropped — the hot parameter-free
#: entries rebuild in microseconds.
_COMMUTATION_CACHE_LIMIT = 50_000

#: Rotation families merged by :class:`CommutativeCancellationPass`: gates in
#: one family are (up to global phase) rotations about a shared axis, so their
#: angles add.  Maps gate name → (family axis, angle contribution builder).
_ROTATION_ANGLES: Dict[str, Tuple[str, float]] = {
    # Z axis: diagonal phases; u1(theta) carries the angle exactly.
    "rz": ("z", None),  # angle from params[0]
    "u1": ("z", None),
    "p": ("z", None),
    "z": ("z", np.pi),
    "s": ("z", np.pi / 2),
    "sdg": ("z", -np.pi / 2),
    "t": ("z", np.pi / 4),
    "tdg": ("z", -np.pi / 4),
    # X axis (up to global phase).
    "rx": ("x", None),
    "x": ("x", np.pi),
    "sx": ("x", np.pi / 2),
    "sxdg": ("x", -np.pi / 2),
    # Y axis (up to global phase).
    "ry": ("y", None),
    "y": ("y", np.pi),
}

#: The gate emitted when a family's angles are merged, per axis.
_ROTATION_SYNTH = {"z": "u1", "x": "rx", "y": "ry"}

_TWO_PI = 2.0 * np.pi


def clear_commutation_cache() -> None:
    """Drop all memoized commutation verdicts (mainly for tests)."""
    _COMMUTATION_CACHE.clear()


def commutation_cache_size() -> int:
    """Number of memoized (gate, gate, placement) verdicts."""
    return len(_COMMUTATION_CACHE)


def _relative_placement(
    qubits_a: Sequence[int], qubits_b: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """Canonical coordinates of two gates' qubits on the union of their wires."""
    union: List[int] = []
    for qubit in (*qubits_a, *qubits_b):
        if qubit not in union:
            union.append(qubit)
    position = {qubit: index for index, qubit in enumerate(union)}
    return (
        tuple(position[q] for q in qubits_a),
        tuple(position[q] for q in qubits_b),
        len(union),
    )


def _product_unitary(
    first: Gate,
    first_qubits: Sequence[int],
    second: Gate,
    second_qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    from ..sim.unitary import circuit_unitary

    circuit = QuantumCircuit(num_qubits)
    circuit.append(first, first_qubits)
    circuit.append(second, second_qubits)
    return circuit_unitary(circuit)


def gates_commute(
    gate_a: Gate,
    qubits_a: Sequence[int],
    gate_b: Gate,
    qubits_b: Sequence[int],
    atol: float = 1e-10,
) -> bool:
    """Whether ``gate_a`` on ``qubits_a`` commutes with ``gate_b`` on ``qubits_b``.

    Decided from the gate matrices — ``A·B`` and ``B·A`` are built on the
    union of the wires and compared — so the answer is exact for every gate in
    the library, including parameterised rotations, with no hand-maintained
    commutation table to fall out of date.  Non-unitary operations (measure,
    reset, barrier) commute with nothing.

    Results are memoized by (gate, gate, relative placement); the matrices for
    a pair seen before are never rebuilt.
    """
    if not gate_a.is_unitary or not gate_b.is_unitary:
        return False
    if not set(qubits_a) & set(qubits_b):
        return True  # disjoint supports always commute
    placement_a, placement_b, union_size = _relative_placement(qubits_a, qubits_b)
    key = (gate_a, placement_a, gate_b, placement_b)
    cached = _COMMUTATION_CACHE.get(key)
    if cached is not None:
        return cached
    forward = _product_unitary(gate_a, placement_a, gate_b, placement_b, union_size)
    backward = _product_unitary(gate_b, placement_b, gate_a, placement_a, union_size)
    verdict = bool(np.allclose(forward, backward, atol=atol))
    if len(_COMMUTATION_CACHE) >= _COMMUTATION_CACHE_LIMIT:
        _COMMUTATION_CACHE.clear()
    _COMMUTATION_CACHE[key] = verdict
    # Commutation is symmetric; prime the mirrored key too.
    _COMMUTATION_CACHE[(gate_b, placement_b, gate_a, placement_a)] = verdict
    return verdict


def instructions_commute(first: Instruction, second: Instruction) -> bool:
    """Instruction-level convenience wrapper over :func:`gates_commute`."""
    if first.clbits or second.clbits:
        return False
    return gates_commute(first.gate, first.qubits, second.gate, second.qubits)


class CommutationSets:
    """Per-wire commutation runs computed by :class:`CommutationAnalysisPass`.

    For each qubit wire, ``runs(wire)`` is the wire's instruction chain split
    into maximal spans of pairwise-commuting instructions, in program order;
    ``run_index(node, wire)`` is the position of ``node``'s span on ``wire``.
    Two instructions that share the same run index on *every* common wire can
    be made adjacent by commuting.
    """

    def __init__(self) -> None:
        self._runs_by_wire: Dict[int, List[List[DagNode]]] = {}
        self._index: Dict[Tuple[DagNode, int], int] = {}

    def _add_run(self, wire: int, run: List[DagNode]) -> None:
        runs = self._runs_by_wire.setdefault(wire, [])
        for node in run:
            self._index[(node, wire)] = len(runs)
        runs.append(run)

    def wires(self) -> List[int]:
        return list(self._runs_by_wire)

    def runs(self, wire: int) -> List[List[DagNode]]:
        return self._runs_by_wire.get(wire, [])

    def run_index(self, node: DagNode, wire: int) -> int:
        try:
            return self._index[(node, wire)]
        except KeyError:
            raise TranspilerError(
                f"node {node!r} has no commutation run on wire {wire}"
            ) from None

    def signature(self, node: DagNode) -> Tuple[int, ...]:
        """The node's run index on each of its qubit wires, in qubit order."""
        return tuple(self.run_index(node, wire) for wire in node.qubits)

    def stats(self) -> Dict[str, float]:
        """Pickle-safe summary (no node references) for telemetry."""
        run_lengths = [
            len(run) for runs in self._runs_by_wire.values() for run in runs
        ]
        return {
            "wires": len(self._runs_by_wire),
            "runs": len(run_lengths),
            "max_run": max(run_lengths, default=0),
            "mean_run": float(np.mean(run_lengths)) if run_lengths else 0.0,
        }


class CommutationAnalysisPass(AnalysisPass):
    """Compute per-wire commutation runs and record them in the property set.

    Writes two keys:

    * ``"commutation_sets"`` — the :class:`CommutationSets` instance.  It
      holds live :class:`~repro.circuits.dag.DagNode` references, so it is
      only valid until the next DAG mutation; transformation passes that
      consume it (:class:`CommutativeCancellationPass`) pop it when done.
    * ``"commutation_stats"`` — a pickle-safe ``{wires, runs, max_run,
      mean_run}`` summary that survives on the
      :class:`~repro.compiler.result.CompilationResult`.
    """

    def analyze(self, dag: DagCircuit, properties: PropertySet) -> None:
        sets = CommutationSets()
        for wire in range(dag.num_qubits):
            node = dag.wire_front(wire)
            run: List[DagNode] = []
            while node is not None:
                extends_run = bool(run) and node.instruction.gate.is_unitary and all(
                    instructions_commute(member.instruction, node.instruction)
                    for member in run
                )
                if extends_run:
                    run.append(node)
                else:
                    if run:
                        sets._add_run(wire, run)
                    run = [node]
                node = node.next_on(wire)
            if run:
                sets._add_run(wire, run)
        properties["commutation_sets"] = sets
        properties["commutation_stats"] = sets.stats()


class CommutativeCancellationPass(TransformationPass):
    """Cancel inverse pairs and merge rotations *through* commuting gates.

    Within each commutation run (see :class:`CommutationAnalysisPass`), any
    two instructions on the same qubits with the same run signature can be
    made adjacent, so:

    1. **Inverse pairs annihilate** — ``cx … cx`` separated by diagonals on
       the control wire and X-rotations on the target wire, ``h … h`` through
       anything Hadamard-commuting, ``cp(θ) … cp(-θ)``, and so on.  Pairs are
       matched with a stack per (qubits, signature) group, so odd leftovers
       survive in place.
    2. **Same-axis rotations merge** — leftover single-qubit Z-family gates
       (``rz``/``u1``/``p``/``z``/``s``/``sdg``/``t``/``tdg``), X-family
       (``rx``/``x``/``sx``/``sxdg``) and Y-family (``ry``/``y``) gates in one
       run add their angles into a single ``u1``/``rx``/``ry`` (global phase
       aside), which is dropped entirely when the total is a multiple of 2π.
    3. **Two-qubit diagonal rotations merge** — surviving ``cp``/``rzz``/
       ``crz`` gates on the same qubit pair in the same run add their angles
       into one gate of the same kind, dropped when the merged gate is the
       identity (``cp`` at multiples of 2π; ``rzz`` at multiples of 2π up to
       global phase; a merged ``crz`` is only ever dropped at multiples of
       4π — ``crz(2π) = diag(1, 1, −1, −1)`` is *not* the identity).

    The pass runs its own analysis on entry (its rewrites invalidate node
    references, so a stale shared analysis would be unsound) and removes the
    node-bearing ``"commutation_sets"`` entry from the property set when done.
    Gate count never increases and circuit depth never grows — the pass only
    removes nodes or rewrites one in place — which is what lets the level-3
    pipeline guarantee it never regresses the level-2 metrics.

    Args:
        verify: Debug mode — snapshot the circuit before rewriting and
            machine-check equivalence (via
            :func:`repro.sim.equivalence.circuits_equivalent`) after, raising
            :class:`~repro.exceptions.TranspilerError` on any mismatch.
            Quadratic-to-exponential in circuit size; meant for tests and
            debugging, not production compiles.
        verify_qubit_limit: Skip verification (rather than fail) for circuits
            wider than this when ``verify=True``.
    """

    checks = ("gate_count_nonincreasing", "unitary_equivalent")

    def __init__(self, verify: bool = False, verify_qubit_limit: int = 20) -> None:
        self.verify = verify
        self.verify_qubit_limit = int(verify_qubit_limit)

    # ------------------------------------------------------------------
    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        snapshot: Optional[QuantumCircuit] = None
        if self.verify and dag.num_qubits <= self.verify_qubit_limit:
            snapshot = dag.to_circuit()
        CommutationAnalysisPass().analyze(dag, properties)
        sets: CommutationSets = properties.pop("commutation_sets")
        removed = self._cancel_inverse_pairs(dag, sets)
        self._merge_rotations(dag, sets, removed)
        self._merge_diagonal_pairs(dag, sets, removed)
        if snapshot is not None:
            self._verify(snapshot, dag)
        return dag

    # ------------------------------------------------------------------
    def _groups(
        self, dag: DagCircuit, sets: CommutationSets
    ) -> "Dict[tuple, List[DagNode]]":
        """Nodes bucketed by (qubits, commutation-run signature), program order."""
        groups: Dict[tuple, List[DagNode]] = defaultdict(list)
        for node in dag:
            instruction = node.instruction
            if not instruction.gate.is_unitary or instruction.clbits:
                continue
            if not instruction.qubits:
                continue
            groups[(instruction.qubits, sets.signature(node))].append(node)
        return groups

    def _cancel_inverse_pairs(
        self, dag: DagCircuit, sets: CommutationSets
    ) -> "set":
        """Stack-match and remove inverse pairs inside each commuting group."""
        removed = set()
        for nodes in self._groups(dag, sets).values():
            if len(nodes) < 2:
                continue
            stack: List[DagNode] = []
            for node in nodes:
                if stack and is_inverse_pair(
                    stack[-1].instruction, node.instruction
                ):
                    partner = stack.pop()
                    dag.remove_node(partner)
                    dag.remove_node(node)
                    removed.add(partner)
                    removed.add(node)
                else:
                    stack.append(node)
        return removed

    def _merge_rotations(
        self, dag: DagCircuit, sets: CommutationSets, removed: "set"
    ) -> None:
        """Merge surviving same-axis 1q rotations within each commutation run."""
        for wire in sets.wires():
            for run in sets.runs(wire):
                families: Dict[str, List[DagNode]] = defaultdict(list)
                for node in run:
                    if node in removed:
                        continue
                    instruction = node.instruction
                    if instruction.gate.num_qubits != 1 or instruction.clbits:
                        continue
                    family = _ROTATION_ANGLES.get(instruction.name)
                    if family is not None:
                        families[family[0]].append(node)
                for axis, members in families.items():
                    if len(members) < 2:
                        continue
                    total = 0.0
                    for node in members:
                        _, fixed = _ROTATION_ANGLES[node.name]
                        total += (
                            node.instruction.gate.params[0] if fixed is None else fixed
                        )
                    anchor, rest = members[0], members[1:]
                    for node in rest:
                        dag.remove_node(node)
                        removed.add(node)
                    merged = Gate(_ROTATION_SYNTH[axis], 1, (total,))
                    if merged.is_identity(tol=1e-12):
                        dag.remove_node(anchor)
                        removed.add(anchor)
                        continue
                    replacement = Instruction(merged, anchor.qubits)
                    dag.substitute_node_with_instructions(anchor, [replacement])
                    removed.add(anchor)

    #: Two-qubit diagonal rotations whose angles add under composition.
    _DIAGONAL_2Q = ("cp", "rzz", "crz")

    def _merge_diagonal_pairs(
        self, dag: DagCircuit, sets: CommutationSets, removed: "set"
    ) -> None:
        """Merge surviving same-kind 2q diagonal rotations within each run.

        Same displacement argument as the 1q merges: nodes sharing (qubits,
        run signature) can be made adjacent, and ``cp``/``rzz``/``crz`` pairs
        on the same ordered qubit pair compose by angle addition.  Grouping by
        the exact qubit tuple keeps the direction-sensitive ``crz`` sound
        (``crz(a, b)`` never merges with ``crz(b, a)``); for the
        exchange-symmetric ``cp``/``rzz`` it merely misses reversed-order
        pairs, which is conservative.

        Grouping is rebuilt here rather than via :meth:`_groups` because the
        preceding merges spliced in fresh nodes unknown to ``sets``; the
        diagonal candidates themselves are always original nodes (merges only
        ever synthesise 1q rotations), so their signatures are still valid.
        """
        groups: Dict[tuple, List[DagNode]] = defaultdict(list)
        for node in dag:
            if node in removed or node.name not in self._DIAGONAL_2Q:
                continue
            if node.instruction.clbits:
                continue
            groups[
                (node.name, node.qubits, sets.signature(node))
            ].append(node)
        for (name, _, _), members in groups.items():
            if len(members) < 2:
                continue
            total = 0.0
            for node in members:
                total += node.instruction.gate.params[0]
            anchor, rest = members[0], members[1:]
            for node in rest:
                dag.remove_node(node)
                removed.add(node)
            merged = Gate(name, 2, (float(total),))
            if merged.is_identity(tol=1e-12):
                dag.remove_node(anchor)
                removed.add(anchor)
                continue
            replacement = Instruction(merged, anchor.qubits)
            dag.substitute_node_with_instructions(anchor, [replacement])
            removed.add(anchor)

    # ------------------------------------------------------------------
    def _verify(self, before: QuantumCircuit, dag: DagCircuit) -> None:
        from ..sim.equivalence import circuits_equivalent

        after = dag.to_circuit()
        if not circuits_equivalent(before, after):
            raise TranspilerError(
                f"{self.name} produced a non-equivalent circuit "
                f"(before: {before.count_ops()}, after: {after.count_ops()}); "
                "this is a bug in the commutation rules"
            )
