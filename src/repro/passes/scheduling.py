"""ASAP scheduling of hardware-basis circuits.

Scheduling assigns each instruction a start time assuming every qubit can act
in parallel and each gate occupies its qubits for its calibrated duration.  The
resulting makespan ``Δ`` feeds the coherence-error term ``exp(-(Δ/T1 + Δ/T2))``
of the paper's success model (§2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..circuits.circuit import Instruction, QuantumCircuit
from ..circuits.dag import DagCircuit
from ..exceptions import ScheduleError
from ..hardware.calibration import DeviceCalibration
from .base import AnalysisPass, PropertySet


@dataclass(frozen=True)
class ScheduledInstruction:
    """An instruction with its assigned start time and duration (µs)."""

    start: float
    duration: float
    instruction: Instruction

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Schedule:
    """A full ASAP schedule for a circuit."""

    entries: List[ScheduledInstruction] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total makespan in microseconds."""
        return max((entry.end for entry in self.entries), default=0.0)

    def qubit_busy_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends executing gates."""
        return sum(
            entry.duration
            for entry in self.entries
            if qubit in entry.instruction.qubits
        )

    def parallelism(self) -> float:
        """Average number of simultaneously busy qubits (a crude utilisation metric)."""
        if not self.entries or self.duration == 0:
            return 0.0
        busy = sum(entry.duration * len(entry.instruction.qubits) for entry in self.entries)
        return busy / self.duration


def asap_schedule(circuit, calibration: DeviceCalibration) -> Schedule:
    """Compute an ASAP schedule for a hardware-basis circuit (or its DAG)."""
    instructions = (
        circuit.instructions
        if isinstance(circuit, QuantumCircuit)
        else [node.instruction for node in circuit]
    )
    ready: Dict[int, float] = {}
    ready_clbit: Dict[int, float] = {}
    entries: List[ScheduledInstruction] = []
    for instruction in instructions:
        if instruction.name == "barrier":
            # A barrier synchronises its qubits without taking time.
            start = max((ready.get(q, 0.0) for q in instruction.qubits), default=0.0)
            for qubit in instruction.qubits:
                ready[qubit] = start
            continue
        if instruction.gate.num_qubits >= 3:
            raise ScheduleError(
                f"cannot schedule non-native gate {instruction.name!r}; decompose first"
            )
        duration = calibration.gate_duration(instruction.name, instruction.qubits)
        start = max((ready.get(q, 0.0) for q in instruction.qubits), default=0.0)
        for clbit in instruction.clbits:
            start = max(start, ready_clbit.get(clbit, 0.0))
        entry = ScheduledInstruction(start=start, duration=duration, instruction=instruction)
        entries.append(entry)
        for qubit in instruction.qubits:
            ready[qubit] = entry.end
        for clbit in instruction.clbits:
            ready_clbit[clbit] = entry.end
    return Schedule(entries=entries)


class ASAPSchedulePass(AnalysisPass):
    """Analysis pass that stores the schedule and its duration in the properties."""

    establishes = ("scheduled",)

    def __init__(self, calibration: DeviceCalibration) -> None:
        self.calibration = calibration

    def analyze(self, dag: DagCircuit, properties: PropertySet) -> None:
        schedule = asap_schedule(dag, self.calibration)
        properties["schedule"] = schedule
        properties["duration"] = schedule.duration
