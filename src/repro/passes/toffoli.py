"""Toffoli (CCX/CCZ) decompositions and the mapping-aware second pass.

Two decompositions from the paper (Figures 3 and 4):

* :func:`toffoli_6cnot` — the textbook 6-CNOT decomposition; it needs CNOTs
  between *all three* qubit pairs, i.e. a triangle in the coupling graph.
* :func:`toffoli_8cnot_line` — an 8-CNOT decomposition whose CNOTs only touch
  two of the three pairs, so a linear (path) connectivity suffices.  Any of the
  three qubits can be the Toffoli target ("simply moving the two H gates to
  that qubit", §4) and any qubit can be the middle of the line.

:class:`MappingAwareToffoliDecomposePass` is the Trios second decomposition
pass (Figure 2b): it runs after routing, inspects the hardware connectivity of
each routed Toffoli and picks the 6-CNOT version when the three physical qubits
form a triangle and the 8-CNOT version (with the correct middle qubit)
otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuits.circuit import Instruction
from ..circuits.dag import DagCircuit
from ..circuits import library
from ..exceptions import TranspilerError
from ..hardware.topology import CouplingMap
from .base import PropertySet, TransformationPass


def _substitute_sweep(dag: DagCircuit, decompose) -> DagCircuit:
    """Replace each node by ``decompose(instruction)`` in one in-place sweep.

    Replacements are not re-examined (the decompositions emit final gates).
    """
    node = dag.head
    while node is not None:
        replacements = decompose(node.instruction)
        if len(replacements) == 1 and replacements[0] is node.instruction:
            node = node.next_node
            continue
        _, node = dag.substitute_node_with_instructions(node, replacements)
    return dag


def _inst(gate, qubits: Tuple[int, ...]) -> Instruction:
    return Instruction(gate, qubits)


# ----------------------------------------------------------------------
# 6-CNOT decomposition (Figure 3)
# ----------------------------------------------------------------------
def ccz_6cnot(a: int, b: int, c: int) -> List[Instruction]:
    """6-CNOT CCZ; requires CNOTs on all three pairs (a-c, b-c, a-b)."""
    return [
        _inst(library.cx_gate(), (b, c)),
        _inst(library.tdg_gate(), (c,)),
        _inst(library.cx_gate(), (a, c)),
        _inst(library.t_gate(), (c,)),
        _inst(library.cx_gate(), (b, c)),
        _inst(library.tdg_gate(), (c,)),
        _inst(library.cx_gate(), (a, c)),
        _inst(library.t_gate(), (b,)),
        _inst(library.t_gate(), (c,)),
        _inst(library.cx_gate(), (a, b)),
        _inst(library.t_gate(), (a,)),
        _inst(library.tdg_gate(), (b,)),
        _inst(library.cx_gate(), (a, b)),
    ]


def toffoli_6cnot(control1: int, control2: int, target: int) -> List[Instruction]:
    """The textbook 6-CNOT Toffoli (Figure 3); needs a connectivity triangle."""
    return (
        [_inst(library.h_gate(), (target,))]
        + ccz_6cnot(control1, control2, target)
        + [_inst(library.h_gate(), (target,))]
    )


# ----------------------------------------------------------------------
# 8-CNOT linear-connectivity decomposition (Figure 4)
# ----------------------------------------------------------------------
def ccz_8cnot_line(left: int, middle: int, right: int) -> List[Instruction]:
    """8-CNOT CCZ using only the couplings (left, middle) and (middle, right).

    Derived from the CCZ phase polynomial: T on each input and on the parity
    ``left ⊕ middle ⊕ right``, T† on each pairwise parity.  The CNOT ladder
    below exposes exactly those parities on the ``middle`` and ``right`` wires
    while only ever coupling adjacent wires of the line, and restores the
    register at the end.  Verified against the exact CCZ unitary in the tests.
    """
    a, b, c = left, middle, right
    return [
        _inst(library.t_gate(), (a,)),
        _inst(library.t_gate(), (b,)),
        _inst(library.t_gate(), (c,)),
        _inst(library.cx_gate(), (b, c)),
        _inst(library.tdg_gate(), (c,)),
        _inst(library.cx_gate(), (a, b)),
        _inst(library.tdg_gate(), (b,)),
        _inst(library.cx_gate(), (b, c)),
        _inst(library.tdg_gate(), (c,)),
        _inst(library.cx_gate(), (a, b)),
        _inst(library.cx_gate(), (b, c)),
        _inst(library.t_gate(), (c,)),
        _inst(library.cx_gate(), (a, b)),
        _inst(library.cx_gate(), (b, c)),
        _inst(library.cx_gate(), (a, b)),
    ]


def toffoli_8cnot_line(
    control1: int, control2: int, target: int, middle: Optional[int] = None
) -> List[Instruction]:
    """8-CNOT Toffoli for linearly connected qubits.

    Args:
        control1: First control qubit.
        control2: Second control qubit.
        target: Target qubit (receives the two H gates).
        middle: Which of the three qubits sits in the middle of the hardware
            line.  Defaults to ``control2``.  The CNOTs of the decomposition
            only act between the middle qubit and each of the two outer qubits.
    """
    qubits = (control1, control2, target)
    middle = control2 if middle is None else middle
    if middle not in qubits:
        raise TranspilerError(
            f"middle qubit {middle} is not one of the Toffoli qubits {qubits}"
        )
    outer = [q for q in qubits if q != middle]
    body = ccz_8cnot_line(outer[0], middle, outer[1])
    return (
        [_inst(library.h_gate(), (target,))]
        + body
        + [_inst(library.h_gate(), (target,))]
    )


# ----------------------------------------------------------------------
# Decomposition passes
# ----------------------------------------------------------------------
class ToffoliDecomposePass(TransformationPass):
    """Decompose every CCX/CCZ with a *fixed* decomposition, ignoring hardware.

    This models the conventional flow, where decomposition happens before the
    compiler knows where the qubits will live: ``mode="6cnot"`` is Qiskit's
    default, ``mode="8cnot"`` is the "Qiskit (8-CNOT Toffoli)" configuration of
    Figures 6 and 7.
    """

    # Hardware-ignorant by design: the emitted CNOTs may land on non-coupled
    # pairs, so a previously routed circuit needs re-legalization afterwards.
    establishes = ("decomposed",)
    invalidates = ("routed", "routed_toffoli", "scheduled")

    def __init__(self, mode: str = "6cnot") -> None:
        if mode not in ("6cnot", "8cnot"):
            raise TranspilerError(f"unknown Toffoli decomposition mode {mode!r}")
        self.mode = mode

    def _decompose(self, instruction: Instruction) -> List[Instruction]:
        qubits = instruction.qubits
        if instruction.name == "ccx":
            if self.mode == "6cnot":
                return toffoli_6cnot(*qubits)
            return toffoli_8cnot_line(*qubits)
        if instruction.name == "ccz":
            if self.mode == "6cnot":
                return ccz_6cnot(*qubits)
            return ccz_8cnot_line(qubits[0], qubits[1], qubits[2])
        return [instruction]

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        return _substitute_sweep(dag, self._decompose)


class MappingAwareToffoliDecomposePass(TransformationPass):
    """Trios' second decomposition pass (Figure 2b, "Mapping-Aware Decompose").

    Every remaining CCX/CCZ is assumed to already sit on physical qubits that
    the Trios router made mutually connected.  If the three qubits form a
    triangle in the coupling graph the 6-CNOT decomposition is used; otherwise
    the qubit adjacent to both others becomes the middle of the 8-CNOT linear
    decomposition.
    """

    requires = ("routed_toffoli",)
    establishes = ("routed", "decomposed")
    invalidates = ("routed_toffoli", "scheduled")

    def __init__(self, coupling_map: CouplingMap) -> None:
        self.coupling_map = coupling_map

    def _decompose(self, instruction: Instruction) -> List[Instruction]:
        if instruction.name not in ("ccx", "ccz"):
            return [instruction]
        a, b, c = instruction.qubits
        if self.coupling_map.has_triangle(a, b, c):
            if instruction.name == "ccx":
                return toffoli_6cnot(a, b, c)
            return ccz_6cnot(a, b, c)
        middle = self.coupling_map.linear_middle(a, b, c)
        if middle is None:
            raise TranspilerError(
                f"Toffoli on physical qubits {instruction.qubits} is not "
                "connected; the Trios routing pass must run first"
            )
        if instruction.name == "ccx":
            return toffoli_8cnot_line(a, b, c, middle=middle)
        outer = [q for q in (a, b, c) if q != middle]
        return ccz_8cnot_line(outer[0], middle, outer[1])

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        return _substitute_sweep(dag, self._decompose)
