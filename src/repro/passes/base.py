"""Pass framework: a minimal analogue of Qiskit's pass manager.

A :class:`BasePass` transforms a :class:`~repro.circuits.circuit.QuantumCircuit`
and may read/write shared state in a :class:`PropertySet` (the initial layout,
the final layout after routing, the number of SWAPs inserted, ...).  A
:class:`PassManager` runs a fixed sequence of passes, which is exactly how the
paper describes both the conventional flow (Figure 2a) and the Trios flow
(Figure 2b).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError


class PropertySet(dict):
    """Shared key/value store threaded through a pass pipeline.

    Well-known keys:

    * ``"layout"`` — the initial logical→physical :class:`~repro.passes.layout.Layout`.
    * ``"final_layout"`` — logical→physical layout after routing.
    * ``"swaps_inserted"`` — number of SWAP gates added by routing.
    * ``"coupling_map"`` — the target :class:`~repro.hardware.topology.CouplingMap`.
    """


class BasePass(ABC):
    """A single circuit transformation or analysis step."""

    @property
    def name(self) -> str:
        """Human-readable pass name (the class name by default)."""
        return type(self).__name__

    @abstractmethod
    def run(self, circuit: QuantumCircuit, properties: PropertySet) -> QuantumCircuit:
        """Transform ``circuit`` (or return it unchanged for analysis passes)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name}>"


class PassManager:
    """Runs an ordered list of passes over a circuit."""

    def __init__(self, passes: Optional[Sequence[BasePass]] = None) -> None:
        self.passes: List[BasePass] = list(passes or [])

    def append(self, single_pass: BasePass) -> "PassManager":
        """Add a pass to the end of the pipeline; returns ``self`` for chaining."""
        if not isinstance(single_pass, BasePass):
            raise TranspilerError(f"{single_pass!r} is not a BasePass")
        self.passes.append(single_pass)
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[PropertySet] = None,
    ) -> Tuple[QuantumCircuit, PropertySet]:
        """Run every pass in order and return the final circuit and properties."""
        properties = properties if properties is not None else PropertySet()
        current = circuit
        history: List[str] = properties.setdefault("pass_history", [])
        for single_pass in self.passes:
            current = single_pass.run(current, properties)
            if current is None:
                raise TranspilerError(f"pass {single_pass.name} returned None")
            history.append(single_pass.name)
        return current, properties

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(p.name for p in self.passes)
        return f"PassManager([{names}])"
