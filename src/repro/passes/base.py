"""Pass framework: DAG-based passes, stages, fixed-point loops and telemetry.

Every pass runs on the :class:`~repro.circuits.dag.DagCircuit` IR:

* an :class:`AnalysisPass` inspects the DAG and records results in the
  :class:`PropertySet` (layout selection, scheduling, ...);
* a :class:`TransformationPass` rewrites the DAG — in place for local rewrites
  (decomposition, cancellation, consolidation) or by building a fresh DAG when
  the wire set changes (routing onto physical qubits).

A :class:`PassManager` executes named :class:`Stage` groups in order,
converting the input circuit to a DAG exactly once and back exactly once, and
records one :class:`repro.obs.Span` per executed pass in
``properties["pass_spans"]`` (mirrored into the global trace when
:mod:`repro.obs` is enabled); the legacy ``properties["pass_timings"]`` dict
list is synthesized from those spans on access.  The :class:`FixedPoint`
combinator repeats a
pass group until a whole sweep makes no structural modification, which is how
the optimisation stage iterates cancellation/consolidation to convergence
instead of one hard-coded sweep.

For convenience (and backwards compatibility with the list-IR era) every pass
also accepts a plain :class:`~repro.circuits.circuit.QuantumCircuit` in
:meth:`BasePass.run` and returns a circuit in that case.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DagCircuit
from ..exceptions import TranspilerError


def legacy_pass_timing(span: obs.Span) -> Dict[str, object]:
    """The pre-trace-era dict shape of one pass-telemetry span."""
    return {
        "pass": span.name,
        "stage": span.attrs.get("stage"),
        "seconds": span.duration,
        "size_before": span.attrs.get("size_before"),
        "size_after": span.attrs.get("size_after"),
    }


def pass_timings_view(spans: Iterable[obs.Span]) -> List[Dict[str, object]]:
    """Legacy ``pass_timings`` dict list derived from pass spans."""
    return [legacy_pass_timing(span) for span in spans]


class PropertySet(dict):
    """Shared key/value store threaded through a pass pipeline.

    Well-known keys:

    * ``"layout"`` — the initial logical→physical :class:`~repro.passes.layout.Layout`.
    * ``"final_layout"`` — logical→physical layout after routing.
    * ``"swaps_inserted"`` — number of SWAP gates added by routing.
    * ``"coupling_map"`` — the target :class:`~repro.hardware.topology.CouplingMap`.
    * ``"pass_history"`` — names of the passes executed, in order.
    * ``"pass_spans"`` — one :class:`repro.obs.Span` per executed pass
      (name, stage/size attrs, wall-aligned start, duration) — the single
      source of pass telemetry.
    * ``"pass_timings"`` — *virtual*: the legacy ``{pass, stage, seconds,
      size_before, size_after}`` dict list, synthesized fresh from
      ``pass_spans`` on every access (the ``--profile-passes`` data).
    * ``"fixed_point_iterations"`` — sweeps each :class:`FixedPoint` loop took.
    """

    def __missing__(self, key):
        if key == "pass_timings":
            return pass_timings_view(dict.get(self, "pass_spans", ()))
        raise KeyError(key)

    def get(self, key, default=None):
        if key == "pass_timings" and not dict.__contains__(self, key):
            return pass_timings_view(dict.get(self, "pass_spans", ()))
        return dict.get(self, key, default)


def record_pass_span(
    properties: PropertySet,
    pass_name: str,
    stage: Optional[str],
    start: float,
    seconds: float,
    size_before: int,
    size_after: int,
) -> obs.Span:
    """Record one executed pass in ``properties["pass_spans"]``.

    When :mod:`repro.obs` is enabled the span also lands in the global trace,
    parented under the innermost open span (the ``transpile`` span); when
    disabled a detached record is created so per-pass telemetry — and the
    legacy ``pass_timings`` view over it — keeps working with zero setup.
    """
    attrs: Dict[str, object] = {
        "stage": stage,
        "size_before": size_before,
        "size_after": size_after,
    }
    tracer = obs.get_tracer()
    if tracer is not None:
        span = tracer.record(
            pass_name, "compiler.pass", start=start, duration=seconds, attrs=attrs
        )
    else:
        span = obs.Span(
            name=pass_name,
            category="compiler.pass",
            start=start,
            duration=max(0.0, seconds),
            span_id=0,
            parent_id=None,
            pid=os.getpid(),
            attrs=attrs,
        )
    properties.setdefault("pass_spans", []).append(span)
    return span


def record_timing(
    properties: PropertySet,
    pass_name: str,
    stage: Optional[str],
    seconds: float,
    size_before: int,
    size_after: int,
) -> None:
    """Deprecated pre-span shim; forwards to :func:`record_pass_span`."""
    record_pass_span(
        properties,
        pass_name,
        stage,
        obs.now() - seconds,
        seconds,
        size_before,
        size_after,
    )


class BasePass(ABC):
    """A single compilation step running on the DAG IR."""

    #: Set by combinators (e.g. :class:`FixedPoint`) that time their inner
    #: passes themselves, so the pass manager does not double-record them.
    records_own_telemetry = False

    # -- pass contracts (see repro.analysis.contracts) -------------------
    #: Pipeline properties that must hold before this pass runs.
    requires: Tuple[str, ...] = ()
    #: Pipeline properties guaranteed to hold after this pass.
    establishes: Tuple[str, ...] = ()
    #: Properties this pass keeps intact: ``"*"`` (everything not explicitly
    #: invalidated) or an explicit tuple.
    preserves: Union[str, Tuple[str, ...]] = "*"
    #: Properties this pass may destroy.
    invalidates: Tuple[str, ...] = ()
    #: Per-execution assertions (e.g. ``"gate_count_nonincreasing"``) the
    #: contract validator evaluates after every run of this pass.
    checks: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """Human-readable pass name (the class name by default)."""
        return type(self).__name__

    @abstractmethod
    def execute(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        """Run on ``dag`` and return the (possibly new, possibly same) DAG."""

    def run(
        self,
        circuit: Union[QuantumCircuit, DagCircuit],
        properties: Optional[PropertySet] = None,
    ):
        """Convenience entry point accepting a circuit or a DAG.

        Given a :class:`QuantumCircuit`, converts to a DAG, executes, and
        converts back; given a :class:`DagCircuit`, executes directly and
        returns the DAG.
        """
        properties = properties if properties is not None else PropertySet()
        if isinstance(circuit, DagCircuit):
            return self.execute(circuit, properties)
        dag = DagCircuit.from_circuit(circuit)
        out = self.execute(dag, properties)
        if out is None:
            raise TranspilerError(f"pass {self.name} returned None")
        return out.to_circuit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name}>"


class AnalysisPass(BasePass):
    """A pass that inspects the DAG and writes results into the property set."""

    @abstractmethod
    def analyze(self, dag: DagCircuit, properties: PropertySet) -> None:
        """Inspect ``dag`` (read-only) and record findings in ``properties``."""

    def execute(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        self.analyze(dag, properties)
        return dag

    def run(
        self,
        circuit: Union[QuantumCircuit, DagCircuit],
        properties: Optional[PropertySet] = None,
    ):
        properties = properties if properties is not None else PropertySet()
        if isinstance(circuit, DagCircuit):
            self.analyze(circuit, properties)
            return circuit
        # Analysis never mutates, so the circuit's shared memoized DAG is the
        # right view — no rebuild, no copy.
        self.analyze(circuit.dag(), properties)
        return circuit


class TransformationPass(BasePass):
    """A pass that rewrites the DAG (in place or by returning a new one)."""

    #: Any rewrite invalidates a previously computed schedule by default;
    #: passes that keep timing intact override this back to ``()``.
    invalidates: Tuple[str, ...] = ("scheduled",)

    @abstractmethod
    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        """Rewrite ``dag``; return the resulting DAG (may be ``dag`` itself)."""

    def execute(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        out = self.run_dag(dag, properties)
        if out is None:
            raise TranspilerError(f"pass {self.name} returned None")
        return out


def _same_instruction_sequence(left: Sequence, right: Sequence) -> bool:
    """True when both linearisations hold identical instruction objects."""
    if len(left) != len(right):
        return False
    return all(a is b or a == b for a, b in zip(left, right))


class FixedPoint(TransformationPass):
    """Repeat a pass group until a full sweep makes no structural change.

    Convergence is detected through :attr:`DagCircuit.modification_count`: a
    sweep that neither removes, inserts nor substitutes any node (on the same
    DAG object) is a fixed point.  Passes that rebuild a fresh DAG instead of
    mutating in place are supported through an O(n) fallback comparing the
    instruction sequences (instructions are immutable and shared, so an
    unchanged rebuild carries the same objects).  The passes in the group are
    responsible for not reporting byte-churn as progress (see
    :class:`~repro.passes.optimization.Consolidate1qRunsPass`).
    """

    records_own_telemetry = True

    def __init__(self, passes: Sequence[BasePass], max_iterations: int = 64) -> None:
        self.passes: List[BasePass] = list(passes)
        for single_pass in self.passes:
            if not isinstance(single_pass, BasePass):
                raise TranspilerError(f"{single_pass!r} is not a BasePass")
        self.max_iterations = int(max_iterations)

    @property
    def name(self) -> str:
        inner = ", ".join(p.name for p in self.passes)
        return f"FixedPoint[{inner}]"

    # -- aggregated contracts -------------------------------------------
    # The combinator's contract is derived from its inner passes by
    # simulating one sweep in order: a requirement satisfied by an earlier
    # inner pass does not leak out, an invalidated property that is
    # re-established by sweep end is not reported as invalidated, and a
    # check only holds for the loop if every inner pass declares it.
    def _simulate_sweep(self):
        requires: List[str] = []
        established: set = set()
        absent: set = set()
        checks: Optional[set] = None
        for single_pass in self.passes:
            for req in single_pass.requires:
                if req not in established and req not in requires:
                    requires.append(req)
            if single_pass.preserves != "*":
                established &= set(single_pass.preserves)
            for prop in single_pass.invalidates:
                established.discard(prop)
                absent.add(prop)
            for prop in single_pass.establishes:
                established.add(prop)
                absent.discard(prop)
            inner_checks = set(single_pass.checks)
            checks = inner_checks if checks is None else checks & inner_checks
        return (
            tuple(requires),
            tuple(sorted(established)),
            tuple(sorted(absent)),
            tuple(sorted(checks or ())),
        )

    @property
    def requires(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._simulate_sweep()[0]

    @property
    def establishes(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._simulate_sweep()[1]

    @property
    def invalidates(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._simulate_sweep()[2]

    @property
    def checks(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self._simulate_sweep()[3]

    def run_dag(self, dag: DagCircuit, properties: PropertySet) -> DagCircuit:
        stage = properties.get("_current_stage")
        for iteration in range(1, self.max_iterations + 1):
            before_dag = dag
            before_mods = dag.modification_count
            # Snapshot for the rebuild fallback below: `before_dag` itself may
            # be mutated in place during the sweep, so comparing against the
            # object at sweep end would miss those changes.
            before_instructions = dag.instructions
            for single_pass in self.passes:
                start = obs.now()
                size_before = len(dag)
                dag = single_pass.execute(dag, properties)
                if dag is None:
                    raise TranspilerError(f"pass {single_pass.name} returned None")
                record_pass_span(
                    properties,
                    single_pass.name,
                    stage,
                    start,
                    obs.now() - start,
                    size_before,
                    len(dag),
                )
            if dag is before_dag:
                converged = dag.modification_count == before_mods
            else:
                # A pass rebuilt the DAG; compare content against the
                # sweep-start snapshot instead of counters.
                converged = dag.num_qubits == before_dag.num_qubits and (
                    _same_instruction_sequence(
                        dag.instructions, before_instructions
                    )
                )
            if converged:
                properties.setdefault("fixed_point_iterations", []).append(iteration)
                return dag
        raise TranspilerError(
            f"{self.name} did not converge within {self.max_iterations} sweeps"
        )


@dataclass
class Stage:
    """A named group of passes — the unit the driver's pipelines are built from."""

    name: str
    passes: List[BasePass]

    def __post_init__(self) -> None:
        self.passes = list(self.passes)
        for single_pass in self.passes:
            if not isinstance(single_pass, BasePass):
                raise TranspilerError(f"{single_pass!r} is not a BasePass")


class PassManager:
    """Runs stages (or a flat pass list) over a circuit via the DAG IR.

    The input circuit is converted to a :class:`DagCircuit` once, every pass
    runs on the DAG, and the final DAG is linearised back to a circuit once —
    transformation passes never round-trip through an instruction list.

    ``validate`` selects contract checking (see
    :mod:`repro.analysis.contracts`): ``"off"`` runs no checks,
    ``"contracts"`` (or ``True``) checks the declared
    ``requires``/``establishes``/``invalidates`` contracts and per-pass
    ``checks``, ``"full"`` additionally lints the IR structurally and
    re-verifies held properties against the DAG after every pass.  ``None``
    (the default) defers to the ``REPRO_VALIDATE`` environment variable,
    which the test suite and CI set to ``full``.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Union[BasePass, Stage]]] = None,
        validate: Union[None, bool, str] = None,
    ) -> None:
        from ..analysis.contracts import resolve_validation_mode

        self._units: List[Tuple[Optional[str], BasePass]] = []
        self.validate = resolve_validation_mode(validate)
        for item in passes or []:
            self.append(item)

    # ------------------------------------------------------------------
    def append(
        self,
        item: Union[BasePass, Stage],
        stage: Optional[str] = None,
    ) -> "PassManager":
        """Add a pass (optionally under a stage name) or a whole stage."""
        if isinstance(item, Stage):
            for single_pass in item.passes:
                self._units.append((item.name, single_pass))
            return self
        if not isinstance(item, BasePass):
            raise TranspilerError(f"{item!r} is not a BasePass")
        self._units.append((stage, item))
        return self

    @property
    def passes(self) -> List[BasePass]:
        """The flat pass list, in execution order."""
        return [single_pass for _, single_pass in self._units]

    def stages(self) -> List[str]:
        """Distinct stage names, in first-appearance order."""
        seen: List[str] = []
        for stage, _ in self._units:
            if stage is not None and stage not in seen:
                seen.append(stage)
        return seen

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Union[QuantumCircuit, DagCircuit],
        properties: Optional[PropertySet] = None,
    ) -> Tuple[Union[QuantumCircuit, DagCircuit], PropertySet]:
        """Run every pass in order; returns the final circuit and properties.

        The return type mirrors the input: a circuit in, a circuit out; a DAG
        in, a DAG out.
        """
        properties = properties if properties is not None else PropertySet()
        was_circuit = isinstance(circuit, QuantumCircuit)
        dag = DagCircuit.from_circuit(circuit) if was_circuit else circuit
        history: List[str] = properties.setdefault("pass_history", [])
        validator = None
        if self.validate != "off":
            from ..analysis.contracts import ContractValidator

            validator = ContractValidator(self.validate)
        for stage, single_pass in self._units:
            properties["_current_stage"] = stage
            if validator is not None:
                validator.before_pass(single_pass, dag, properties)
            start = obs.now()
            size_before = len(dag)
            dag = single_pass.execute(dag, properties)
            if dag is None:
                raise TranspilerError(f"pass {single_pass.name} returned None")
            if not single_pass.records_own_telemetry:
                record_pass_span(
                    properties,
                    single_pass.name,
                    stage,
                    start,
                    obs.now() - start,
                    size_before,
                    len(dag),
                )
            if validator is not None:
                validator.after_pass(single_pass, dag, properties)
            history.append(single_pass.name)
        properties.pop("_current_stage", None)
        return (dag.to_circuit() if was_circuit else dag), properties

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(p.name for p in self.passes)
        return f"PassManager([{names}])"
