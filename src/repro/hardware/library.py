"""The four 20-qubit device topologies evaluated in the paper (Figure 5).

* :func:`johannesburg` — IBM Johannesburg, four connected rings of qubits.
* :func:`grid` — a full 2D mesh.
* :func:`clusters` — fully-connected clusters joined in a ring, representative
  of a QCCD trapped-ion device.
* :func:`line` — linear nearest-neighbour connectivity.

All builders default to the 20-qubit sizes used in the paper's evaluation but
accept parameters so larger or smaller devices can be studied.
"""

from __future__ import annotations

from typing import List, Tuple

from ..exceptions import HardwareError
from .topology import CouplingMap

Edge = Tuple[int, int]


def johannesburg() -> CouplingMap:
    """IBM Johannesburg: a 4x5 lattice of qubits forming four connected rings.

    Row edges connect qubits left-to-right within each row of five; a sparse
    set of vertical couplers (columns 0/4 between rows 0-1 and 2-3, columns
    0/2/4 between rows 1-2) closes the four rings shown in Figure 5a.
    """
    edges: List[Edge] = []
    # Horizontal edges along each row of five qubits.
    for row_start in (0, 5, 10, 15):
        for offset in range(4):
            edges.append((row_start + offset, row_start + offset + 1))
    # Vertical couplers.
    edges += [(0, 5), (4, 9), (5, 10), (7, 12), (9, 14), (10, 15), (14, 19)]
    return CouplingMap(20, edges, name="ibmq-johannesburg")


def grid(rows: int = 4, cols: int = 5) -> CouplingMap:
    """A full 2D mesh (``rows`` x ``cols``), Figure 5b's ``full-grid-5x4``."""
    if rows < 1 or cols < 1:
        raise HardwareError("grid dimensions must be positive")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            qubit = r * cols + c
            if c + 1 < cols:
                edges.append((qubit, qubit + 1))
            if r + 1 < rows:
                edges.append((qubit, qubit + cols))
    return CouplingMap(rows * cols, edges, name=f"full-grid-{cols}x{rows}")


def line(num_qubits: int = 20) -> CouplingMap:
    """Linear nearest-neighbour connectivity (Figure 5d)."""
    if num_qubits < 2:
        raise HardwareError("a line needs at least two qubits")
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingMap(num_qubits, edges, name=f"line-{num_qubits}")


def clusters(num_clusters: int = 4, cluster_size: int = 5) -> CouplingMap:
    """Fully-connected clusters joined in a ring (Figure 5c, ``clusters-5x4``).

    Each cluster is a complete graph on ``cluster_size`` qubits.  Neighbouring
    clusters are joined by a single link between their boundary qubits, which
    models the shuttling bottleneck of a QCCD trapped-ion machine.
    """
    if num_clusters < 1 or cluster_size < 2:
        raise HardwareError("need at least one cluster of two or more qubits")
    num_qubits = num_clusters * cluster_size
    edges: List[Edge] = []
    for cluster in range(num_clusters):
        base = cluster * cluster_size
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                edges.append((base + i, base + j))
    if num_clusters > 1:
        for cluster in range(num_clusters):
            this_last = cluster * cluster_size + (cluster_size - 1)
            next_first = ((cluster + 1) % num_clusters) * cluster_size
            if num_clusters == 2 and cluster == 1:
                break  # avoid a duplicate edge between the only two clusters
            edges.append((this_last, next_first))
    return CouplingMap(num_qubits, edges, name=f"clusters-{cluster_size}x{num_clusters}")


def fully_connected(num_qubits: int = 20) -> CouplingMap:
    """All-to-all connectivity; the limit where Trios provides no benefit (§6.1)."""
    edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
    return CouplingMap(num_qubits, edges, name=f"all-to-all-{num_qubits}")


#: The four topologies compared throughout the evaluation, keyed by the labels
#: used in the paper's figures.
PAPER_TOPOLOGIES = {
    "ibmq-johannesburg": johannesburg,
    "full-grid-5x4": grid,
    "line-20": line,
    "clusters-5x4": clusters,
}


def by_name(name: str) -> CouplingMap:
    """Build one of the paper's topologies by its figure label."""
    try:
        return PAPER_TOPOLOGIES[name]()
    except KeyError as exc:
        raise HardwareError(
            f"unknown topology {name!r}; expected one of {sorted(PAPER_TOPOLOGIES)}"
        ) from exc
