"""Device calibration data: gate errors, durations and coherence times.

The numbers in :func:`johannesburg_aug19_2020` are the ones quoted in §5.2 of
the paper (obtained from IBM's randomised benchmarking on 2020-08-19):
average T1 = 70.87 µs, T2 = 72.72 µs, two-qubit gate time 0.559 µs with error
0.0147, one-qubit gate time 0.07 µs with error 0.0004.

The paper does not quote readout error or duration explicitly, only that
measurement error is "on the same order of magnitude as CNOT gates"; we use
0.02 error and 3.5 µs duration, typical of the 2020 IBM fleet, and record this
substitution in DESIGN.md.

All times are in microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from ..exceptions import HardwareError
from .topology import CouplingMap

Edge = Tuple[int, int]


def damping_parameters(duration: float, t1: float, t2: float) -> Tuple[float, float]:
    """Amplitude/phase-damping strengths for idling ``duration`` µs at T1/T2.

    Returns ``(gamma, lam)`` for the combined amplitude+phase damping
    channel: ``gamma = 1 - exp(-t/T1)`` relaxes populations and ``lam`` is
    chosen so the off-diagonal coherences decay by ``exp(-t/T2)``.  ``lam``
    clamps at zero when ``T2 > 2*T1`` would demand negative pure dephasing
    (the channel stays CPTP; coherences then decay at the T1-limited rate).
    This is the single home of the T1/T2 → damping math, shared by
    :meth:`DeviceCalibration.damping_parameters` and
    :func:`repro.sim.channels.idle_channel`.
    """
    if duration < 0:
        raise HardwareError(f"duration must be non-negative, got {duration}")
    if t1 <= 0 or t2 <= 0:
        raise HardwareError("T1 and T2 must be positive")
    gamma = 1.0 - math.exp(-duration / t1)
    lam = max(0.0, math.exp(-duration / t1) - math.exp(-2.0 * duration / t2))
    return gamma, lam


@dataclass(frozen=True)
class DeviceCalibration:
    """Average error rates and timing for a device.

    Attributes:
        name: Human-readable label.
        t1: Relaxation time in microseconds.
        t2: Dephasing time in microseconds.
        one_qubit_gate_time: Duration of a single-qubit gate (µs).
        two_qubit_gate_time: Duration of a CNOT (µs).
        one_qubit_gate_error: Error probability per single-qubit gate.
        two_qubit_gate_error: Error probability per CNOT.
        readout_error: Error probability per measurement.
        readout_time: Duration of a measurement (µs).
        edge_errors: Optional per-coupler CNOT error rates, used by the
            noise-aware routing variant; falls back to the average when absent.
    """

    name: str
    t1: float
    t2: float
    one_qubit_gate_time: float
    two_qubit_gate_time: float
    one_qubit_gate_error: float
    two_qubit_gate_error: float
    readout_error: float
    readout_time: float
    edge_errors: Mapping[Edge, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, value in (
            ("t1", self.t1),
            ("t2", self.t2),
            ("one_qubit_gate_time", self.one_qubit_gate_time),
            ("two_qubit_gate_time", self.two_qubit_gate_time),
        ):
            if value <= 0:
                raise HardwareError(f"{label} must be positive, got {value}")
        for label, value in (
            ("one_qubit_gate_error", self.one_qubit_gate_error),
            ("two_qubit_gate_error", self.two_qubit_gate_error),
            ("readout_error", self.readout_error),
        ):
            if not 0 <= value < 1:
                raise HardwareError(f"{label} must be in [0, 1), got {value}")

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def gate_error(self, name: str, qubits: Tuple[int, ...]) -> float:
        """Error probability for a gate with the given name acting on ``qubits``."""
        if name in ("barrier",):
            return 0.0
        if name == "measure":
            return self.readout_error
        if len(qubits) == 1:
            return self.one_qubit_gate_error
        if len(qubits) == 2:
            edge = (min(qubits), max(qubits))
            return float(self.edge_errors.get(edge, self.two_qubit_gate_error))
        raise HardwareError(
            f"gate {name!r} on {len(qubits)} qubits is not hardware-native; "
            "decompose before estimating errors"
        )

    def gate_duration(self, name: str, qubits: Tuple[int, ...]) -> float:
        """Duration (µs) for a hardware-native gate."""
        if name == "barrier":
            return 0.0
        if name == "measure":
            return self.readout_time
        if name == "reset":
            return self.readout_time
        if len(qubits) == 1:
            return self.one_qubit_gate_time
        if len(qubits) == 2:
            # A SWAP left in the circuit is three back-to-back CNOTs.
            return self.two_qubit_gate_time * (3 if name == "swap" else 1)
        raise HardwareError(
            f"gate {name!r} on {len(qubits)} qubits has no native duration"
        )

    def cnot_error(self, a: int, b: int) -> float:
        """CNOT error rate on the coupler (a, b)."""
        return self.gate_error("cx", (a, b))

    def edge_weight_neg_log_success(self, coupling: CouplingMap) -> Dict[Edge, float]:
        """Per-edge weights ``-log(1 - error)`` for noise-aware shortest paths (§4)."""
        weights: Dict[Edge, float] = {}
        for a, b in coupling.edges:
            success = 1.0 - self.cnot_error(a, b)
            weights[(a, b)] = -math.log(max(success, 1e-12))
        return weights

    def damping_parameters(self, duration: float) -> Tuple[float, float]:
        """Amplitude/phase-damping strengths for idling ``duration`` µs.

        Delegates to the module-level :func:`damping_parameters` with this
        calibration's T1/T2 — see there for the clamping convention.
        """
        return damping_parameters(duration, self.t1, self.t2)

    def decoherence_failure_probability(self, duration: float) -> float:
        """The paper's whole-register decoherence failure, ``1 - e^{-(Δ/T1+Δ/T2)}``.

        This is the per-shot scramble probability used by both shot samplers
        and by the density backend's default (sampler-consistent) mode.
        """
        if duration < 0:
            raise HardwareError(f"duration must be non-negative, got {duration}")
        return 1.0 - math.exp(-(duration / self.t1 + duration / self.t2))

    # ------------------------------------------------------------------
    # Derived calibrations
    # ------------------------------------------------------------------
    def improved(self, factor: float) -> "DeviceCalibration":
        """A calibration with gate/readout errors divided by ``factor`` and
        coherence times multiplied by ``factor``.

        This is the paper's "20x improved over current IBM Johannesburg error
        rates" device model (§2.6/§5.2) and the x axis of Figure 12.
        """
        if factor <= 0:
            raise HardwareError("improvement factor must be positive")
        scaled_edges = {
            edge: error / factor for edge, error in self.edge_errors.items()
        }
        return replace(
            self,
            name=f"{self.name}-improved-{factor:g}x",
            t1=self.t1 * factor,
            t2=self.t2 * factor,
            one_qubit_gate_error=self.one_qubit_gate_error / factor,
            two_qubit_gate_error=self.two_qubit_gate_error / factor,
            readout_error=self.readout_error / factor,
            edge_errors=scaled_edges,
        )

    def with_edge_errors(self, edge_errors: Mapping[Edge, float]) -> "DeviceCalibration":
        """A copy with explicit per-coupler CNOT error rates."""
        normalised = {(min(a, b), max(a, b)): float(e) for (a, b), e in edge_errors.items()}
        return replace(self, edge_errors=normalised)


def johannesburg_aug19_2020() -> DeviceCalibration:
    """The calibration snapshot quoted in §5.2 of the paper."""
    return DeviceCalibration(
        name="ibmq-johannesburg-2020-08-19",
        t1=70.87,
        t2=72.72,
        one_qubit_gate_time=0.07,
        two_qubit_gate_time=0.559,
        one_qubit_gate_error=0.0004,
        two_qubit_gate_error=0.0147,
        readout_error=0.02,
        readout_time=3.5,
    )


def near_term_calibration(improvement: float = 20.0) -> DeviceCalibration:
    """The forward-looking device model used for the paper's simulations.

    The paper simulates its NISQ benchmarks with error rates 20x better than
    the 2020-08-19 Johannesburg snapshot (§5.2); this helper builds exactly
    that calibration.
    """
    return johannesburg_aug19_2020().improved(improvement)
