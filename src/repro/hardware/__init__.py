"""Hardware models: coupling maps, the paper's four topologies and calibrations."""

from .topology import CouplingMap
from .library import (
    johannesburg,
    grid,
    line,
    clusters,
    fully_connected,
    by_name,
    PAPER_TOPOLOGIES,
)
from .calibration import (
    DeviceCalibration,
    johannesburg_aug19_2020,
    near_term_calibration,
)
from .target import Target, DEFAULT_BASIS_GATES

__all__ = [
    "CouplingMap",
    "johannesburg",
    "grid",
    "line",
    "clusters",
    "fully_connected",
    "by_name",
    "PAPER_TOPOLOGIES",
    "DeviceCalibration",
    "johannesburg_aug19_2020",
    "near_term_calibration",
    "Target",
    "DEFAULT_BASIS_GATES",
]
