"""The compilation target: connectivity + calibration + basis gate set.

A :class:`Target` bundles everything the driver needs to know about the device
being compiled for — the :class:`~repro.hardware.topology.CouplingMap`, an
optional :class:`~repro.hardware.calibration.DeviceCalibration` (required for
noise-aware layout/routing and for success estimation), and the native basis
gate names.  ``transpile(circuit, target, ...)`` consumes it directly, and it
travels on the :class:`~repro.compiler.result.CompilationResult` so downstream
consumers (experiments, reports) see what was compiled for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

from ..exceptions import TranspilerError
from .calibration import DeviceCalibration
from .topology import CouplingMap

#: IBM's hardware-native basis (§1); SWAP is routing-internal and expanded later.
DEFAULT_BASIS_GATES: Tuple[str, ...] = ("u1", "u2", "u3", "cx")


@dataclass(eq=False)
class Target:
    """A compilation target (device model) for :func:`repro.compiler.transpile`."""

    coupling_map: CouplingMap
    calibration: Optional[DeviceCalibration] = None
    basis_gates: Tuple[str, ...] = DEFAULT_BASIS_GATES
    name: str = ""
    #: Native drive directions for direction-sensitive 2q gates.  ``None``
    #: (the default, and the paper's device model) means the coupling map is
    #: undirected and either orientation is legal; when set, the linter's
    #: QL102 rule flags gates running against the declared direction.
    directed_edges: Optional[FrozenSet[Tuple[int, int]]] = None

    def __post_init__(self) -> None:
        self.basis_gates = tuple(self.basis_gates)
        if not self.name:
            self.name = self.coupling_map.name
        if self.directed_edges is not None:
            edges: Iterable[Tuple[int, int]] = self.directed_edges
            self.directed_edges = frozenset(
                (int(a), int(b)) for a, b in edges
            )

    # ------------------------------------------------------------------
    @classmethod
    def of(
        cls,
        target: Union["Target", CouplingMap],
        calibration: Optional[DeviceCalibration] = None,
    ) -> "Target":
        """Normalise a ``Target`` or bare ``CouplingMap`` into a ``Target``.

        A ``calibration`` argument fills in (but never overrides) a missing
        calibration, which is how the legacy ``calibration=`` keyword of the
        ``compile_*`` shims folds into the target.
        """
        if isinstance(target, Target):
            if calibration is not None and target.calibration is None:
                return cls(
                    target.coupling_map,
                    calibration,
                    target.basis_gates,
                    target.name,
                    target.directed_edges,
                )
            return target
        if isinstance(target, CouplingMap):
            return cls(target, calibration)
        raise TranspilerError(
            f"expected a Target or CouplingMap, got {type(target).__name__}"
        )

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of physical qubits on the device."""
        return self.coupling_map.num_qubits

    def require_calibration(self, why: str) -> DeviceCalibration:
        """The calibration, or a clear error naming the feature that needs it."""
        if self.calibration is None:
            raise TranspilerError(f"{why} requires a Target with a calibration")
        return self.calibration

    def noise_edge_weights(self) -> Dict[Tuple[int, int], float]:
        """Noise-aware routing weights: ``-log`` CNOT success per edge (§4)."""
        calibration = self.require_calibration("noise-aware compilation")
        return calibration.edge_weight_neg_log_success(self.coupling_map)

    # ------------------------------------------------------------------
    # Candidate scoring (the level-3 multi-seed search hooks)
    # ------------------------------------------------------------------
    def scoring_calibration(self) -> DeviceCalibration:
        """The calibration used to *rank* candidate compilations.

        An uncalibrated target still needs a consistent ranking for the
        level-3 multi-seed search, so this falls back to the paper's
        near-term (20x-improved Johannesburg) error model.  Metrics reported
        on results (:meth:`~repro.compiler.result.CompilationResult.duration`
        etc.) keep requiring a real calibration — only the internal candidate
        ranking uses the fallback.
        """
        if self.calibration is not None:
            return self.calibration
        from .calibration import near_term_calibration

        return near_term_calibration()

    def estimated_success(self, circuit, include_readout: bool = True) -> float:
        """Analytic success probability of ``circuit`` under the scoring model.

        The §2.6 closed-form estimate evaluated with
        :meth:`scoring_calibration` — the objective the level-3 search
        maximises over its layout/routing seeds.
        """
        from ..sim.estimator import estimate_success

        bare = circuit.without(["barrier"])
        return estimate_success(
            bare, self.scoring_calibration(), include_readout=include_readout
        ).probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cal = self.calibration.name if self.calibration is not None else None
        return (
            f"Target(name={self.name!r}, qubits={self.num_qubits}, "
            f"basis={'/'.join(self.basis_gates)}, calibration={cal!r})"
        )
