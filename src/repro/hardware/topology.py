"""Hardware coupling maps.

A :class:`CouplingMap` is an undirected graph whose nodes are the physical
qubits of a device and whose edges are the pairs that can execute a two-qubit
gate directly.  Both the routers and the mapping-aware Toffoli decomposition
query it for adjacency, shortest paths and triangles.

Shortest-path queries are the routers' hot loop, so the map precomputes and
caches everything they re-derive:

* a dense numpy all-pairs distance matrix (:meth:`distance_matrix`),
* per-source shortest-path predecessor DAGs — keyed by the optional
  noise-aware edge weights and by the avoid-node set — with the number of
  tied shortest paths counted through the DAG, and
* deterministic shortest paths, memoized per (source, target, weights, avoid).

:meth:`sample_shortest_path` draws a uniformly random *tied* shortest path by
walking the predecessor DAG backwards, weighting each predecessor by its tied
path count.  That is the same uniform-over-tied-paths distribution as
enumerating every shortest path and picking one at random (the stochastic
baseline router's policy), but its cost is O(path length) instead of growing
with the — combinatorially explosive on grids — number of alternatives.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..exceptions import HardwareError

Edge = Tuple[int, int]


class _PredecessorDAG:
    """Shortest-path predecessor DAG from one source qubit.

    ``dist`` maps each reachable node to its shortest distance from the
    source, ``preds`` to the list of predecessors that lie on some shortest
    path, and ``counts`` to the number of distinct tied shortest paths from
    the source — the weights used for uniform tied-path sampling.
    """

    __slots__ = ("source", "dist", "preds", "counts")

    def __init__(
        self,
        source: int,
        dist: Dict[int, float],
        preds: Dict[int, List[int]],
        order: List[int],
    ) -> None:
        self.source = source
        self.dist = dist
        self.preds = preds
        counts: Dict[int, int] = {source: 1}
        # ``order`` lists nodes by non-decreasing distance, so every
        # predecessor's count is final before it is summed into a successor.
        for node in order:
            if node == source:
                continue
            counts[node] = sum(counts[p] for p in preds[node])
        self.counts = counts

    def sample_path(self, target: int, rng: random.Random) -> List[int]:
        """A uniformly random tied shortest path from the source to ``target``.

        Walking backwards and picking each predecessor with probability
        proportional to its tied-path count makes every complete path equally
        likely (the per-step probabilities telescope to ``1 / counts[target]``).
        """
        path = [target]
        node = target
        while node != self.source:
            preds = self.preds[node]
            if len(preds) == 1:
                node = preds[0]
            else:
                pick = rng.randrange(self.counts[node])
                for pred in preds:
                    pick -= self.counts[pred]
                    if pick < 0:
                        node = pred
                        break
            path.append(node)
        path.reverse()
        return path


def _bfs_dag(graph: nx.Graph, source: int, blocked: frozenset) -> _PredecessorDAG:
    """Unweighted shortest-path DAG via breadth-first search."""
    dist: Dict[int, float] = {source: 0}
    preds: Dict[int, List[int]] = {source: []}
    order: List[int] = [source]
    frontier = [source]
    depth = 0
    adj = graph.adj
    while frontier:
        depth += 1
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in adj[node]:
                if neighbor in blocked:
                    continue
                seen = dist.get(neighbor)
                if seen is None:
                    dist[neighbor] = depth
                    preds[neighbor] = [node]
                    next_frontier.append(neighbor)
                    order.append(neighbor)
                elif seen == depth:
                    preds[neighbor].append(node)
        frontier = next_frontier
    return _PredecessorDAG(source, dist, preds, order)


def _dijkstra_dag(
    graph: nx.Graph,
    source: int,
    blocked: frozenset,
    weight: Mapping[Edge, float],
) -> _PredecessorDAG:
    """Weighted shortest-path DAG via Dijkstra.

    Ties are detected with exact float equality, matching
    :func:`networkx.all_shortest_paths`' notion of "tied" so the sampled
    distribution is over the same path set the enumeration would produce.
    """
    dist: Dict[int, float] = {}
    preds: Dict[int, List[int]] = {source: []}
    order: List[int] = []
    seen: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int, int]] = [(0.0, source, source)]
    adj = graph.adj
    while heap:
        node_dist, _, node = heappop(heap)
        if node in dist:
            continue
        dist[node] = node_dist
        order.append(node)
        for neighbor in adj[node]:
            if neighbor in blocked or neighbor in dist:
                continue
            edge = (node, neighbor) if node < neighbor else (neighbor, node)
            candidate = node_dist + weight.get(edge, 1.0)
            best = seen.get(neighbor)
            if best is None or candidate < best:
                seen[neighbor] = candidate
                preds[neighbor] = [node]
                heappush(heap, (candidate, neighbor, neighbor))
            elif candidate == best:
                preds[neighbor].append(node)
    return _PredecessorDAG(source, dist, preds, order)


class CouplingMap:
    """Connectivity graph of a quantum device."""

    def __init__(self, num_qubits: int, edges: Iterable[Edge], name: str = "device") -> None:
        if num_qubits < 1:
            raise HardwareError("a device needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise HardwareError(f"self-loop edge ({a}, {b}) is not allowed")
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise HardwareError(f"edge ({a}, {b}) out of range for {num_qubits} qubits")
            self.graph.add_edge(a, b)
        # Lazily-built caches; the graph is immutable after construction, so
        # they stay valid for the lifetime of the map.
        self._distance_matrix: Optional[np.ndarray] = None
        self._dag_cache: Dict[Tuple[int, int, Tuple[int, ...]], _PredecessorDAG] = {}
        self._path_cache: Dict[
            Tuple[int, int, int, Tuple[int, ...]], Tuple[int, ...]
        ] = {}
        self._weight_tokens: Dict[frozenset, int] = {}

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> List[Edge]:
        """Sorted list of undirected edges (a < b)."""
        return sorted((min(a, b), max(a, b)) for a, b in self.graph.edges())

    def degree(self, qubit: int) -> int:
        """Number of neighbours of a physical qubit."""
        return int(self.graph.degree(qubit))

    def neighbors(self, qubit: int) -> List[int]:
        """Physical qubits directly connected to ``qubit``."""
        return sorted(self.graph.neighbors(qubit))

    def is_connected(self) -> bool:
        """Whether the device graph is a single connected component."""
        return nx.is_connected(self.graph)

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether a two-qubit gate can run directly between ``a`` and ``b``."""
        return self.graph.has_edge(a, b)

    def has_triangle(self, a: int, b: int, c: int) -> bool:
        """Whether the three qubits are pairwise connected.

        The Trios second decomposition pass uses this to pick the 6-CNOT
        Toffoli (triangle present) versus the 8-CNOT linear one.
        """
        return (
            self.are_adjacent(a, b)
            and self.are_adjacent(b, c)
            and self.are_adjacent(a, c)
        )

    def linear_middle(self, a: int, b: int, c: int) -> Optional[int]:
        """If {a, b, c} are in a connected line, return the middle qubit.

        Returns ``None`` when the three qubits do not form a connected
        sub-line (i.e. no qubit is adjacent to both of the others).
        """
        for middle, (left, right) in ((a, (b, c)), (b, (a, c)), (c, (a, b))):
            if self.are_adjacent(middle, left) and self.are_adjacent(middle, right):
                return middle
        return None

    # ------------------------------------------------------------------
    # Distances and paths
    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """Dense all-pairs unweighted distance matrix (``-1`` = disconnected).

        Computed once and cached; :meth:`distance` and the routers' distance
        queries are plain array reads afterwards.
        """
        if self._distance_matrix is None:
            matrix = np.full((self.num_qubits, self.num_qubits), -1, dtype=np.int32)
            for source, lengths in nx.all_pairs_shortest_path_length(self.graph):
                for target, length in lengths.items():
                    matrix[source, target] = length
            matrix.setflags(write=False)
            self._distance_matrix = matrix
        return self._distance_matrix

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance (number of edges) between two physical qubits."""
        matrix = self.distance_matrix()
        if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
            raise HardwareError(f"qubits {a} and {b} out of range")
        value = int(matrix[a, b])
        if value < 0:
            raise HardwareError(f"qubits {a} and {b} are not connected")
        return value

    def _weight_token(self, weight: Optional[Mapping[Edge, float]]) -> int:
        """A small cache key identifying an edge-weight variant (0 = unweighted)."""
        if not weight:
            return 0
        key = frozenset(weight.items())
        token = self._weight_tokens.get(key)
        if token is None:
            token = len(self._weight_tokens) + 1
            self._weight_tokens[key] = token
        return token

    def _predecessor_dag(
        self,
        source: int,
        weight: Optional[Mapping[Edge, float]] = None,
        avoid: Tuple[int, ...] = (),
    ) -> _PredecessorDAG:
        """The cached shortest-path DAG from ``source`` for a weight/avoid variant."""
        key = (source, self._weight_token(weight), avoid)
        dag = self._dag_cache.get(key)
        if dag is None:
            blocked = frozenset(avoid)
            if source in blocked:
                raise HardwareError(f"source qubit {source} is in the avoid set")
            if weight:
                dag = _dijkstra_dag(self.graph, source, blocked, weight)
            else:
                dag = _bfs_dag(self.graph, source, blocked)
            self._dag_cache[key] = dag
        return dag

    def shortest_path(
        self,
        a: int,
        b: int,
        weight: Optional[Mapping[Edge, float]] = None,
        avoid: Tuple[int, ...] = (),
    ) -> List[int]:
        """A shortest path from ``a`` to ``b`` inclusive of both endpoints.

        Deterministic: repeated queries return the same path, which is
        memoized per (source, target, weights, avoid) so the routers never
        recompute it.

        Args:
            a: Source physical qubit.
            b: Destination physical qubit.
            weight: Optional per-edge weights (e.g. ``-log`` CNOT success rate
                for noise-aware routing).  Unweighted BFS is used when omitted.
            avoid: Physical qubits the path must not pass through.
        """
        weight = weight or None  # an empty mapping is the unweighted variant
        key = (a, b, self._weight_token(weight), avoid)
        cached = self._path_cache.get(key)
        if cached is None:
            graph = self.graph
            if avoid:
                blocked = set(avoid)
                graph = graph.subgraph(
                    [n for n in graph.nodes if n not in blocked]
                )
            try:
                if weight is None:
                    path = list(nx.shortest_path(graph, a, b))
                else:
                    def edge_weight(u: int, v: int, _attrs: dict) -> float:
                        return weight.get((min(u, v), max(u, v)), 1.0)
                    path = list(nx.shortest_path(graph, a, b, weight=edge_weight))
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise HardwareError(f"no path between qubits {a} and {b}") from exc
            cached = tuple(path)
            self._path_cache[key] = cached
        return list(cached)

    def sample_shortest_path(
        self,
        a: int,
        b: int,
        rng: random.Random,
        weight: Optional[Mapping[Edge, float]] = None,
        avoid: Tuple[int, ...] = (),
    ) -> List[int]:
        """A uniformly random tied shortest path from ``a`` to ``b``.

        Equivalent in distribution to enumerating every shortest path and
        picking one uniformly (the stochastic baseline's policy), but runs in
        O(path length) by sampling through the cached predecessor DAG.
        """
        dag = self._predecessor_dag(a, weight or None, avoid)
        if b not in dag.dist:
            raise HardwareError(f"no path between qubits {a} and {b}")
        return dag.sample_path(b, rng)

    def tied_path_count(
        self,
        a: int,
        b: int,
        weight: Optional[Mapping[Edge, float]] = None,
        avoid: Tuple[int, ...] = (),
    ) -> int:
        """Number of distinct tied shortest paths from ``a`` to ``b``."""
        dag = self._predecessor_dag(a, weight, avoid)
        if b not in dag.dist:
            raise HardwareError(f"no path between qubits {a} and {b}")
        return dag.counts[b]

    def path_length(self, a: int, b: int, weight: Optional[Mapping[Edge, float]] = None) -> float:
        """Length of the shortest path under the optional edge weights."""
        if weight is None:
            return float(self.distance(a, b))
        path = self.shortest_path(a, b, weight)
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += weight.get((min(u, v), max(u, v)), 1.0)
        return total

    def total_distance(self, qubits: Sequence[int]) -> int:
        """Sum of pairwise distances over a group of qubits.

        This is the "total swap distance" label used on the x axis of the
        paper's Figures 6-8 for qubit triplets.
        """
        total = 0
        qubits = list(qubits)
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                total += self.distance(qubits[i], qubits[j])
        return total

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def subgraph_is_connected(self, qubits: Sequence[int]) -> bool:
        """Whether the induced subgraph on ``qubits`` is connected."""
        sub = self.graph.subgraph(qubits)
        return len(sub) > 0 and nx.is_connected(sub)

    def triangles(self) -> List[Tuple[int, int, int]]:
        """All triangles (3-cliques) in the device graph."""
        found: Set[Tuple[int, int, int]] = set()
        for a, b in self.graph.edges():
            for c in set(self.graph.neighbors(a)) & set(self.graph.neighbors(b)):
                found.add(tuple(sorted((a, b, c))))  # type: ignore[arg-type]
        return sorted(found)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CouplingMap(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges)})"
        )
