"""Hardware coupling maps.

A :class:`CouplingMap` is an undirected graph whose nodes are the physical
qubits of a device and whose edges are the pairs that can execute a two-qubit
gate directly.  Both the routers and the mapping-aware Toffoli decomposition
query it for adjacency, shortest paths and triangles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..exceptions import HardwareError

Edge = Tuple[int, int]


class CouplingMap:
    """Connectivity graph of a quantum device."""

    def __init__(self, num_qubits: int, edges: Iterable[Edge], name: str = "device") -> None:
        if num_qubits < 1:
            raise HardwareError("a device needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise HardwareError(f"self-loop edge ({a}, {b}) is not allowed")
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise HardwareError(f"edge ({a}, {b}) out of range for {num_qubits} qubits")
            self.graph.add_edge(a, b)
        self._distance: Optional[Dict[int, Dict[int, int]]] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def edges(self) -> List[Edge]:
        """Sorted list of undirected edges (a < b)."""
        return sorted((min(a, b), max(a, b)) for a, b in self.graph.edges())

    def degree(self, qubit: int) -> int:
        """Number of neighbours of a physical qubit."""
        return int(self.graph.degree(qubit))

    def neighbors(self, qubit: int) -> List[int]:
        """Physical qubits directly connected to ``qubit``."""
        return sorted(self.graph.neighbors(qubit))

    def is_connected(self) -> bool:
        """Whether the device graph is a single connected component."""
        return nx.is_connected(self.graph)

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether a two-qubit gate can run directly between ``a`` and ``b``."""
        return self.graph.has_edge(a, b)

    def has_triangle(self, a: int, b: int, c: int) -> bool:
        """Whether the three qubits are pairwise connected.

        The Trios second decomposition pass uses this to pick the 6-CNOT
        Toffoli (triangle present) versus the 8-CNOT linear one.
        """
        return (
            self.are_adjacent(a, b)
            and self.are_adjacent(b, c)
            and self.are_adjacent(a, c)
        )

    def linear_middle(self, a: int, b: int, c: int) -> Optional[int]:
        """If {a, b, c} are in a connected line, return the middle qubit.

        Returns ``None`` when the three qubits do not form a connected
        sub-line (i.e. no qubit is adjacent to both of the others).
        """
        for middle, (left, right) in ((a, (b, c)), (b, (a, c)), (c, (a, b))):
            if self.are_adjacent(middle, left) and self.are_adjacent(middle, right):
                return middle
        return None

    # ------------------------------------------------------------------
    # Distances and paths
    # ------------------------------------------------------------------
    def _ensure_distances(self) -> Dict[int, Dict[int, int]]:
        if self._distance is None:
            self._distance = dict(nx.all_pairs_shortest_path_length(self.graph))
        return self._distance

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance (number of edges) between two physical qubits."""
        distances = self._ensure_distances()
        try:
            return int(distances[a][b])
        except KeyError as exc:
            raise HardwareError(f"qubits {a} and {b} are not connected") from exc

    def shortest_path(self, a: int, b: int, weight: Optional[Dict[Edge, float]] = None) -> List[int]:
        """A shortest path from ``a`` to ``b`` inclusive of both endpoints.

        Args:
            a: Source physical qubit.
            b: Destination physical qubit.
            weight: Optional per-edge weights (e.g. ``-log`` CNOT success rate
                for noise-aware routing).  Unweighted BFS is used when omitted.
        """
        try:
            if weight is None:
                return list(nx.shortest_path(self.graph, a, b))
            def edge_weight(u: int, v: int, _attrs: dict) -> float:
                return weight.get((min(u, v), max(u, v)), 1.0)
            return list(nx.shortest_path(self.graph, a, b, weight=edge_weight))
        except nx.NetworkXNoPath as exc:
            raise HardwareError(f"no path between qubits {a} and {b}") from exc

    def path_length(self, a: int, b: int, weight: Optional[Dict[Edge, float]] = None) -> float:
        """Length of the shortest path under the optional edge weights."""
        if weight is None:
            return float(self.distance(a, b))
        path = self.shortest_path(a, b, weight)
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += weight.get((min(u, v), max(u, v)), 1.0)
        return total

    def total_distance(self, qubits: Sequence[int]) -> int:
        """Sum of pairwise distances over a group of qubits.

        This is the "total swap distance" label used on the x axis of the
        paper's Figures 6-8 for qubit triplets.
        """
        total = 0
        qubits = list(qubits)
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                total += self.distance(qubits[i], qubits[j])
        return total

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def subgraph_is_connected(self, qubits: Sequence[int]) -> bool:
        """Whether the induced subgraph on ``qubits`` is connected."""
        sub = self.graph.subgraph(qubits)
        return len(sub) > 0 and nx.is_connected(sub)

    def triangles(self) -> List[Tuple[int, int, int]]:
        """All triangles (3-cliques) in the device graph."""
        found: Set[Tuple[int, int, int]] = set()
        for a, b in self.graph.edges():
            for c in set(self.graph.neighbors(a)) & set(self.graph.neighbors(b)):
                found.add(tuple(sorted((a, b, c))))  # type: ignore[arg-type]
        return sorted(found)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CouplingMap(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges)})"
        )
