"""The linter's rule set: structural, hardware-legality and resource checks.

Rules are small classes with a stable ``code`` (``QL0xx`` structural IR
invariants, ``QL1xx`` hardware legality, ``QL2xx`` resource/usage analyses),
a default :class:`~repro.analysis.diagnostics.Severity` and a ``check``
method that yields :class:`~repro.analysis.diagnostics.Diagnostic` objects.
All rules run over a shared :class:`LintContext` that pre-computes the DAG
walk once (linear positions, per-wire recounts), so a full lint stays O(n)
in the circuit size regardless of how many rules are registered.

Unlike the simulation-based equivalence harness (bounded at ~20 qubits),
every rule here is purely structural and runs at any width — this is the
machine check that covers the Figure 9/10 cells the dynamic verifier skips.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from ..circuits.dag import DagCircuit, DagNode
from ..hardware.target import Target
from .diagnostics import Diagnostic, Severity

#: Two-qubit gates whose unitary is symmetric under qubit exchange; QL102
#: (edge direction) never fires for these.
SYMMETRIC_2Q_GATES: Tuple[str, ...] = ("swap", "cz", "cp", "rzz")

#: Gate names allowed besides the target basis: non-unitary operations plus
#: the routing-internal ``swap`` (expanded by ``DecomposeSwapsPass``).
ALWAYS_LEGAL_NAMES: Tuple[str, ...] = ("measure", "reset", "barrier", "swap")


class LintContext:
    """Everything one lint run needs, computed once and shared by all rules."""

    def __init__(
        self,
        dag: DagCircuit,
        target: Optional[Target] = None,
        initial_layout: Optional[Dict[int, int]] = None,
        final_layout: Optional[Dict[int, int]] = None,
    ) -> None:
        self.dag = dag
        self.target = target
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        #: Nodes in linear (claimed topological) order, walked via ``_next``.
        self.linear: List[DagNode] = []
        #: Linear position of each node (by identity).
        self.position: Dict[DagNode, int] = {}
        node = dag.head
        guard = 0
        limit = len(dag) + 2  # a corrupted chain may disagree with _size
        while node is not None and guard <= limit:
            self.linear.append(node)
            self.position[node] = guard
            node = node.next_node
            guard += 1
        #: Wires (qubits and encoded clbits) each reachable node touches.
        self.wires_of: Dict[DagNode, List[int]] = {
            n: DagCircuit._wires_of(n.instruction) for n in self.linear
        }

    @property
    def num_qubits(self) -> int:
        return self.dag.num_qubits


class LintRule:
    """Base class: a stable code, a default severity, and a check generator."""

    code: str = "QL000"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Whether the rule needs a :class:`Target` to say anything.
    needs_target: bool = False

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def make(
        self,
        message: str,
        qubits: Tuple[int, ...] = (),
        node: Optional[DagNode] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a diagnostic carrying this rule's code and severity."""
        return Diagnostic(
            code=self.code,
            severity=severity if severity is not None else self.severity,
            message=message,
            qubits=qubits,
            node_index=node.index if node is not None else None,
            gate=node.name if node is not None else None,
        )


# ----------------------------------------------------------------------
# QL0xx — structural IR invariants
# ----------------------------------------------------------------------
class WireChainConsistencyRule(LintRule):
    """QL001: per-wire chains must be symmetric and match the node's wires."""

    code = "QL001"
    severity = Severity.ERROR
    description = "wire-chain links are asymmetric, broken or mismatched"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        dag = ctx.dag
        seen_wires: Set[int] = set()
        for node in ctx.linear:
            expected = ctx.wires_of[node]
            actual = sorted(node._wprev)
            if sorted(expected) != actual or sorted(node._wnext) != actual:
                yield self.make(
                    f"node {node.index} ({node.name}) is linked on wires "
                    f"{actual} but its instruction touches {sorted(expected)}",
                    qubits=node.qubits,
                    node=node,
                )
                continue
            for wire in expected:
                seen_wires.add(wire)
                nxt = node._wnext[wire]
                if nxt is not None and nxt._wprev.get(wire) is not node:
                    yield self.make(
                        f"wire {wire} chain is asymmetric after node "
                        f"{node.index} ({node.name}): its successor does not "
                        "link back",
                        qubits=node.qubits,
                        node=node,
                    )
                prev = node._wprev[wire]
                if prev is None and dag.wire_front(wire) is not node:
                    yield self.make(
                        f"node {node.index} ({node.name}) has no predecessor "
                        f"on wire {wire} but is not the wire's recorded front",
                        qubits=node.qubits,
                        node=node,
                    )
                if nxt is None and dag.wire_back(wire) is not node:
                    yield self.make(
                        f"node {node.index} ({node.name}) has no successor "
                        f"on wire {wire} but is not the wire's recorded back",
                        qubits=node.qubits,
                        node=node,
                    )
        for wire in list(dag._wire_first) + list(dag._wire_last):
            if wire not in seen_wires:
                yield self.make(
                    f"wire {wire} has recorded endpoints but no reachable "
                    "instruction touches it",
                    qubits=(wire,) if wire >= 0 else (),
                )
                seen_wires.add(wire)


class DanglingNodeRule(LintRule):
    """QL002: the linear chain must be symmetric, sized and fully in-DAG."""

    code = "QL002"
    severity = Severity.ERROR
    description = "dangling node or corrupted linear chain"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        dag = ctx.dag
        for node in ctx.linear:
            if not node._in_dag:
                yield self.make(
                    f"node {node.index} ({node.name}) is reachable from the "
                    "head but marked as removed",
                    qubits=node.qubits,
                    node=node,
                )
            nxt = node.next_node
            if nxt is not None and nxt.prev_node is not node:
                yield self.make(
                    f"linear chain is asymmetric after node {node.index} "
                    f"({node.name}): its successor does not link back",
                    qubits=node.qubits,
                    node=node,
                )
        if ctx.linear and dag.tail is not ctx.linear[-1]:
            yield self.make(
                "the DAG's recorded tail is not the last reachable node"
            )
        if len(ctx.linear) != len(dag):
            yield self.make(
                f"the DAG reports {len(dag)} nodes but {len(ctx.linear)} are "
                "reachable from the head"
            )


class DuplicateQubitArgsRule(LintRule):
    """QL003: an instruction must not name the same qubit twice."""

    code = "QL003"
    severity = Severity.ERROR
    description = "instruction applies a gate to a repeated qubit"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ctx.linear:
            qubits = node.qubits
            if len(set(qubits)) != len(qubits):
                yield self.make(
                    f"{node.name} applied to repeated qubit arguments {qubits}",
                    qubits=qubits,
                    node=node,
                )


class QubitRangeRule(LintRule):
    """QL004: every qubit must lie inside the DAG's declared register."""

    code = "QL004"
    severity = Severity.ERROR
    description = "qubit index outside the circuit register"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ctx.linear:
            for qubit in node.qubits:
                if not 0 <= qubit < ctx.num_qubits:
                    yield self.make(
                        f"{node.name} touches qubit {qubit}, outside the "
                        f"{ctx.num_qubits}-qubit register",
                        qubits=node.qubits,
                        node=node,
                    )


class TopologicalOrderRule(LintRule):
    """QL005: wire-chain order must agree with the linear (topological) order."""

    code = "QL005"
    severity = Severity.ERROR
    description = "wire chain disagrees with the linear instruction order"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ctx.linear:
            base = ctx.position[node]
            for wire, nxt in node._wnext.items():
                if nxt is None:
                    continue
                successor_position = ctx.position.get(nxt)
                if successor_position is None or successor_position <= base:
                    yield self.make(
                        f"wire {wire} orders node {node.index} ({node.name}) "
                        f"before node {nxt.index} ({nxt.name}) but the linear "
                        "order disagrees",
                        qubits=node.qubits,
                        node=node,
                    )


# ----------------------------------------------------------------------
# QL1xx — hardware legality (need a Target)
# ----------------------------------------------------------------------
class CouplingEdgeRule(LintRule):
    """QL101: every two-qubit unitary must act on a coupled pair."""

    code = "QL101"
    severity = Severity.ERROR
    description = "two-qubit gate on a pair the device does not couple"
    needs_target = True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        assert ctx.target is not None
        coupling_map = ctx.target.coupling_map
        for node in ctx.linear:
            gate = node.instruction.gate
            if not gate.is_unitary or gate.num_qubits != 2:
                continue
            a, b = node.qubits
            if a == b or not 0 <= a < coupling_map.num_qubits \
                    or not 0 <= b < coupling_map.num_qubits:
                continue  # QL003/QL104 report these
            if not coupling_map.are_adjacent(a, b):
                yield self.make(
                    f"{node.name} on qubits ({a}, {b}) but the device has no "
                    f"({a}, {b}) coupling",
                    qubits=node.qubits,
                    node=node,
                )


class EdgeDirectionRule(LintRule):
    """QL102: direction-sensitive gates must follow the native edge direction.

    Only meaningful when the target declares ``directed_edges``; devices
    modelled with an undirected coupling map (the paper's) skip this rule.
    Exchange-symmetric gates (``cz``, ``cp``, ``rzz``, ``swap``) are exempt.
    """

    code = "QL102"
    severity = Severity.ERROR
    description = "two-qubit gate against the native edge direction"
    needs_target = True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        assert ctx.target is not None
        directed = ctx.target.directed_edges
        if not directed:
            return
        for node in ctx.linear:
            gate = node.instruction.gate
            if not gate.is_unitary or gate.num_qubits != 2:
                continue
            if node.name in SYMMETRIC_2Q_GATES:
                continue
            pair = (node.qubits[0], node.qubits[1])
            if pair not in directed and (pair[1], pair[0]) in directed:
                yield self.make(
                    f"{node.name} on qubits {pair} runs against the native "
                    f"direction; the device only drives ({pair[1]}, {pair[0]})",
                    qubits=node.qubits,
                    node=node,
                )


class BasisGateRule(LintRule):
    """QL103: gates should belong to the target's native basis.

    Multi-qubit gates outside the basis are errors (the hardware cannot run
    them); single-qubit strays are warnings — any 1q unitary is trivially
    synthesisable into ``u3``, so they cost a synthesis step, not
    executability.
    """

    code = "QL103"
    severity = Severity.ERROR
    description = "gate outside the target's basis gate set"
    needs_target = True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        assert ctx.target is not None
        legal = set(ctx.target.basis_gates) | set(ALWAYS_LEGAL_NAMES)
        for node in ctx.linear:
            gate = node.instruction.gate
            if not gate.is_unitary or node.name in legal:
                continue
            if gate.num_qubits == 1:
                yield self.make(
                    f"1q gate {node.name!r} is outside the "
                    f"{'/'.join(ctx.target.basis_gates)} basis (synthesisable)",
                    qubits=node.qubits,
                    node=node,
                    severity=Severity.WARNING,
                )
            else:
                yield self.make(
                    f"{gate.num_qubits}q gate {node.name!r} is outside the "
                    f"{'/'.join(ctx.target.basis_gates)} basis",
                    qubits=node.qubits,
                    node=node,
                )


class DeviceSizeRule(LintRule):
    """QL104: every qubit must exist on the device."""

    code = "QL104"
    severity = Severity.ERROR
    description = "qubit index outside the device"
    needs_target = True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        assert ctx.target is not None
        device_size = ctx.target.num_qubits
        for node in ctx.linear:
            for qubit in node.qubits:
                if qubit >= device_size:
                    yield self.make(
                        f"{node.name} touches qubit {qubit} but the device "
                        f"has only {device_size} qubits",
                        qubits=node.qubits,
                        node=node,
                    )


class LayoutValidityRule(LintRule):
    """QL105: the recorded layouts must be valid device permutations."""

    code = "QL105"
    severity = Severity.ERROR
    description = "initial/final layout is not a valid placement"
    needs_target = True

    def _check_one(
        self, which: str, mapping: Dict[int, int], device_size: int
    ) -> Iterator[Diagnostic]:
        used: Dict[int, int] = {}
        for logical, physical in mapping.items():
            if not 0 <= physical < device_size:
                yield self.make(
                    f"{which} layout places logical qubit {logical} on "
                    f"physical qubit {physical}, outside the "
                    f"{device_size}-qubit device",
                    qubits=(physical,),
                )
            if physical in used:
                yield self.make(
                    f"{which} layout places logical qubits {used[physical]} "
                    f"and {logical} on the same physical qubit {physical}",
                    qubits=(physical,),
                )
            used[physical] = logical
        expected = set(range(len(mapping)))
        if set(mapping) != expected:
            yield self.make(
                f"{which} layout does not cover logical qubits 0.."
                f"{len(mapping) - 1} (got {sorted(mapping)})"
            )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        assert ctx.target is not None
        device_size = ctx.target.num_qubits
        for which, mapping in (
            ("initial", ctx.initial_layout),
            ("final", ctx.final_layout),
        ):
            if mapping is not None:
                yield from self._check_one(which, mapping, device_size)
        if ctx.initial_layout is not None and ctx.final_layout is not None:
            if set(ctx.initial_layout) != set(ctx.final_layout):
                yield self.make(
                    "initial and final layouts place different logical qubits"
                )


class MultiQubitGateRule(LintRule):
    """QL106: three-or-more-qubit unitaries cannot execute on hardware."""

    code = "QL106"
    severity = Severity.ERROR
    description = "unitary acting on three or more qubits"
    needs_target = True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ctx.linear:
            gate = node.instruction.gate
            if gate.is_unitary and gate.num_qubits >= 3:
                yield self.make(
                    f"{gate.num_qubits}q unitary {node.name!r} has no native "
                    "implementation; decompose it first",
                    qubits=node.qubits,
                    node=node,
                )


# ----------------------------------------------------------------------
# QL2xx — resource / usage analyses
# ----------------------------------------------------------------------
class IdleQubitRule(LintRule):
    """QL201: device/register qubits no instruction ever touches."""

    code = "QL201"
    severity = Severity.INFO
    description = "qubits never used by any instruction"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        touched: Set[int] = set()
        for node in ctx.linear:
            touched.update(node.qubits)
        idle = sorted(set(range(ctx.num_qubits)) - touched)
        if idle:
            yield self.make(
                f"{len(idle)} of {ctx.num_qubits} qubits are never used: "
                f"{idle}",
                qubits=tuple(idle),
            )


class MeasurementCoverageRule(LintRule):
    """QL202: active qubits should be measured.

    A circuit with no measurements at all gets one finding (common for
    unitary benchmarks); otherwise each active-but-unmeasured qubit is
    reported individually — the classic "dropped measurement" bug.
    """

    code = "QL202"
    severity = Severity.WARNING
    description = "active qubit is never measured"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        active: Set[int] = set()
        measured: Set[int] = set()
        for node in ctx.linear:
            if node.name == "measure":
                measured.update(node.qubits)
            elif node.instruction.gate.is_unitary:
                active.update(node.qubits)
        if not measured:
            if active:
                yield self.make(
                    "circuit contains no measurements; results are "
                    "unobservable"
                )
            return
        for qubit in sorted(active - measured):
            yield self.make(
                f"qubit {qubit} is operated on but never measured",
                qubits=(qubit,),
            )


class ClobberedClbitRule(LintRule):
    """QL203: a classical bit written by more than one measurement."""

    code = "QL203"
    severity = Severity.WARNING
    description = "classical bit overwritten by a second measurement"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        writer: Dict[int, DagNode] = {}
        for node in ctx.linear:
            if node.name != "measure":
                continue
            for clbit in node.clbits:
                if clbit in writer:
                    yield self.make(
                        f"measurement into clbit {clbit} overwrites the "
                        f"result recorded by node {writer[clbit].index}",
                        qubits=node.qubits,
                        node=node,
                    )
                writer[clbit] = node


class OperationAfterMeasureRule(LintRule):
    """QL204: a unitary applied to a qubit after its final measurement."""

    code = "QL204"
    severity = Severity.WARNING
    description = "gate applied after the qubit was measured"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        measured_at: Dict[int, DagNode] = {}
        for node in ctx.linear:
            if node.name == "measure":
                for qubit in node.qubits:
                    measured_at[qubit] = node
                continue
            if not node.instruction.gate.is_unitary:
                continue
            for qubit in node.qubits:
                if qubit in measured_at:
                    yield self.make(
                        f"{node.name} acts on qubit {qubit} after it was "
                        f"measured (node {measured_at[qubit].index}); the "
                        "result no longer reflects the final state",
                        qubits=node.qubits,
                        node=node,
                    )
                    del measured_at[qubit]  # one finding per measurement


class AncillaReturnRule(LintRule):
    """QL205: an ancilla wire whose last operation is a 1q non-identity gate.

    With a final layout available, device wires that carry no program qubit
    at the end of the circuit are ancillas and must return to |0⟩.  A full
    check needs simulation, but one failure mode is visible statically: a
    correctly compiled circuit never *ends* an ancilla wire with a
    single-qubit gate (a trailing 1q gate marks the final home of some
    program qubit), so a non-identity 1q tail on an ancilla wire is a
    leftover that likely perturbs the ancilla's state.
    """

    code = "QL205"
    severity = Severity.WARNING
    description = "ancilla wire ends in a non-identity single-qubit gate"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.final_layout is None:
            return
        data_wires = set(ctx.final_layout.values())
        for wire in range(ctx.num_qubits):
            if wire in data_wires:
                continue
            tail = ctx.dag.wire_back(wire)
            if tail is None:
                continue
            gate = tail.instruction.gate
            if (
                gate.is_unitary
                and gate.num_qubits == 1
                and not gate.is_identity()
            ):
                yield self.make(
                    f"ancilla wire {wire} ends with {tail.name}; ancillas "
                    "must be returned to |0⟩ for the routed circuit to be "
                    "equivalent",
                    qubits=(wire,),
                    node=tail,
                )


#: Every registered rule, in code order.  ``CircuitLinter`` instantiates from
#: this list; new rules only need to be appended here.
ALL_RULES: Tuple[Type[LintRule], ...] = (
    WireChainConsistencyRule,
    DanglingNodeRule,
    DuplicateQubitArgsRule,
    QubitRangeRule,
    TopologicalOrderRule,
    CouplingEdgeRule,
    EdgeDirectionRule,
    BasisGateRule,
    DeviceSizeRule,
    LayoutValidityRule,
    MultiQubitGateRule,
    IdleQubitRule,
    MeasurementCoverageRule,
    ClobberedClbitRule,
    OperationAfterMeasureRule,
    AncillaReturnRule,
)

#: ``code -> rule class`` for suppression validation and documentation.
RULES_BY_CODE: Dict[str, Type[LintRule]] = {
    rule.code: rule for rule in ALL_RULES
}
