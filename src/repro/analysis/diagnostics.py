"""Structured findings emitted by the circuit linter.

Every rule in :mod:`repro.analysis.rules` reports :class:`Diagnostic` objects
with a stable code (``QL001`` ...), a :class:`Severity`, a human-readable
message, and — when the finding is anchored to a specific instruction — the
DAG node's creation index and qubits, so a caller can map the finding back to
the offending instruction.  A :class:`LintReport` bundles the findings of one
lint run with filtering, table/JSON rendering and the suppression bookkeeping
used by the ``repro lint`` CLI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union


class Severity(enum.Enum):
    """How serious a lint finding is.

    ``ERROR`` findings mean the circuit cannot be executed as-is (illegal
    edge, out-of-range qubit, corrupted IR); ``WARNING`` findings are likely
    mistakes that still execute (missing measurement, non-basis 1q gate);
    ``INFO`` findings are observations (idle device qubits).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric severity for sorting: higher is more severe."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule, anchored to the IR where possible."""

    code: str
    severity: Severity
    message: str
    #: Qubits (or device wires) the finding concerns, when applicable.
    qubits: Tuple[int, ...] = ()
    #: Creation index of the offending DAG node (``DagNode.index``), if any.
    node_index: Optional[int] = None
    #: Name of the offending instruction's gate, if any.
    gate: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``--format json`` payload)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "qubits": list(self.qubits),
            "node_index": self.node_index,
            "gate": self.gate,
        }

    def __str__(self) -> str:
        anchor = ""
        if self.node_index is not None:
            anchor = f" [node {self.node_index}]"
        return f"{self.code} {self.severity.value}: {self.message}{anchor}"


class LintReport:
    """The findings of one :class:`~repro.analysis.linter.CircuitLinter` run."""

    def __init__(
        self,
        diagnostics: Iterable[Diagnostic] = (),
        suppressed: Iterable[str] = (),
        subject: str = "",
    ) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        #: Rule codes excluded from this run (per-rule suppression).
        self.suppressed: Tuple[str, ...] = tuple(suppressed)
        #: Human-readable name of what was linted (circuit name, file path).
        self.subject = subject

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # ------------------------------------------------------------------
    def by_code(self, code: str) -> List[Diagnostic]:
        """All findings with the given rule code."""
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        """Distinct rule codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def at_severity(self, severity: Union[Severity, str]) -> List[Diagnostic]:
        """All findings at exactly the given severity."""
        if isinstance(severity, str):
            severity = Severity(severity)
        return [d for d in self.diagnostics if d.severity is severity]

    def errors(self) -> List[Diagnostic]:
        """The error-severity findings (what fails a lint gate)."""
        return self.at_severity(Severity.ERROR)

    def warnings(self) -> List[Diagnostic]:
        return self.at_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    # ------------------------------------------------------------------
    def sorted(self) -> List[Diagnostic]:
        """Findings ordered most-severe first, then by code, then by anchor."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                -d.severity.rank,
                d.code,
                d.node_index if d.node_index is not None else -1,
            ),
        )

    def summary(self) -> str:
        """One-line tally, e.g. ``"2 errors, 1 warning, 3 info"``."""
        counts = {
            Severity.ERROR: 0,
            Severity.WARNING: 0,
            Severity.INFO: 0,
        }
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        parts = []
        for severity, noun in (
            (Severity.ERROR, "error"),
            (Severity.WARNING, "warning"),
            (Severity.INFO, "info"),
        ):
            count = counts[severity]
            plural = "s" if count != 1 and noun != "info" else ""
            parts.append(f"{count} {noun}{plural}")
        return ", ".join(parts)

    def to_table(self) -> str:
        """Fixed-width diagnostic table (the default ``repro lint`` output)."""
        if not self.diagnostics:
            return "no findings"
        rows = [("code", "severity", "node", "qubits", "message")]
        for diagnostic in self.sorted():
            rows.append(
                (
                    diagnostic.code,
                    diagnostic.severity.value,
                    "-" if diagnostic.node_index is None else str(diagnostic.node_index),
                    ",".join(map(str, diagnostic.qubits)) or "-",
                    diagnostic.message,
                )
            )
        widths = [
            max(len(row[column]) for row in rows) for column in range(4)
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(
                    [row[column].ljust(widths[column]) for column in range(4)]
                    + [row[4]]
                )
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths) + "  " + "-" * 7)
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready representation of the whole report."""
        return {
            "subject": self.subject,
            "summary": self.summary(),
            "suppressed": list(self.suppressed),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LintReport({self.subject!r}, {self.summary()})"
