"""Static analysis over the DAG IR: linting, diagnostics and pass contracts.

This package is the compiler's *static* safety net, complementing the
simulation-based :mod:`repro.sim.equivalence` harness (which is exact but
bounded at ~20 qubits).  Everything here is structural and runs at any
circuit width:

* :class:`CircuitLinter` — rule-based checks over circuits/DAGs/compilation
  results, emitting :class:`Diagnostic` findings with stable ``QLxxx`` codes;
* :class:`ContractValidator` — enforces the ``requires``/``establishes``/
  ``preserves``/``invalidates`` contracts every pass declares, hooked into
  ``PassManager(validate="contracts"|"full")``;
* the ``repro lint`` CLI subcommand (see :mod:`repro.experiments.cli`).
"""

from .contracts import (
    PROPERTY_CHECKERS,
    VALIDATE_ENV_VAR,
    VALIDATION_MODES,
    ContractValidator,
    resolve_validation_mode,
)
from .diagnostics import Diagnostic, LintReport, Severity
from .linter import CircuitLinter, lint_circuit, structural_linter
from .rules import ALL_RULES, RULES_BY_CODE, LintContext, LintRule

__all__ = [
    "ALL_RULES",
    "PROPERTY_CHECKERS",
    "RULES_BY_CODE",
    "VALIDATE_ENV_VAR",
    "VALIDATION_MODES",
    "CircuitLinter",
    "ContractValidator",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "Severity",
    "lint_circuit",
    "resolve_validation_mode",
    "structural_linter",
]
