"""Pass contracts: declared pipeline invariants, checked between stages.

Every pass declares four class attributes (defaulted on
:class:`~repro.passes.base.BasePass`):

* ``requires`` — properties that must hold *before* the pass runs
  (``MappingAwareToffoliDecomposePass`` requires ``"routed_toffoli"``);
* ``establishes`` — properties guaranteed to hold after the pass
  (``GreedySwapRouter`` establishes ``"routed"``);
* ``invalidates`` — properties the pass may destroy (every transformation
  invalidates ``"scheduled"`` by default);
* ``checks`` — per-pass assertions evaluated after every execution
  (``"gate_count_nonincreasing"`` on the cancellation passes).

:class:`ContractValidator` hooks into :meth:`PassManager.run <repro.passes.base.PassManager.run>`
and tracks each property as *held*, *absent* (explicitly invalidated) or
*unknown* (never mentioned).  A ``requires`` clause is only violated when the
property is known-absent — partial pipelines built by tests start with every
property unknown and stay valid.  In ``"full"`` mode the validator
additionally re-verifies checkable held properties against the actual DAG
after every pass and runs the structural QL00x lint rules, so the first pass
that corrupts the IR or un-routes the circuit is named in the error and in
``properties["contract_violation"]``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Set

from ..circuits.dag import DagCircuit
from ..exceptions import AnalysisError, ContractViolationError
from .linter import structural_linter

#: The recognised validation modes, in increasing strictness.
VALIDATION_MODES = ("off", "contracts", "full")

#: Environment variable consulted when no explicit mode is given.  The test
#: suite and CI export ``REPRO_VALIDATE=full`` so every pipeline they build is
#: checked; library users get ``off`` unless they opt in.
VALIDATE_ENV_VAR = "REPRO_VALIDATE"


def resolve_validation_mode(value) -> str:
    """Normalise a ``validate=`` argument into ``"off"|"contracts"|"full"``.

    ``None`` defers to the ``REPRO_VALIDATE`` environment variable (default
    ``"off"``); booleans map to ``"contracts"``/``"off"``; strings must be one
    of the recognised modes.
    """
    if value is None:
        value = os.environ.get(VALIDATE_ENV_VAR, "off") or "off"
    if value is False:
        return "off"
    if value is True:
        return "contracts"
    if isinstance(value, str):
        mode = value.lower()
        if mode in ("none",):
            return "off"
        if mode in VALIDATION_MODES:
            return mode
    raise AnalysisError(
        f"invalid validation mode {value!r}; expected one of "
        f"{', '.join(VALIDATION_MODES)} (or True/False/None)"
    )


# ----------------------------------------------------------------------
# Property checkers (the "full" mode re-verification).  Each returns None
# when the property genuinely holds on the DAG, a human-readable detail
# string when it does not, and None-without-checking when the needed context
# (e.g. a coupling map) is unavailable.
# ----------------------------------------------------------------------
def _check_routed(dag: DagCircuit, properties) -> Optional[str]:
    coupling_map = properties.get("coupling_map")
    if coupling_map is None:
        return None
    for node in dag:
        gate = node.instruction.gate
        if not gate.is_unitary:
            continue
        if gate.num_qubits == 2:
            a, b = node.qubits
            if not coupling_map.are_adjacent(a, b):
                return (
                    f"{node.name} on non-adjacent qubits ({a}, {b}) "
                    f"[node {node.index}]"
                )
        elif gate.num_qubits >= 3:
            return (
                f"{gate.num_qubits}q unitary {node.name!r} survives routing "
                f"[node {node.index}]"
            )
    return None


def _check_routed_toffoli(dag: DagCircuit, properties) -> Optional[str]:
    """Like ``routed``, but 3q Toffoli-family gates on connected trios are ok."""
    coupling_map = properties.get("coupling_map")
    if coupling_map is None:
        return None
    for node in dag:
        gate = node.instruction.gate
        if not gate.is_unitary:
            continue
        if gate.num_qubits == 2:
            a, b = node.qubits
            if not coupling_map.are_adjacent(a, b):
                return (
                    f"{node.name} on non-adjacent qubits ({a}, {b}) "
                    f"[node {node.index}]"
                )
        elif gate.num_qubits == 3 and node.name in ("ccx", "ccz", "cswap"):
            a, b, c = node.qubits
            adjacent = sum(
                coupling_map.are_adjacent(x, y)
                for x, y in ((a, b), (a, c), (b, c))
            )
            if adjacent < 2:
                return (
                    f"{node.name} trio ({a}, {b}, {c}) is not connected on "
                    f"the device [node {node.index}]"
                )
        elif gate.num_qubits >= 3:
            return (
                f"{gate.num_qubits}q unitary {node.name!r} survives trio "
                f"routing [node {node.index}]"
            )
    return None


def _check_decomposed(dag: DagCircuit, properties) -> Optional[str]:
    for node in dag:
        gate = node.instruction.gate
        if gate.is_unitary and gate.num_qubits >= 3:
            return (
                f"{gate.num_qubits}q unitary {node.name!r} survives "
                f"decomposition [node {node.index}]"
            )
    return None


def _check_swaps_expanded(dag: DagCircuit, properties) -> Optional[str]:
    for node in dag:
        if node.name == "swap":
            return f"swap gate survives expansion [node {node.index}]"
    return None


#: ``property name -> checker``.  Properties without a checker (``scheduled``,
#: ``unitary_equivalent``) are tracked declaratively only — ``full`` mode
#: cannot re-derive them statically.
PROPERTY_CHECKERS: Dict[str, Callable[[DagCircuit, dict], Optional[str]]] = {
    "routed": _check_routed,
    "routed_toffoli": _check_routed_toffoli,
    "decomposed": _check_decomposed,
    "swaps_expanded": _check_swaps_expanded,
}


class ContractValidator:
    """Checks declared pass contracts during one :class:`PassManager` run.

    The validator is stateful across the run: it remembers which properties
    are held (some pass established them), which are absent (some pass
    invalidated them and nothing re-established them), and treats everything
    else as unknown.  One instance validates one run.
    """

    def __init__(self, mode: str = "contracts") -> None:
        self.mode = resolve_validation_mode(mode)
        self._held: Set[str] = set()
        self._absent: Set[str] = set()
        self._invalidated_by: Dict[str, str] = {}
        self._size_before = 0
        self._structural = structural_linter() if self.mode == "full" else None

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def held(self) -> Set[str]:
        """The properties currently known to hold (a copy)."""
        return set(self._held)

    # ------------------------------------------------------------------
    def before_pass(self, single_pass, dag: DagCircuit, properties) -> None:
        """Validate ``requires`` clauses and snapshot pre-pass state."""
        if not self.enabled:
            return
        self._size_before = len(dag)
        for required in getattr(single_pass, "requires", ()):
            if required in self._absent:
                culprit = self._invalidated_by.get(required, "an earlier pass")
                self._violate(
                    single_pass,
                    properties,
                    required,
                    f"requires {required!r}, which was invalidated by "
                    f"{culprit} and never re-established",
                    kind="requires",
                )

    def after_pass(self, single_pass, dag: DagCircuit, properties) -> None:
        """Run ``checks``, update the property state, re-verify in full mode."""
        if not self.enabled:
            return
        for check in getattr(single_pass, "checks", ()):
            self._run_check(single_pass, check, dag, properties)

        preserves = getattr(single_pass, "preserves", "*")
        if preserves != "*":
            kept = set(preserves)
            for prop in list(self._held):
                if prop not in kept:
                    self._held.discard(prop)  # unknown now, not absent
        for prop in getattr(single_pass, "invalidates", ()):
            self._held.discard(prop)
            self._absent.add(prop)
            self._invalidated_by[prop] = single_pass.name
        for prop in getattr(single_pass, "establishes", ()):
            self._held.add(prop)
            self._absent.discard(prop)

        if self.mode == "full":
            self._verify_structure(single_pass, dag, properties)
            self._verify_held(single_pass, dag, properties)

    # ------------------------------------------------------------------
    def _run_check(self, single_pass, check: str, dag, properties) -> None:
        if check == "gate_count_nonincreasing":
            if len(dag) > self._size_before:
                self._violate(
                    single_pass,
                    properties,
                    check,
                    f"grew the circuit from {self._size_before} to "
                    f"{len(dag)} instructions",
                    kind="check",
                )
        # other check names ("unitary_equivalent") are declarative metadata
        # for tooling; they have no static checker

    def _verify_structure(self, single_pass, dag, properties) -> None:
        assert self._structural is not None
        report = self._structural.lint(dag)
        if report.has_errors:
            first = report.errors()[0]
            self._violate(
                single_pass,
                properties,
                first.code,
                f"corrupted the IR: {first.message}",
                kind="structure",
            )

    def _verify_held(self, single_pass, dag, properties) -> None:
        for prop in sorted(self._held):
            checker = PROPERTY_CHECKERS.get(prop)
            if checker is None:
                continue
            detail = checker(dag, properties)
            if detail is not None:
                self._violate(
                    single_pass,
                    properties,
                    prop,
                    f"broke held invariant {prop!r}: {detail}",
                    kind="invariant",
                )

    # ------------------------------------------------------------------
    def _violate(
        self, single_pass, properties, invariant: str, detail: str, kind: str
    ) -> None:
        """Record the violation in telemetry, then raise naming the pass."""
        record = {
            "pass": single_pass.name,
            "stage": properties.get("_current_stage"),
            "kind": kind,
            "invariant": invariant,
            "detail": detail,
        }
        properties["contract_violation"] = record
        raise ContractViolationError(
            f"pass {single_pass.name!r} "
            f"(stage {properties.get('_current_stage')!r}) {detail}"
        )
