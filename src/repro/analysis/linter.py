"""The circuit linter: run every registered rule over a circuit or DAG.

:class:`CircuitLinter` is the front door of :mod:`repro.analysis`.  It accepts
a :class:`~repro.circuits.circuit.QuantumCircuit`, a
:class:`~repro.circuits.dag.DagCircuit` or a
:class:`~repro.compiler.result.CompilationResult`, runs the structural rules
always and the hardware-legality rules when a target is available, and returns
a :class:`~repro.analysis.diagnostics.LintReport`.

::

    from repro.analysis import CircuitLinter

    report = CircuitLinter(target=target).lint(result)
    if report.has_errors:
        print(report.to_table())
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Type, Union

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import DagCircuit
from ..exceptions import AnalysisError
from ..hardware.target import Target
from ..hardware.topology import CouplingMap
from .diagnostics import Diagnostic, LintReport
from .rules import ALL_RULES, RULES_BY_CODE, LintContext, LintRule

#: Codes of the purely structural IR rules (run by the contract validator's
#: ``full`` mode after every pass, where no layout/target context applies).
STRUCTURAL_CODES: Tuple[str, ...] = ("QL001", "QL002", "QL003", "QL004", "QL005")


def _as_mapping(layout) -> Optional[Dict[int, int]]:
    """Normalise a layout argument (dict, ``Layout`` object or None) to a dict."""
    if layout is None:
        return None
    if isinstance(layout, dict):
        return layout
    to_dict = getattr(layout, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise AnalysisError(
        f"expected a layout mapping or Layout, got {type(layout).__name__}"
    )


class CircuitLinter:
    """Run lint rules over circuits, DAGs or compilation results.

    Parameters
    ----------
    target:
        Device model to check hardware legality against.  Accepts a
        :class:`Target` or a bare :class:`CouplingMap` (wrapped via
        :meth:`Target.of`).  Without one, only target-independent rules run.
    suppress:
        Rule codes (``"QL202"``) to exclude.  Unknown codes raise
        :class:`~repro.exceptions.AnalysisError` immediately rather than
        silently suppressing nothing.
    rules:
        Explicit rule classes to run instead of the full registry — used by
        the contract validator to run just the structural subset.
    """

    def __init__(
        self,
        target: Optional[Union[Target, CouplingMap]] = None,
        suppress: Iterable[str] = (),
        rules: Optional[Sequence[Type[LintRule]]] = None,
    ) -> None:
        self.target = Target.of(target) if target is not None else None
        self.suppress: Tuple[str, ...] = tuple(suppress)
        for code in self.suppress:
            if code not in RULES_BY_CODE:
                known = ", ".join(sorted(RULES_BY_CODE))
                raise AnalysisError(
                    f"cannot suppress unknown rule code {code!r}; known codes "
                    f"are {known}"
                )
        rule_classes = tuple(rules) if rules is not None else ALL_RULES
        self.rules: Tuple[LintRule, ...] = tuple(
            rule_class()
            for rule_class in rule_classes
            if rule_class.code not in self.suppress
        )

    # ------------------------------------------------------------------
    def lint(
        self,
        subject: Union[QuantumCircuit, DagCircuit, "object"],
        *,
        initial_layout: Optional[Dict[int, int]] = None,
        final_layout: Optional[Dict[int, int]] = None,
        name: str = "",
    ) -> LintReport:
        """Lint a circuit, DAG or compilation result.

        A :class:`~repro.compiler.result.CompilationResult` carries its own
        layouts and target; explicit keyword arguments override them.
        """
        dag, ctx_name, result_initial, result_final, result_target = (
            self._unpack(subject)
        )
        target = self.target if self.target is not None else result_target
        ctx = LintContext(
            dag,
            target=target,
            initial_layout=_as_mapping(
                initial_layout if initial_layout is not None else result_initial
            ),
            final_layout=_as_mapping(
                final_layout if final_layout is not None else result_final
            ),
        )
        diagnostics: list[Diagnostic] = []
        for rule in self.rules:
            if rule.needs_target and target is None:
                continue
            diagnostics.extend(rule.check(ctx))
        return LintReport(
            diagnostics,
            suppressed=self.suppress,
            subject=name or ctx_name,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _unpack(subject):
        """Normalise the lint subject into (dag, name, layouts, target)."""
        if isinstance(subject, DagCircuit):
            return subject, subject.name, None, None, None
        if isinstance(subject, QuantumCircuit):
            return (
                DagCircuit.from_circuit(subject),
                subject.name,
                None,
                None,
                None,
            )
        # CompilationResult (structural duck-check avoids an import cycle:
        # compiler.result imports this module for its lint() convenience).
        circuit = getattr(subject, "circuit", None)
        if isinstance(circuit, QuantumCircuit):
            target = getattr(subject, "target", None)
            if target is None:
                coupling_map = getattr(subject, "coupling_map", None)
                if coupling_map is not None:
                    target = Target.of(coupling_map)
            return (
                DagCircuit.from_circuit(circuit),
                circuit.name,
                getattr(subject, "initial_layout", None),
                getattr(subject, "final_layout", None),
                target,
            )
        raise AnalysisError(
            "lint() expects a QuantumCircuit, DagCircuit or "
            f"CompilationResult, got {type(subject).__name__}"
        )


def structural_linter() -> CircuitLinter:
    """A linter restricted to the QL00x structural IR invariants.

    This is what ``PassManager(validate="full")`` runs after every pass:
    target-independent, layout-independent, O(n) in the circuit.
    """
    return CircuitLinter(
        rules=[RULES_BY_CODE[code] for code in STRUCTURAL_CODES]
    )


def lint_circuit(
    subject,
    target: Optional[Union[Target, CouplingMap]] = None,
    suppress: Iterable[str] = (),
    **kwargs,
) -> LintReport:
    """One-shot convenience: ``lint_circuit(result)``."""
    return CircuitLinter(target=target, suppress=suppress).lint(
        subject, **kwargs
    )
