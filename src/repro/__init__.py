"""repro: a reproduction of "Orchestrated Trios" (ASPLOS 2021).

The package implements, from scratch, the full toolchain the paper needs:

* a quantum-circuit IR and standard gate library (:mod:`repro.circuits`),
* statevector/unitary simulation, noisy samplers and the paper's analytic
  success-probability model (:mod:`repro.sim`),
* the four 20-qubit device topologies and the Johannesburg calibration
  (:mod:`repro.hardware`),
* the compiler passes — decomposition, layout, baseline routing, Trios
  three-qubit routing, mapping-aware Toffoli decomposition, optimisation and
  scheduling (:mod:`repro.passes`),
* the two end-to-end pipelines compared in the paper (:mod:`repro.compiler`),
* every benchmark circuit of Table 1 (:mod:`repro.bench_circuits`),
* harnesses that regenerate each figure and table (:mod:`repro.experiments`),
  and
* the fault-tolerant execution runtime behind every parallel fan-out —
  per-cell timeouts, seeded-backoff retries, crash recovery and a
  deterministic fault-injection harness (:mod:`repro.runtime`), and
* the unified observability layer — hierarchical spans over every compiler
  pass, runtime cell attempt and simulator call, a metrics registry, and
  Chrome trace-event export; a zero-overhead no-op until enabled
  (:mod:`repro.obs`).

Quickstart::

    from repro.bench_circuits import cuccaro_adder
    from repro.compiler import compile_baseline, compile_trios
    from repro.hardware import johannesburg, near_term_calibration

    device = johannesburg()
    circuit = cuccaro_adder(num_bits=9)
    base = compile_baseline(circuit, device)
    trios = compile_trios(circuit, device)
    print(base.two_qubit_gate_count, "->", trios.two_qubit_gate_count)
    cal = near_term_calibration()
    print(base.success_probability(cal), "->", trios.success_probability(cal))
"""

from .circuits import QuantumCircuit, Gate, Instruction
from .compiler import compile_baseline, compile_trios, transpile, CompilationResult, Target
from .hardware import (
    CouplingMap,
    johannesburg,
    grid,
    line,
    clusters,
    johannesburg_aug19_2020,
    near_term_calibration,
    DeviceCalibration,
)

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "Gate",
    "Instruction",
    "compile_baseline",
    "compile_trios",
    "transpile",
    "CompilationResult",
    "Target",
    "CouplingMap",
    "johannesburg",
    "grid",
    "line",
    "clusters",
    "johannesburg_aug19_2020",
    "near_term_calibration",
    "DeviceCalibration",
    "__version__",
]
