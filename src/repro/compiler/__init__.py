"""End-to-end compilation pipelines (baseline and Orchestrated Trios)."""

from .pipeline import (
    DEFAULT_SEED_TRIALS,
    PIPELINES,
    STAGE_BUILDERS,
    build_pass_manager,
    compile_baseline,
    compile_trios,
    transpile,
)
from ..hardware.target import Target
from .result import CompilationResult, gate_reduction, check_connectivity

__all__ = [
    "DEFAULT_SEED_TRIALS",
    "PIPELINES",
    "STAGE_BUILDERS",
    "build_pass_manager",
    "Target",
    "compile_baseline",
    "compile_trios",
    "transpile",
    "CompilationResult",
    "gate_reduction",
    "check_connectivity",
]
