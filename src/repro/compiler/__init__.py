"""End-to-end compilation pipelines (baseline and Orchestrated Trios)."""

from .pipeline import compile_baseline, compile_trios, transpile
from .result import CompilationResult, gate_reduction, check_connectivity

__all__ = [
    "compile_baseline",
    "compile_trios",
    "transpile",
    "CompilationResult",
    "gate_reduction",
    "check_connectivity",
]
