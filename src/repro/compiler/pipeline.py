"""The unified compilation driver: ``transpile(circuit, target, ...)``.

Both of the paper's flows are expressed as *named stage lists* over the DAG
IR (:data:`PIPELINES`):

* ``"baseline"`` — the conventional flow of Figure 2a (the paper's "Qiskit"
  baseline): fully decompose to one- and two-qubit gates, place, route pairs,
  optimise lightly.
* ``"trios"`` — the Orchestrated Trios flow of Figure 2b: decompose everything
  *except* Toffolis, place, route Toffolis as three-qubit units, run the
  mapping-aware second decomposition, legalise, then the same light
  optimisation.

Each stage name maps to a builder (:data:`STAGE_BUILDERS`) that instantiates
the stage's passes for a given :class:`~repro.hardware.target.Target` and
option set, so new pipelines are a new name list away.  The optimisation stage
wraps the clean-up passes in a :class:`~repro.passes.base.FixedPoint` loop
that iterates cancellation/consolidation to convergence.

:func:`compile_baseline` and :func:`compile_trios` remain as thin shims over
:func:`transpile` for the experiment harnesses and historical callers; their
outputs are byte-identical to the pre-DAG pipelines (the equivalence tests
pin this against frozen hashes).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from .. import obs
from ..analysis.contracts import resolve_validation_mode
from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from ..hardware.calibration import DeviceCalibration
from ..hardware.target import Target
from ..hardware.topology import CouplingMap
from ..runtime import CellRunner, FailurePolicy, resolve_jobs
from ..passes.base import BasePass, FixedPoint, PassManager, PropertySet, Stage
from ..passes.commutation import CommutativeCancellationPass
from ..passes.decompose import DecomposeToBasisPass
from ..passes.layout import (
    FixedLayoutPass,
    GreedyInteractionLayoutPass,
    Layout,
    NoiseAwareLayoutPass,
    TrivialLayoutPass,
)
from ..passes.optimization import (
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    RemoveIdentitiesPass,
)
from ..passes.routing import GreedySwapRouter, LegalizationRouter
from ..passes.toffoli import MappingAwareToffoliDecomposePass, ToffoliDecomposePass
from ..passes.trios_routing import TriosRouter
from .result import CompilationResult, check_connectivity

LayoutSpec = Union[str, Layout, Mapping[int, int]]


def _layout_pass(
    layout: LayoutSpec,
    coupling_map: CouplingMap,
    calibration: Optional[DeviceCalibration],
) -> BasePass:
    """Build the placement pass from a layout specification.

    ``layout`` may be ``"trivial"``, ``"greedy"``, ``"noise"``, an explicit
    :class:`Layout`, or a logical→physical mapping dict.
    """
    if isinstance(layout, Layout):
        return FixedLayoutPass(coupling_map, layout.to_dict())
    if isinstance(layout, Mapping):
        return FixedLayoutPass(coupling_map, layout)
    if layout == "trivial":
        return TrivialLayoutPass(coupling_map)
    if layout == "greedy":
        return GreedyInteractionLayoutPass(coupling_map)
    if layout == "noise":
        if calibration is None:
            raise TranspilerError("noise-aware layout requires a calibration")
        return NoiseAwareLayoutPass(coupling_map, calibration)
    raise TranspilerError(f"unknown layout specification {layout!r}")


# ----------------------------------------------------------------------
# Stage builders
# ----------------------------------------------------------------------
@dataclass
class _TranspileContext:
    """Everything a stage builder may need, resolved once per transpile call."""

    target: Target
    layout: LayoutSpec
    optimization_level: int
    seed: Optional[int]
    routing: str
    toffoli_mode: str
    second_decomposition: str
    overlap_optimization: bool
    edge_weights: Optional[Mapping[Tuple[int, int], float]]
    validate_mode: Union[None, bool, str] = None


def _cleanup_loop() -> FixedPoint:
    """The convergent light-optimisation loop shared by every pipeline."""
    return FixedPoint(
        [
            CancelAdjacentInversesPass(),
            Consolidate1qRunsPass(),
            RemoveIdentitiesPass(),
        ]
    )


def _commutation_loop() -> FixedPoint:
    """The level-3 commutation-aware loop, iterated to convergence.

    Runs *after* the level-2 cleanup loop has converged and consists solely of
    gate-removing / gate-rewriting passes, so its output never has more CNOTs
    or greater depth than the level-2 output it starts from — the monotonicity
    the level-3 benchmark (``benchmarks/bench_opt_levels.py``) asserts cell by
    cell.
    """
    return FixedPoint(
        [
            CommutativeCancellationPass(),
            CancelAdjacentInversesPass(),
            Consolidate1qRunsPass(),
            RemoveIdentitiesPass(),
        ]
    )


def _stage_unroll(ctx: _TranspileContext) -> Stage:
    return Stage(
        "decompose",
        [
            DecomposeToBasisPass(
                basis=ctx.target.basis_gates, keep=(), toffoli_mode=ctx.toffoli_mode
            )
        ],
    )


def _stage_unroll_keep_toffoli(ctx: _TranspileContext) -> Stage:
    return Stage(
        "decompose",
        [DecomposeToBasisPass(basis=ctx.target.basis_gates, keep=("ccx", "ccz"))],
    )


def _stage_pre_optimize(ctx: _TranspileContext) -> Optional[Stage]:
    # Level 2+: clean the decomposed program *before* placement/routing too,
    # so routing never pays for gates the clean-up would have removed.
    if ctx.optimization_level < 2:
        return None
    return Stage("pre_optimize", [_cleanup_loop()])


def _stage_layout(ctx: _TranspileContext) -> Stage:
    return Stage(
        "layout",
        [_layout_pass(ctx.layout, ctx.target.coupling_map, ctx.target.calibration)],
    )


def _stage_route_pairs(ctx: _TranspileContext) -> Stage:
    return Stage(
        "routing",
        [
            GreedySwapRouter(
                ctx.target.coupling_map,
                edge_weights=ctx.edge_weights,
                stochastic=(ctx.routing == "stochastic"),
                seed=ctx.seed,
            )
        ],
    )


def _stage_route_trios(ctx: _TranspileContext) -> Stage:
    return Stage(
        "routing",
        [
            TriosRouter(
                ctx.target.coupling_map,
                edge_weights=ctx.edge_weights,
                overlap_optimization=ctx.overlap_optimization,
                stochastic=(ctx.routing == "stochastic"),
                seed=ctx.seed,
            )
        ],
    )


def _stage_second_decompose(ctx: _TranspileContext) -> Stage:
    if ctx.second_decomposition == "mapping_aware":
        second: BasePass = MappingAwareToffoliDecomposePass(ctx.target.coupling_map)
    else:
        second = ToffoliDecomposePass(mode=ctx.second_decomposition)
    return Stage("second_decompose", [second])


def _stage_legalize(ctx: _TranspileContext) -> Stage:
    # After a fixed-mode second decomposition some CNOTs may be between
    # non-coupled qubits; the legalisation router fixes them.  For the
    # mapping-aware decomposition it inserts zero SWAPs.
    return Stage(
        "legalize",
        [LegalizationRouter(ctx.target.coupling_map, edge_weights=ctx.edge_weights)],
    )


def _stage_route_pairs_greedy(ctx: _TranspileContext) -> Stage:
    # The "greedy-depth" flow pins deterministic shortest-path routing — that
    # determinism is the flow's identity, like the Trios router is trios'.
    return Stage(
        "routing",
        [
            GreedySwapRouter(
                ctx.target.coupling_map,
                edge_weights=ctx.edge_weights,
                stochastic=False,
                seed=ctx.seed,
            )
        ],
    )


def _stage_optimize(ctx: _TranspileContext) -> Stage:
    passes: List[BasePass] = [DecomposeSwapsPass()]
    if ctx.optimization_level >= 1:
        passes.append(_cleanup_loop())
    if ctx.optimization_level >= 3:
        # Appended after the level-2 loop converged: level 3 is additive.
        passes.append(_commutation_loop())
    return Stage("optimize", passes)


def _stage_optimize_depth(ctx: _TranspileContext) -> Stage:
    # The depth-oriented clean-up of the "greedy-depth" flow: always runs the
    # commutation-aware loop (its cancellations shorten dependency chains),
    # regardless of the optimisation level.
    return Stage(
        "optimize", [DecomposeSwapsPass(), _cleanup_loop(), _commutation_loop()]
    )


#: Stage-name → builder registry.  Builders may return ``None`` to skip a
#: stage for the current options (e.g. ``pre_optimize`` below level 2).
STAGE_BUILDERS: Dict[str, Callable[[_TranspileContext], Optional[Stage]]] = {
    "unroll": _stage_unroll,
    "unroll_keep_toffoli": _stage_unroll_keep_toffoli,
    "pre_optimize": _stage_pre_optimize,
    "layout": _stage_layout,
    "route_pairs": _stage_route_pairs,
    "route_pairs_greedy": _stage_route_pairs_greedy,
    "route_trios": _stage_route_trios,
    "second_decompose": _stage_second_decompose,
    "legalize": _stage_legalize,
    "optimize": _stage_optimize,
    "optimize_depth": _stage_optimize_depth,
}

#: The paper's two flows (Figure 2a / 2b) plus the deterministic
#: depth-oriented flow, as declarative stage-name lists.
PIPELINES: Dict[str, Tuple[str, ...]] = {
    "baseline": ("unroll", "pre_optimize", "layout", "route_pairs", "optimize"),
    "trios": (
        "unroll_keep_toffoli",
        "pre_optimize",  # no-op below level 2
        "layout",
        "route_trios",
        "second_decompose",
        "legalize",
        "optimize",
    ),
    # ROADMAP PR 3 follow-on: a fully deterministic flow — greedy
    # shortest-path routing plus the commutation-aware depth clean-up — for
    # callers that want reproducible compiles without a routing seed.
    "greedy-depth": (
        "unroll",
        "pre_optimize",
        "layout",
        "route_pairs_greedy",
        "optimize_depth",
    ),
}


def build_pass_manager(method: str, ctx: _TranspileContext) -> PassManager:
    """Assemble the :class:`PassManager` for one named pipeline."""
    try:
        stage_names = PIPELINES[method]
    except KeyError as exc:
        raise TranspilerError(f"unknown compilation method {method!r}") from exc
    return _build_partial_manager(stage_names, ctx)


def _build_partial_manager(
    stage_names: Tuple[str, ...], ctx: _TranspileContext
) -> PassManager:
    """A :class:`PassManager` over an explicit slice of a pipeline's stages."""
    manager = PassManager(validate=ctx.validate_mode)
    for stage_name in stage_names:
        stage = STAGE_BUILDERS[stage_name](ctx)
        if stage is not None:
            manager.append(stage)
    return manager


#: The first seed-*dependent* stage of every pipeline.  Stages before it
#: (unrolling, pre-placement clean-up) consume no randomness, so the level-3
#: search runs them once and shares the decomposed circuit across candidates.
_SEED_SEARCH_SPLIT_STAGE = "layout"


def _split_stage_names(method: str) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """A pipeline's stage names split at the first seed-dependent stage.

    Returns ``(prefix, suffix)`` with the split at
    :data:`_SEED_SEARCH_SPLIT_STAGE`: the prefix is identical for every
    candidate seed of a level-3 search, the suffix (placement onward) is what
    each candidate re-runs.  A pipeline without a ``"layout"`` stage gets an
    empty prefix — every stage re-runs per candidate, which is always correct.
    """
    try:
        stage_names = PIPELINES[method]
    except KeyError as exc:
        raise TranspilerError(f"unknown compilation method {method!r}") from exc
    try:
        split = stage_names.index(_SEED_SEARCH_SPLIT_STAGE)
    except ValueError:
        return (), stage_names
    return stage_names[:split], stage_names[split:]


# ----------------------------------------------------------------------
# The unified entry point
# ----------------------------------------------------------------------
#: Layout/routing seeds tried by the level-3 search when ``seed_trials`` is
#: not given.
DEFAULT_SEED_TRIALS = 4

#: Stride between the level-3 candidate seeds.  A large prime, so candidate
#: streams do not collide with the neighbouring base seeds sweeps use.
_SEED_STRIDE = 9973


def transpile(
    circuit: QuantumCircuit,
    target: Union[Target, CouplingMap],
    method: str = "trios",
    *,
    layout: LayoutSpec = "greedy",
    optimization_level: Optional[int] = None,
    seed: Optional[int] = 2021,
    routing: str = "stochastic",
    noise_aware: bool = False,
    toffoli_mode: Optional[str] = None,
    second_decomposition: Optional[str] = None,
    overlap_optimization: Optional[bool] = None,
    calibration: Optional[DeviceCalibration] = None,
    optimize: Optional[bool] = None,
    validate: Union[bool, str] = True,
    seed_trials: Optional[int] = None,
    jobs: int = 1,
) -> CompilationResult:
    """Compile ``circuit`` for ``target`` with a named pipeline.

    Args:
        circuit: The logical input program.
        target: A :class:`~repro.hardware.target.Target`, or a bare
            :class:`CouplingMap` (promoted to an uncalibrated target).
        method: Pipeline name — ``"trios"`` (Figure 2b) or ``"baseline"``
            (Figure 2a); see :data:`PIPELINES`.
        layout: Placement strategy (``"trivial"``/``"greedy"``/``"noise"``),
            an explicit :class:`Layout`, or a logical→physical mapping dict.
        optimization_level: ``0`` only expands routing SWAPs; ``1`` (default)
            additionally iterates the light clean-up passes (CNOT
            cancellation, 1q consolidation, identity removal) to a fixed
            point after routing; ``2`` also runs the same loop on the
            decomposed program *before* placement; ``3`` additionally runs
            the commutation-aware cancellation loop
            (:class:`~repro.passes.commutation.CommutativeCancellationPass`)
            after the level-2 loop converges *and* searches ``seed_trials``
            layout/routing seeds, keeping the candidate with the best
            estimated success probability among those that do not regress
            the base seed's CNOT count or depth — so a level-3 compile never
            has more CNOTs or greater depth than the level-2 compile with
            the same seed.
        seed: RNG seed for the stochastic routing policy.
        routing: ``"stochastic"`` models Qiskit 0.14's stochastic swap policy
            (the paper's baseline); ``"greedy"`` is deterministic
            shortest-path routing.
        noise_aware: Use ``-log`` CNOT-success edge weights when routing
            (requires a calibrated target).
        toffoli_mode: Up-front Toffoli decomposition for the baseline flow —
            ``"6cnot"`` (Qiskit's default, also the default here) or
            ``"8cnot"``.  Rejected when the selected pipeline has no
            ``unroll`` stage (e.g. ``method="trios"``).
        second_decomposition: Trios' post-routing decomposition —
            ``"mapping_aware"`` (the paper's contribution, the default),
            ``"6cnot"`` or ``"8cnot"`` for the ablations.  Rejected when the
            selected pipeline has no ``second_decompose`` stage.
        overlap_optimization: Trios' "ending points overlap" SWAP saving
            (default on).  Rejected when the selected pipeline has no
            ``route_trios`` stage.
        calibration: Convenience: folded into an uncalibrated target.
        optimize: Legacy boolean; maps to optimization level 1 (True) / 0
            (False) when ``optimization_level`` is not given.
        validate: ``False`` disables all checking.  Any other value keeps
            the final coupling-map connectivity check and additionally
            selects the pass-contract validation mode (see
            :mod:`repro.analysis.contracts`): ``True`` defers to the
            ``REPRO_VALIDATE`` environment variable, ``"contracts"`` checks
            declared pass contracts between stages, ``"full"`` also lints
            the IR structurally and re-verifies held invariants after every
            pass, attributing the first violation to the offending pass.
        seed_trials: Number of layout/routing seeds the level-3 search
            tries (default :data:`DEFAULT_SEED_TRIALS`); only meaningful —
            and only accepted — at ``optimization_level=3``.
        jobs: Worker processes for the level-3 seed search, run on the
            fault-tolerant runtime (:mod:`repro.runtime`): faulted candidate
            seeds are dropped and the base seed always survives, so the
            search cannot fail because of a flaky worker.  ``0`` means all
            CPUs; results are identical to ``jobs=1``.  Only accepted at
            ``optimization_level=3``.

    Returns:
        A :class:`CompilationResult` carrying the compiled circuit, the
        target, the layouts, and per-pass telemetry (``pass_timings``).
    """
    resolved = Target.of(target, calibration)
    if optimization_level is None:
        optimization_level = 1 if (optimize is None or optimize) else 0
    elif optimize is not None:
        raise TranspilerError("pass either optimization_level or optimize, not both")
    if not 0 <= optimization_level <= 3:
        raise TranspilerError(f"invalid optimization_level {optimization_level}")
    if optimization_level < 3:
        # Search knobs silently ignored by the lower levels are bugs at the
        # call site, exactly like pipeline-less options below.
        if seed_trials is not None:
            raise TranspilerError(
                f"seed_trials={seed_trials!r} has no effect below "
                f"optimization_level=3"
            )
        if jobs != 1:
            raise TranspilerError(
                f"jobs={jobs!r} has no effect below optimization_level=3"
            )
    if seed_trials is not None and seed_trials < 1:
        raise TranspilerError(f"seed_trials must be >= 1, got {seed_trials}")
    if routing not in ("stochastic", "greedy"):
        raise TranspilerError(f"unknown routing policy {routing!r}")
    try:
        stage_names = PIPELINES[method]
    except KeyError as exc:
        raise TranspilerError(f"unknown compilation method {method!r}") from exc
    # Reject options the selected pipeline would silently ignore — an ablation
    # run passing e.g. second_decomposition to the baseline flow is a bug.
    for option, value, consumer in (
        ("toffoli_mode", toffoli_mode, "unroll"),
        ("second_decomposition", second_decomposition, "second_decompose"),
        ("overlap_optimization", overlap_optimization, "route_trios"),
    ):
        if value is not None and consumer not in stage_names:
            raise TranspilerError(
                f"{option}={value!r} has no effect: pipeline {method!r} has "
                f"no {consumer!r} stage"
            )
    toffoli_mode = toffoli_mode if toffoli_mode is not None else "6cnot"
    if second_decomposition is None:
        second_decomposition = "mapping_aware"
    if overlap_optimization is None:
        overlap_optimization = True
    if toffoli_mode not in ("6cnot", "8cnot"):
        raise TranspilerError(f"unknown toffoli_mode {toffoli_mode!r}")
    if second_decomposition not in ("mapping_aware", "6cnot", "8cnot"):
        raise TranspilerError(
            f"unknown second_decomposition {second_decomposition!r}"
        )
    edge_weights = None
    if noise_aware:
        if resolved.calibration is None:
            raise TranspilerError("noise-aware routing requires a calibration")
        edge_weights = resolved.noise_edge_weights()
    # validate=False turns everything off; validate=True defers the contract
    # mode to the environment (REPRO_VALIDATE); an explicit string picks it.
    if validate is False:
        validate_mode: Union[None, bool, str] = "off"
    elif validate is True:
        validate_mode = None
    else:
        validate_mode = validate
    validate_mode = resolve_validation_mode(validate_mode)
    ctx = _TranspileContext(
        target=resolved,
        layout=layout,
        optimization_level=optimization_level,
        seed=seed,
        routing=routing,
        toffoli_mode=toffoli_mode,
        second_decomposition=second_decomposition,
        overlap_optimization=overlap_optimization,
        edge_weights=edge_weights,
        validate_mode=validate_mode,
    )
    if method == "baseline":
        method_label = f"baseline-{toffoli_mode}"
    elif "second_decompose" in stage_names:
        method_label = f"{method}-{second_decomposition}"
    else:
        method_label = method
    obs.maybe_enable_from_env()
    with obs.span(
        "transpile",
        category="compiler",
        source=circuit.name,
        method=method_label,
        optimization_level=optimization_level,
        qubits=circuit.num_qubits,
    ):
        if optimization_level >= 3:
            compiled, properties = _run_seed_search(
                circuit, method, ctx, seed_trials, jobs
            )
        else:
            manager = build_pass_manager(method, ctx)
            compiled, properties = manager.run(circuit)
        return _finish(
            compiled, properties, resolved, method_label, circuit.name, validate
        )


# ----------------------------------------------------------------------
# The level-3 multi-seed layout/routing search
# ----------------------------------------------------------------------
def _candidate_seeds(seed: Optional[int], trials: int) -> List[Optional[int]]:
    """The routing seeds a level-3 search tries; the caller's seed comes first."""
    if seed is None:
        # Seedless stochastic routing is non-reproducible anyway; a search
        # over indistinguishable RNG streams would add nothing but time.
        return [None]
    return [seed + _SEED_STRIDE * index for index in range(trials)]


def _seed_candidate(
    payload: Tuple[
        "_TranspileContext", str, QuantumCircuit, Optional[PropertySet], Optional[int]
    ]
):
    """Compile and score one level-3 candidate; process-pool entry point.

    ``circuit`` and ``prefix_properties`` are the output of the shared
    seed-independent pipeline prefix (decomposition + pre-placement clean-up),
    run once by :func:`_run_seed_search`; each candidate deep-copies the
    property set before running the suffix stages so candidates never observe
    each other's pass telemetry (the serial ``jobs=1`` path shares the
    object).  ``prefix_properties=None`` means no prefix ran — the candidate
    compiles the full pipeline itself.
    """
    base_ctx, method, circuit, prefix_properties, candidate_seed = payload
    ctx = replace(base_ctx, seed=candidate_seed)
    if prefix_properties is None:
        manager = build_pass_manager(method, ctx)
        properties = None
    else:
        _, suffix_names = _split_stage_names(method)
        manager = _build_partial_manager(suffix_names, ctx)
        properties = copy.deepcopy(prefix_properties)
    with obs.span(
        "seed_candidate", category="compiler.seed_search", seed=candidate_seed
    ) as candidate_span:
        compiled, properties = manager.run(circuit, properties)
        cnots = compiled.two_qubit_gate_count(count_swap_as=3)
        depth = compiled.depth()
        success = base_ctx.target.estimated_success(compiled)
        candidate_span.add_attrs(cnots=cnots, depth=depth, estimated_success=success)
    return compiled, properties, cnots, depth, success


def _run_seed_search(
    circuit: QuantumCircuit,
    method: str,
    ctx: _TranspileContext,
    seed_trials: Optional[int],
    jobs: int,
) -> Tuple[QuantumCircuit, PropertySet]:
    """Compile ``seed_trials`` candidates and keep the best admissible one.

    The base seed's candidate runs the level-2 pipeline plus the (strictly
    gate-removing) commutation loop, so it never has more CNOTs or depth than
    the level-2 compile with the same seed.  Other seeds are *admissible* only
    when they match or beat that base candidate on both CNOT count and depth;
    among admissible candidates the one with the highest estimated success
    probability wins (ties: fewer CNOTs, then lower depth, then earlier
    seed).  This keeps the search's output monotonically no worse than level
    2 on the paper's metrics while still exploiting routing-seed luck.

    The search runs on the fault-tolerant runtime: a candidate seed whose
    worker crashes, hangs or keeps raising is *dropped* (recorded in the
    telemetry, never raised), and the base seed's candidate is recompiled
    serially in the driver process if its worker was lost — so a level-3
    compile can never fail because of a flaky worker, and its result is
    always at least the base seed's.

    The pipeline's seed-independent prefix — decomposition and the
    pre-placement clean-up, everything before the ``"layout"`` stage — is
    identical across candidates, so it runs **once** here and every candidate
    resumes from the decomposed circuit (roughly halving the search cost;
    ``tests/test_transpile.py`` pins byte-identity against the full per-seed
    pipeline).
    """
    jobs = resolve_jobs(jobs)
    trials = seed_trials if seed_trials is not None else DEFAULT_SEED_TRIALS
    seeds = _candidate_seeds(ctx.seed, trials)
    prefix_names, _ = _split_stage_names(method)
    prefix_properties: Optional[PropertySet] = None
    with obs.span(
        "seed_search", category="compiler.seed_search", trials=len(seeds), jobs=jobs
    ):
        if prefix_names:
            circuit, prefix_properties = _build_partial_manager(
                prefix_names, ctx
            ).run(circuit)
        payloads = [
            (ctx, method, circuit, prefix_properties, candidate_seed)
            for candidate_seed in seeds
        ]
        runner = CellRunner(
            jobs=jobs,
            policy=FailurePolicy(retries=1, on_error="skip"),
            label="level-3 seed search",
        )
        records = runner.run(payloads, _seed_candidate)
    candidates: List[Optional[tuple]] = [
        record.value if record.ok else None for record in records
    ]
    if candidates[0] is None:
        # The base seed must always survive: recompile it in-process (where
        # an injected or real worker death cannot reach) and let a genuine
        # compilation error propagate as itself.
        candidates[0] = _seed_candidate(payloads[0])
    failed_seeds = [
        {
            "seed": seeds[record.index],
            "status": record.status,
            "attempts": record.attempts,
            "error": str(record.error) if record.error else "",
            "recovered_serially": record.index == 0,
        }
        for record in records
        if not record.ok
    ]
    base_cnots, base_depth = candidates[0][2], candidates[0][3]
    best_index = 0
    best_key = None
    for index, candidate in enumerate(candidates):
        if candidate is None:
            continue  # the candidate's worker was lost; seed dropped
        _, _, cnots, depth, success = candidate
        if cnots > base_cnots or depth > base_depth:
            continue  # inadmissible: would regress a level-2 metric
        key = (-success, cnots, depth, index)
        if best_key is None or key < best_key:
            best_key = key
            best_index = index
    compiled, properties, _, _, _ = candidates[best_index]
    properties["optimization3_search"] = {
        "seeds": list(seeds),
        "chosen_seed": seeds[best_index],
        "chosen_index": best_index,
        "jobs": jobs,
        "prefix_stages": list(prefix_names),
        "failed_seeds": failed_seeds,
        "candidates": [
            {
                "seed": seeds[index],
                "cnots": candidate[2],
                "depth": candidate[3],
                "estimated_success": candidate[4],
                "admissible": candidate[2] <= base_cnots and candidate[3] <= base_depth,
            }
            for index, candidate in enumerate(candidates)
            if candidate is not None
        ],
    }
    return compiled, properties


def _finish(
    circuit: QuantumCircuit,
    properties: PropertySet,
    target: Target,
    method: str,
    source_name: str,
    validate: Union[bool, str],
) -> CompilationResult:
    if validate is not False and validate != "off":
        violations = check_connectivity(circuit, target.coupling_map)
        if violations:
            raise TranspilerError(
                f"compiled circuit violates the coupling map: {violations[:3]}"
            )
    return CompilationResult(
        circuit=circuit,
        coupling_map=target.coupling_map,
        method=method,
        initial_layout=properties["initial_layout"],
        final_layout=properties["final_layout"],
        swaps_inserted=properties.get("swaps_inserted", 0),
        source_name=source_name,
        properties=properties,
        target=target,
    )


# ----------------------------------------------------------------------
# Legacy shims (the historical two-function API)
# ----------------------------------------------------------------------
def compile_baseline(
    circuit: QuantumCircuit,
    coupling_map: Union[Target, CouplingMap],
    *,
    toffoli_mode: str = "6cnot",
    layout: LayoutSpec = "greedy",
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: bool = False,
    routing: str = "stochastic",
    seed: Optional[int] = 2021,
    optimize: bool = True,
    validate: bool = True,
) -> CompilationResult:
    """Conventional compilation (Figure 2a) — shim over :func:`transpile`."""
    return transpile(
        circuit,
        coupling_map,
        method="baseline",
        toffoli_mode=toffoli_mode,
        layout=layout,
        calibration=calibration,
        noise_aware=noise_aware,
        routing=routing,
        seed=seed,
        optimize=optimize,
        validate=validate,
    )


def compile_trios(
    circuit: QuantumCircuit,
    coupling_map: Union[Target, CouplingMap],
    *,
    second_decomposition: str = "mapping_aware",
    layout: LayoutSpec = "greedy",
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: bool = False,
    overlap_optimization: bool = True,
    routing: str = "stochastic",
    seed: Optional[int] = 2021,
    optimize: bool = True,
    validate: bool = True,
) -> CompilationResult:
    """Orchestrated Trios compilation (Figure 2b) — shim over :func:`transpile`."""
    return transpile(
        circuit,
        coupling_map,
        method="trios",
        second_decomposition=second_decomposition,
        layout=layout,
        calibration=calibration,
        noise_aware=noise_aware,
        overlap_optimization=overlap_optimization,
        routing=routing,
        seed=seed,
        optimize=optimize,
        validate=validate,
    )
