"""The two end-to-end compilation pipelines compared in the paper.

:func:`compile_baseline` is the conventional flow of Figure 2a (the paper's
"Qiskit" baseline): fully decompose to one- and two-qubit gates, place, route
pairs, optimise lightly.

:func:`compile_trios` is the Orchestrated Trios flow of Figure 2b: decompose
everything *except* Toffolis, place, route Toffolis as three-qubit units, then
run the mapping-aware second decomposition, and finally the same light
optimisation.

Both return a :class:`~repro.compiler.result.CompilationResult`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from ..hardware.calibration import DeviceCalibration
from ..hardware.topology import CouplingMap
from ..passes.base import BasePass, PassManager, PropertySet
from ..passes.decompose import DecomposeToBasisPass
from ..passes.layout import (
    FixedLayoutPass,
    GreedyInteractionLayoutPass,
    Layout,
    NoiseAwareLayoutPass,
    TrivialLayoutPass,
)
from ..passes.optimization import (
    CancelAdjacentInversesPass,
    Consolidate1qRunsPass,
    DecomposeSwapsPass,
    RemoveIdentitiesPass,
)
from ..passes.routing import GreedySwapRouter, LegalizationRouter
from ..passes.toffoli import MappingAwareToffoliDecomposePass, ToffoliDecomposePass
from ..passes.trios_routing import TriosRouter
from .result import CompilationResult, check_connectivity

LayoutSpec = Union[str, Layout, Mapping[int, int]]


def _layout_pass(
    layout: LayoutSpec,
    coupling_map: CouplingMap,
    calibration: Optional[DeviceCalibration],
) -> BasePass:
    """Build the placement pass from a layout specification.

    ``layout`` may be ``"trivial"``, ``"greedy"``, ``"noise"``, an explicit
    :class:`Layout`, or a logical→physical mapping dict.
    """
    if isinstance(layout, Layout):
        return FixedLayoutPass(coupling_map, layout.to_dict())
    if isinstance(layout, Mapping):
        return FixedLayoutPass(coupling_map, layout)
    if layout == "trivial":
        return TrivialLayoutPass(coupling_map)
    if layout == "greedy":
        return GreedyInteractionLayoutPass(coupling_map)
    if layout == "noise":
        if calibration is None:
            raise TranspilerError("noise-aware layout requires a calibration")
        return NoiseAwareLayoutPass(coupling_map, calibration)
    raise TranspilerError(f"unknown layout specification {layout!r}")


def _optimization_passes(optimize: bool) -> list:
    if not optimize:
        return [DecomposeSwapsPass()]
    return [
        DecomposeSwapsPass(),
        CancelAdjacentInversesPass(),
        Consolidate1qRunsPass(),
        RemoveIdentitiesPass(),
    ]


def _finish(
    circuit: QuantumCircuit,
    properties: PropertySet,
    coupling_map: CouplingMap,
    method: str,
    source_name: str,
    validate: bool,
) -> CompilationResult:
    if validate:
        violations = check_connectivity(circuit, coupling_map)
        if violations:
            raise TranspilerError(
                f"compiled circuit violates the coupling map: {violations[:3]}"
            )
    return CompilationResult(
        circuit=circuit,
        coupling_map=coupling_map,
        method=method,
        initial_layout=properties["initial_layout"],
        final_layout=properties["final_layout"],
        swaps_inserted=properties.get("swaps_inserted", 0),
        source_name=source_name,
        properties=properties,
    )


def compile_baseline(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    *,
    toffoli_mode: str = "6cnot",
    layout: LayoutSpec = "greedy",
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: bool = False,
    routing: str = "stochastic",
    seed: Optional[int] = 2021,
    optimize: bool = True,
    validate: bool = True,
) -> CompilationResult:
    """Conventional compilation (Figure 2a): decompose everything, then route pairs.

    Args:
        circuit: The logical input program.
        coupling_map: Target device connectivity.
        toffoli_mode: Toffoli decomposition used up front — ``"6cnot"`` (the
            Qiskit default of Figures 6/7) or ``"8cnot"``.
        layout: Placement strategy or explicit initial layout.
        calibration: Device calibration; required for noise-aware modes.
        noise_aware: Use ``-log`` CNOT-success edge weights when routing.
        routing: ``"stochastic"`` models Qiskit 0.14's stochastic swap policy
            (the paper's baseline); ``"greedy"`` is a deterministic
            shortest-path router (a stronger baseline, useful for ablations).
        seed: RNG seed for the stochastic routing policy.
        optimize: Apply the light clean-up passes (CNOT cancellation, 1q
            consolidation) after routing.
        validate: Verify the result respects the coupling map.
    """
    if routing not in ("stochastic", "greedy"):
        raise TranspilerError(f"unknown routing policy {routing!r}")
    edge_weights = None
    if noise_aware:
        if calibration is None:
            raise TranspilerError("noise-aware routing requires a calibration")
        edge_weights = calibration.edge_weight_neg_log_success(coupling_map)
    passes = [
        DecomposeToBasisPass(keep=(), toffoli_mode=toffoli_mode),
        _layout_pass(layout, coupling_map, calibration),
        GreedySwapRouter(
            coupling_map,
            edge_weights=edge_weights,
            stochastic=(routing == "stochastic"),
            seed=seed,
        ),
        *_optimization_passes(optimize),
    ]
    compiled, properties = PassManager(passes).run(circuit)
    method = f"baseline-{toffoli_mode}"
    return _finish(compiled, properties, coupling_map, method, circuit.name, validate)


def compile_trios(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    *,
    second_decomposition: str = "mapping_aware",
    layout: LayoutSpec = "greedy",
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: bool = False,
    overlap_optimization: bool = True,
    routing: str = "stochastic",
    seed: Optional[int] = 2021,
    optimize: bool = True,
    validate: bool = True,
) -> CompilationResult:
    """Orchestrated Trios compilation (Figure 2b).

    Args:
        circuit: The logical input program.
        coupling_map: Target device connectivity.
        second_decomposition: ``"mapping_aware"`` (the Trios contribution:
            6-CNOT on triangles, 8-CNOT on lines), or a fixed ``"6cnot"`` /
            ``"8cnot"`` for the ablation configurations of Figures 6/7.
        layout: Placement strategy or explicit initial layout.
        calibration: Device calibration; required for noise-aware modes.
        noise_aware: Use ``-log`` CNOT-success edge weights when routing.
        overlap_optimization: Stop the second routed qubit early when the trio
            already forms a connected line (the paper's SWAP-saving check).
        routing: Policy for one- and two-qubit gates — Trios reuses the same
            underlying router as the baseline (§4), so this defaults to the
            same ``"stochastic"`` policy; Toffoli-free circuits then compile
            identically under both pipelines, as the paper requires.
        seed: RNG seed for the stochastic routing policy.
        optimize: Apply the light clean-up passes after decomposition.
        validate: Verify the result respects the coupling map.
    """
    if second_decomposition not in ("mapping_aware", "6cnot", "8cnot"):
        raise TranspilerError(
            f"unknown second_decomposition {second_decomposition!r}"
        )
    if routing not in ("stochastic", "greedy"):
        raise TranspilerError(f"unknown routing policy {routing!r}")
    edge_weights = None
    if noise_aware:
        if calibration is None:
            raise TranspilerError("noise-aware routing requires a calibration")
        edge_weights = calibration.edge_weight_neg_log_success(coupling_map)
    if second_decomposition == "mapping_aware":
        second_pass: BasePass = MappingAwareToffoliDecomposePass(coupling_map)
    else:
        second_pass = ToffoliDecomposePass(mode=second_decomposition)
    passes = [
        DecomposeToBasisPass(keep=("ccx", "ccz")),
        _layout_pass(layout, coupling_map, calibration),
        TriosRouter(
            coupling_map,
            edge_weights=edge_weights,
            overlap_optimization=overlap_optimization,
            stochastic=(routing == "stochastic"),
            seed=seed,
        ),
        second_pass,
        # After a fixed-mode second decomposition some CNOTs may be between
        # non-coupled qubits; the legalisation router fixes them.  For the
        # mapping-aware decomposition it inserts zero SWAPs.
        LegalizationRouter(coupling_map, edge_weights=edge_weights),
        *_optimization_passes(optimize),
    ]
    compiled, properties = PassManager(passes).run(circuit)
    method = f"trios-{second_decomposition}"
    return _finish(compiled, properties, coupling_map, method, circuit.name, validate)


def transpile(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    method: str = "trios",
    **options,
) -> CompilationResult:
    """Compile with either pipeline, selected by ``method``.

    ``method`` is ``"trios"`` or ``"baseline"``; all keyword options are passed
    through to :func:`compile_trios` / :func:`compile_baseline`.
    """
    if method == "trios":
        return compile_trios(circuit, coupling_map, **options)
    if method == "baseline":
        return compile_baseline(circuit, coupling_map, **options)
    raise TranspilerError(f"unknown compilation method {method!r}")
