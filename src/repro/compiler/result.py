"""Compilation results and the metrics the paper reports.

A :class:`CompilationResult` bundles the final hardware-basis circuit with the
:class:`~repro.hardware.target.Target` it was compiled for, the layouts and
bookkeeping produced by the pass pipeline — including per-pass telemetry
(:attr:`CompilationResult.pass_timings`) — and exposes the metrics used
throughout the evaluation: two-qubit gate count (§2.5), depth, scheduled
duration and the analytic success-probability estimate (§2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis import LintReport
    from ..obs import Span

from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from ..hardware.calibration import DeviceCalibration
from ..hardware.target import Target
from ..hardware.topology import CouplingMap
from ..passes.base import PropertySet, pass_timings_view
from ..passes.layout import Layout
from ..passes.scheduling import asap_schedule
from ..sim.estimator import SuccessEstimate, estimate_success


@dataclass
class CompilationResult:
    """The output of :func:`repro.compiler.pipeline.transpile` and friends."""

    circuit: QuantumCircuit
    coupling_map: CouplingMap
    method: str
    initial_layout: Layout
    final_layout: Layout
    swaps_inserted: int
    source_name: str = ""
    properties: PropertySet = field(default_factory=PropertySet)
    target: Optional[Target] = None
    # Barrier-free view of the circuit, memoized by _bare_circuit() (kept out
    # of `properties`, which is the pass pipeline's data and gets serialised).
    _bare: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Gate metrics
    # ------------------------------------------------------------------
    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names in the compiled circuit."""
        return self.circuit.count_ops()

    @property
    def two_qubit_gate_count(self) -> int:
        """Total number of two-qubit gates (CNOTs), the paper's primary proxy metric."""
        return self.circuit.two_qubit_gate_count(count_swap_as=3)

    @property
    def cnot_count(self) -> int:
        """Alias for :attr:`two_qubit_gate_count`."""
        return self.two_qubit_gate_count

    @property
    def depth(self) -> int:
        """Depth of the compiled circuit."""
        return self.circuit.depth()

    # ------------------------------------------------------------------
    # Pass telemetry
    # ------------------------------------------------------------------
    @property
    def seed_search(self) -> Optional[Dict[str, object]]:
        """Telemetry of the level-3 multi-seed layout/routing search.

        ``None`` below ``optimization_level=3``; otherwise a dict with the
        ``seeds`` tried, one ``candidates`` record per seed (``seed``,
        ``cnots``, ``depth``, ``estimated_success``, ``admissible``) and the
        ``chosen_seed``/``chosen_index`` that produced this result.
        """
        return self.properties.get("optimization3_search")

    @property
    def pass_spans(self) -> List["Span"]:
        """Per-pass telemetry spans recorded by the pass manager.

        One :class:`repro.obs.Span` per executed pass (fixed-point loops
        contribute one span per pass per sweep), carrying the pass name, the
        stage and instruction-count deltas as attrs, and wall-aligned
        start/duration.  This is the single source of pass telemetry; the
        legacy :attr:`pass_timings` dict view derives from it.
        """
        return list(self.properties.get("pass_spans", []))

    @property
    def pass_timings(self) -> List[Dict[str, object]]:
        """Legacy per-pass telemetry dicts, derived from :attr:`pass_spans`.

        One record per executed pass: ``{"pass", "stage", "seconds",
        "size_before", "size_after"}``.  This is the data behind the CLI's
        ``--profile-passes`` table.
        """
        return pass_timings_view(self.pass_spans)

    # ------------------------------------------------------------------
    # Time / noise metrics
    # ------------------------------------------------------------------
    def _bare_circuit(self) -> QuantumCircuit:
        """The compiled circuit without barriers, built once and cached.

        Duration and success queries both schedule this circuit, and its
        memoized DAG (``QuantumCircuit.dag``) is shared between them.
        """
        if self._bare is None:
            self._bare = self.circuit.without(["barrier"])
        return self._bare

    def duration(self, calibration: Optional[DeviceCalibration] = None) -> float:
        """ASAP-scheduled makespan in microseconds.

        ``calibration`` defaults to the target's calibration when present.
        """
        return asap_schedule(self._bare_circuit(), self._calibration(calibration)).duration

    def success_estimate(
        self,
        calibration: Optional[DeviceCalibration] = None,
        include_readout: bool = True,
    ) -> SuccessEstimate:
        """The paper's analytic success-probability estimate for this circuit."""
        return estimate_success(
            self._bare_circuit(),
            self._calibration(calibration),
            include_readout=include_readout,
        )

    def success_probability(
        self,
        calibration: Optional[DeviceCalibration] = None,
        include_readout: bool = True,
    ) -> float:
        """Shorthand for ``success_estimate(...).probability``."""
        return self.success_estimate(calibration, include_readout).probability

    def _calibration(self, calibration: Optional[DeviceCalibration]) -> DeviceCalibration:
        if calibration is not None:
            return calibration
        if self.target is not None and self.target.calibration is not None:
            return self.target.calibration
        raise TranspilerError(
            "no calibration given and the compilation target carries none"
        )

    # ------------------------------------------------------------------
    # Machine verification
    # ------------------------------------------------------------------
    def assert_equivalent(
        self,
        logical: QuantumCircuit,
        trials: int = 3,
        seed: int = 7,
        max_active: int = 14,
    ) -> None:
        """Machine-check this compilation against its logical source.

        Delegates to :func:`repro.sim.equivalence.assert_routed_equivalent`
        with this result's initial/final layouts: random product states are
        prepared on the initial wires and the outputs must appear on the
        final wires with every ancilla wire back in |0⟩.  Raises
        :class:`~repro.exceptions.EquivalenceError` on deviation.
        """
        from ..sim.equivalence import assert_routed_equivalent

        assert_routed_equivalent(
            logical,
            self.circuit,
            self.initial_layout.to_dict(),
            self.final_layout.to_dict(),
            trials=trials,
            seed=seed,
            max_active=max_active,
            context=f"{self.method} compilation of {self.source_name!r}",
        )

    def lint(self, suppress=()) -> "LintReport":
        """Run the static circuit linter over this compilation.

        Checks the compiled circuit's structural IR invariants, hardware
        legality against this result's target/coupling map, the recorded
        layouts, and the resource rules (see :mod:`repro.analysis.rules` for
        the ``QLxxx`` codes).  Returns a
        :class:`~repro.analysis.LintReport`; a correct compilation lints
        without error-severity findings.
        """
        from ..analysis import CircuitLinter

        return CircuitLinter(suppress=suppress).lint(
            self, name=f"{self.method}:{self.source_name or self.circuit.name}"
        )

    # ------------------------------------------------------------------
    def physical_qubits_of(self, logical_qubits) -> list:
        """Final physical positions of the given logical qubits (after routing)."""
        return [self.final_layout.physical(q) for q in logical_qubits]

    def summary(self) -> Dict[str, object]:
        """A compact, printable summary of the compilation."""
        return {
            "method": self.method,
            "source": self.source_name,
            "device": self.coupling_map.name,
            "two_qubit_gates": self.two_qubit_gate_count,
            "depth": self.depth,
            "swaps_inserted": self.swaps_inserted,
            "gate_counts": self.gate_counts(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompilationResult(method={self.method!r}, source={self.source_name!r}, "
            f"device={self.coupling_map.name!r}, cnots={self.two_qubit_gate_count}, "
            f"depth={self.depth}, swaps={self.swaps_inserted})"
        )


def gate_reduction(baseline: CompilationResult, improved: CompilationResult) -> float:
    """Fractional two-qubit gate reduction, the metric of Figure 10.

    Returns ``1 - improved/baseline`` so 0.35 means "35% fewer CNOT gates".
    """
    base = baseline.two_qubit_gate_count
    if base == 0:
        return 0.0
    return 1.0 - improved.two_qubit_gate_count / base


def check_connectivity(circuit: QuantumCircuit, coupling_map: CouplingMap) -> list:
    """Return the list of two-qubit instructions that violate the coupling map.

    An empty list means the circuit is executable on the device (every CNOT or
    SWAP acts on a coupled pair).  Compiled circuits must always pass this.
    """
    violations = []
    for instruction in circuit.instructions:
        if not instruction.gate.is_unitary:
            continue
        if instruction.gate.num_qubits == 2:
            a, b = instruction.qubits
            if not coupling_map.are_adjacent(a, b):
                violations.append(instruction)
        elif instruction.gate.num_qubits >= 3:
            violations.append(instruction)
    return violations
