"""Compilation results and the metrics the paper reports.

A :class:`CompilationResult` bundles the final hardware-basis circuit with the
layouts and bookkeeping produced by the pass pipeline, and exposes the metrics
used throughout the evaluation: two-qubit gate count (§2.5), depth, scheduled
duration and the analytic success-probability estimate (§2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuits.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from ..hardware.calibration import DeviceCalibration
from ..hardware.topology import CouplingMap
from ..passes.base import PropertySet
from ..passes.layout import Layout
from ..passes.scheduling import asap_schedule
from ..sim.estimator import SuccessEstimate, estimate_success


@dataclass
class CompilationResult:
    """The output of :func:`repro.compiler.pipeline.transpile` and friends."""

    circuit: QuantumCircuit
    coupling_map: CouplingMap
    method: str
    initial_layout: Layout
    final_layout: Layout
    swaps_inserted: int
    source_name: str = ""
    properties: PropertySet = field(default_factory=PropertySet)

    # ------------------------------------------------------------------
    # Gate metrics
    # ------------------------------------------------------------------
    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names in the compiled circuit."""
        return self.circuit.count_ops()

    @property
    def two_qubit_gate_count(self) -> int:
        """Total number of two-qubit gates (CNOTs), the paper's primary proxy metric."""
        return self.circuit.two_qubit_gate_count(count_swap_as=3)

    @property
    def cnot_count(self) -> int:
        """Alias for :attr:`two_qubit_gate_count`."""
        return self.two_qubit_gate_count

    @property
    def depth(self) -> int:
        """Depth of the compiled circuit."""
        return self.circuit.depth()

    # ------------------------------------------------------------------
    # Time / noise metrics
    # ------------------------------------------------------------------
    def duration(self, calibration: DeviceCalibration) -> float:
        """ASAP-scheduled makespan in microseconds."""
        return asap_schedule(self.circuit.without(["barrier"]), calibration).duration

    def success_estimate(
        self, calibration: DeviceCalibration, include_readout: bool = True
    ) -> SuccessEstimate:
        """The paper's analytic success-probability estimate for this circuit."""
        return estimate_success(
            self.circuit.without(["barrier"]), calibration, include_readout=include_readout
        )

    def success_probability(
        self, calibration: DeviceCalibration, include_readout: bool = True
    ) -> float:
        """Shorthand for ``success_estimate(...).probability``."""
        return self.success_estimate(calibration, include_readout).probability

    # ------------------------------------------------------------------
    def physical_qubits_of(self, logical_qubits) -> list:
        """Final physical positions of the given logical qubits (after routing)."""
        return [self.final_layout.physical(q) for q in logical_qubits]

    def summary(self) -> Dict[str, object]:
        """A compact, printable summary of the compilation."""
        return {
            "method": self.method,
            "source": self.source_name,
            "device": self.coupling_map.name,
            "two_qubit_gates": self.two_qubit_gate_count,
            "depth": self.depth,
            "swaps_inserted": self.swaps_inserted,
            "gate_counts": self.gate_counts(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompilationResult(method={self.method!r}, source={self.source_name!r}, "
            f"device={self.coupling_map.name!r}, cnots={self.two_qubit_gate_count}, "
            f"depth={self.depth}, swaps={self.swaps_inserted})"
        )


def gate_reduction(baseline: CompilationResult, improved: CompilationResult) -> float:
    """Fractional two-qubit gate reduction, the metric of Figure 10.

    Returns ``1 - improved/baseline`` so 0.35 means "35% fewer CNOT gates".
    """
    base = baseline.two_qubit_gate_count
    if base == 0:
        return 0.0
    return 1.0 - improved.two_qubit_gate_count / base


def check_connectivity(circuit: QuantumCircuit, coupling_map: CouplingMap) -> list:
    """Return the list of two-qubit instructions that violate the coupling map.

    An empty list means the circuit is executable on the device (every CNOT or
    SWAP acts on a coupled pair).  Compiled circuits must always pass this.
    """
    violations = []
    for instruction in circuit.instructions:
        if not instruction.gate.is_unitary:
            continue
        if instruction.gate.num_qubits == 2:
            a, b = instruction.qubits
            if not coupling_map.are_adjacent(a, b):
                violations.append(instruction)
        elif instruction.gate.num_qubits >= 3:
            violations.append(instruction)
    return violations
