"""Constructors for the standard gate library.

These small factory functions are the preferred way to build :class:`Gate`
objects; they fix the arity for each named gate so callers cannot accidentally
create, say, a three-qubit ``cx``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .gate import Gate

#: Interned parameter-free gates, keyed by (name, arity).  Gates are frozen
#: value objects, so the factories below can hand out one shared instance —
#: which also makes their (interned, read-only) matrices shared.
_GATE_CACHE: Dict[Tuple[str, int], Gate] = {}


def _interned(name: str, num_qubits: int) -> Gate:
    key = (name, num_qubits)
    gate = _GATE_CACHE.get(key)
    if gate is None:
        gate = Gate(name, num_qubits)
        _GATE_CACHE[key] = gate
    return gate

# ----------------------------------------------------------------------
# One-qubit gates
# ----------------------------------------------------------------------


def i_gate() -> Gate:
    """Identity gate."""
    return _interned("id", 1)


def x_gate() -> Gate:
    """Pauli-X (NOT) gate."""
    return _interned("x", 1)


def y_gate() -> Gate:
    """Pauli-Y gate."""
    return _interned("y", 1)


def z_gate() -> Gate:
    """Pauli-Z gate."""
    return _interned("z", 1)


def h_gate() -> Gate:
    """Hadamard gate."""
    return _interned("h", 1)


def s_gate() -> Gate:
    """Phase gate S = sqrt(Z)."""
    return _interned("s", 1)


def sdg_gate() -> Gate:
    """Inverse phase gate S†."""
    return _interned("sdg", 1)


def t_gate() -> Gate:
    """T gate = fourth root of Z."""
    return _interned("t", 1)


def tdg_gate() -> Gate:
    """Inverse T gate T†."""
    return _interned("tdg", 1)


def sx_gate() -> Gate:
    """Square root of X."""
    return _interned("sx", 1)


def sxdg_gate() -> Gate:
    """Inverse square root of X."""
    return _interned("sxdg", 1)


def rx_gate(theta: float) -> Gate:
    """Rotation about the X axis by ``theta`` radians."""
    return Gate("rx", 1, (theta,))


def ry_gate(theta: float) -> Gate:
    """Rotation about the Y axis by ``theta`` radians."""
    return Gate("ry", 1, (theta,))


def rz_gate(theta: float) -> Gate:
    """Rotation about the Z axis by ``theta`` radians."""
    return Gate("rz", 1, (theta,))


def u1_gate(lam: float) -> Gate:
    """IBM u1 gate: a diagonal phase of ``lam`` on |1⟩."""
    return Gate("u1", 1, (lam,))


def p_gate(lam: float) -> Gate:
    """Phase gate, an alias of u1."""
    return Gate("p", 1, (lam,))


def u2_gate(phi: float, lam: float) -> Gate:
    """IBM u2 gate: a pi/2 X-rotation sandwiched by Z-rotations."""
    return Gate("u2", 1, (phi, lam))


def u3_gate(theta: float, phi: float, lam: float) -> Gate:
    """IBM u3 gate: the generic single-qubit unitary up to global phase."""
    return Gate("u3", 1, (theta, phi, lam))


# ----------------------------------------------------------------------
# Two-qubit gates
# ----------------------------------------------------------------------


def cx_gate() -> Gate:
    """Controlled-NOT (control, target)."""
    return _interned("cx", 2)


def cz_gate() -> Gate:
    """Controlled-Z."""
    return _interned("cz", 2)


def cy_gate() -> Gate:
    """Controlled-Y."""
    return _interned("cy", 2)


def ch_gate() -> Gate:
    """Controlled-Hadamard."""
    return _interned("ch", 2)


def cp_gate(theta: float) -> Gate:
    """Controlled phase gate."""
    return Gate("cp", 2, (theta,))


def crz_gate(theta: float) -> Gate:
    """Controlled Z-rotation."""
    return Gate("crz", 2, (theta,))


def rzz_gate(theta: float) -> Gate:
    """Two-qubit ZZ interaction exp(-i theta/2 Z⊗Z)."""
    return Gate("rzz", 2, (theta,))


def swap_gate() -> Gate:
    """SWAP gate (decomposes to 3 CNOTs on hardware)."""
    return _interned("swap", 2)


# ----------------------------------------------------------------------
# Three-qubit gates
# ----------------------------------------------------------------------


def ccx_gate() -> Gate:
    """Toffoli gate (control, control, target) — the gate Trios routes as a unit."""
    return _interned("ccx", 3)


def ccz_gate() -> Gate:
    """Doubly-controlled Z (symmetric in its three qubits)."""
    return _interned("ccz", 3)


def cswap_gate() -> Gate:
    """Fredkin gate (control, target, target)."""
    return _interned("cswap", 3)


# ----------------------------------------------------------------------
# Non-unitary operations
# ----------------------------------------------------------------------


def measure_op() -> Gate:
    """Computational-basis measurement of one qubit."""
    return _interned("measure", 1)


def reset_op() -> Gate:
    """Reset a qubit to |0⟩."""
    return _interned("reset", 1)


def barrier_op(num_qubits: int) -> Gate:
    """A scheduling barrier across ``num_qubits`` qubits."""
    return _interned("barrier", num_qubits)


#: The hardware-supported basis used throughout the paper (IBM devices).
IBM_BASIS = ("u1", "u2", "u3", "cx")

#: Gate arities for the full library, useful for parsers and validators.
GATE_ARITY: Dict[str, int] = {
    "id": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "sx": 1, "sxdg": 1, "rx": 1, "ry": 1, "rz": 1, "u1": 1, "p": 1, "u2": 1,
    "u3": 1, "measure": 1, "reset": 1,
    "cx": 2, "cz": 2, "cy": 2, "ch": 2, "cp": 2, "crz": 2, "rzz": 2, "swap": 2,
    "ccx": 3, "ccz": 3, "cswap": 3,
}
