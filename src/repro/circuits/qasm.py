"""OpenQASM 2.0 export and a small import parser.

The exporter lets compiled circuits be inspected with external tools; the
importer is intentionally limited to the gate set this library emits (it is a
convenience for tests and examples, not a full OpenQASM front end).
"""

from __future__ import annotations

import math
import re
from typing import List, Tuple

from ..exceptions import CircuitError
from .circuit import QuantumCircuit
from .gate import Gate
from .library import GATE_ARITY

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

# Gates that qelib1.inc does not define and must be emitted as opaque/defined gates.
_NEEDS_DEFINITION = {"ccz", "rzz"}

_CCZ_DEFINITION = (
    "gate ccz a,b,c { h c; ccx a,b,c; h c; }\n"
)
_RZZ_DEFINITION = (
    "gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }\n"
)


def _format_param(value: float) -> str:
    """Render an angle compactly, using pi fractions when exact.

    Exact pi fractions (``num * pi / denom`` to the last float bit) print
    symbolically; everything else prints with :func:`repr`, whose
    shortest-round-trip guarantee makes ``parse(dump(c))`` reproduce every
    angle bit for bit — the property the QASM round-trip tests pin.
    """
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16, 17):
            if num == 0:
                continue
            if value == num * math.pi / denom:
                sign = "-" if num < 0 else ""
                num = abs(num)
                numerator = "pi" if num == 1 else f"{num}*pi"
                return f"{sign}{numerator}/{denom}" if denom != 1 else f"{sign}{numerator}"
    if value == 0.0:
        return "0"
    return repr(value)


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise ``circuit`` to an OpenQASM 2.0 program string."""
    lines: List[str] = [_HEADER.rstrip("\n")]
    names_used = {inst.name for inst in circuit.instructions}
    if "ccz" in names_used:
        lines.append(_CCZ_DEFINITION.rstrip("\n"))
    if "rzz" in names_used:
        lines.append(_RZZ_DEFINITION.rstrip("\n"))
    lines.append(f"qreg q[{circuit.num_qubits}];")
    num_clbits = circuit.num_clbits()
    if num_clbits:
        lines.append(f"creg c[{num_clbits}];")
    for instruction in circuit.instructions:
        name = instruction.name
        qubits = ",".join(f"q[{q}]" for q in instruction.qubits)
        if name == "measure":
            clbit = instruction.clbits[0] if instruction.clbits else instruction.qubits[0]
            lines.append(f"measure q[{instruction.qubits[0]}] -> c[{clbit}];")
        elif name == "barrier":
            lines.append(f"barrier {qubits};")
        elif name == "reset":
            lines.append(f"reset q[{instruction.qubits[0]}];")
        elif instruction.gate.params:
            params = ",".join(_format_param(p) for p in instruction.gate.params)
            lines.append(f"{name}({params}) {qubits};")
        else:
            lines.append(f"{name} {qubits};")
    return "\n".join(lines) + "\n"


_QREG_RE = re.compile(r"qreg\s+(\w+)\[(\d+)\]\s*;")
_CREG_RE = re.compile(r"creg\s+(\w+)\[(\d+)\]\s*;")
_MEASURE_RE = re.compile(r"measure\s+(\w+)\[(\d+)\]\s*->\s*(\w+)\[(\d+)\]\s*;")
_GATE_RE = re.compile(r"(\w+)\s*(\(([^)]*)\))?\s+([^;]+);")


def _parse_angle(text: str) -> float:
    """Evaluate a restricted arithmetic expression over pi (e.g. ``-3*pi/4``).

    Also accepts scientific notation (``1.5e-07``), which the exporter's
    full-precision ``repr`` rendering produces for small angles.
    """
    allowed = set("0123456789.+-*/ piE()e")
    if not set(text) <= allowed:
        raise CircuitError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, {"pi": math.pi}))  # noqa: S307
    except Exception as exc:
        raise CircuitError(f"cannot evaluate angle expression {text!r}") from exc


def from_qasm(text: str) -> QuantumCircuit:
    """Parse a (restricted) OpenQASM 2.0 program emitted by :func:`to_qasm`."""
    num_qubits = 0
    for match in _QREG_RE.finditer(text):
        num_qubits += int(match.group(2))
    if num_qubits == 0:
        raise CircuitError("OpenQASM program declares no qubits")
    circuit = QuantumCircuit(num_qubits)
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if (
            not line
            or line.startswith("OPENQASM")
            or line.startswith("include")
            or line.startswith("qreg")
            or line.startswith("creg")
            or line.startswith("gate ")
        ):
            continue
        measure = _MEASURE_RE.match(line)
        if measure:
            circuit.measure(int(measure.group(2)), int(measure.group(4)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise CircuitError(f"cannot parse OpenQASM line: {line!r}")
        name = match.group(1)
        params_text = match.group(3)
        operands = match.group(4)
        qubits = [int(q) for q in re.findall(r"\w+\[(\d+)\]", operands)]
        if name == "barrier":
            circuit.barrier(*qubits)
            continue
        if name == "reset":
            circuit.reset(qubits[0])
            continue
        if name not in GATE_ARITY:
            raise CircuitError(f"unsupported gate {name!r} in OpenQASM input")
        params: Tuple[float, ...] = ()
        if params_text:
            params = tuple(_parse_angle(part) for part in params_text.split(","))
        circuit.append(Gate(name, GATE_ARITY[name], params), qubits)
    return circuit
