"""Plain-text circuit drawing.

A small renderer producing the familiar one-wire-per-qubit ASCII picture, used
by the examples and handy when debugging routing output.  Gates are laid out in
the same greedy ASAP columns as :meth:`QuantumCircuit.depth` uses, so the
drawing width is the circuit depth.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .circuit import Instruction, QuantumCircuit

#: Maximum number of columns rendered before the drawing is elided.
_DEFAULT_MAX_COLUMNS = 120


def _gate_label(instruction: Instruction) -> str:
    name = instruction.name
    if instruction.gate.params:
        first = instruction.gate.params[0]
        return f"{name}({first:.2g})" if len(instruction.gate.params) == 1 else f"{name}(..)"
    return name


def _column_symbols(instruction: Instruction) -> Dict[int, str]:
    """Per-qubit cell text for one instruction."""
    name = instruction.name
    qubits = instruction.qubits
    if name == "measure":
        return {qubits[0]: "M"}
    if name == "barrier":
        return {qubit: "|" for qubit in qubits}
    if name in ("cx", "cz", "cp", "crz", "cy", "ch") and len(qubits) == 2:
        target_symbol = "x" if name == "cx" else _gate_label(instruction)[1:] or "z"
        return {qubits[0]: "o", qubits[1]: target_symbol.upper() if name == "cx" else target_symbol}
    if name == "swap":
        return {qubits[0]: "x", qubits[1]: "x"}
    if name in ("ccx", "ccz") and len(qubits) == 3:
        target = "X" if name == "ccx" else "Z"
        return {qubits[0]: "o", qubits[1]: "o", qubits[2]: target}
    if name == "cswap":
        return {qubits[0]: "o", qubits[1]: "x", qubits[2]: "x"}
    label = _gate_label(instruction)
    return {qubit: label for qubit in qubits}


def draw(circuit: QuantumCircuit, max_columns: Optional[int] = None) -> str:
    """Render ``circuit`` as an ASCII diagram, one line per qubit.

    Args:
        circuit: The circuit to draw.
        max_columns: Maximum number of time steps to render; longer circuits
            are truncated with an ellipsis.  Defaults to 120.
    """
    max_columns = max_columns or _DEFAULT_MAX_COLUMNS
    # Layers come from the circuit's shared, memoized DAG — drawing the same
    # circuit repeatedly (or after computing its depth) reuses one graph.
    layers = circuit.dag().layers(ignore=())
    truncated = False
    if len(layers) > max_columns:
        layers = layers[:max_columns]
        truncated = True

    columns: List[Dict[int, str]] = []
    spans: List[Dict[int, bool]] = []
    for layer in layers:
        cells: Dict[int, str] = {}
        in_span: Dict[int, bool] = {}
        for node in layer:
            cells.update(_column_symbols(node.instruction))
            qubits = node.instruction.qubits
            if len(qubits) > 1 and node.instruction.name != "barrier":
                low, high = min(qubits), max(qubits)
                for wire in range(low, high + 1):
                    in_span[wire] = True
        columns.append(cells)
        spans.append(in_span)

    widths = [
        max((len(text) for text in cells.values()), default=1) for cells in columns
    ]
    lines: List[str] = []
    for qubit in range(circuit.num_qubits):
        parts = [f"q{qubit:<3d}: "]
        for cells, in_span, width in zip(columns, spans, widths):
            if qubit in cells:
                text = cells[qubit].center(width, "-")
            elif in_span.get(qubit):
                text = "|".center(width, "-")
            else:
                text = "-" * width
            parts.append("-" + text + "-")
        if truncated:
            parts.append(" ...")
        lines.append("".join(parts))
    return "\n".join(lines)
