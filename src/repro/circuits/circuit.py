"""The quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects
(a gate bound to specific qubit indices).  This is the single IR shared by the
benchmark generators, every compiler pass and the simulators, mirroring the way
the paper's toolflow passes a circuit between its compilation stages
(Figure 2).

Qubits are plain integers ``0 .. num_qubits-1``.  Classical bits are also plain
integers and are only produced by ``measure`` instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import CircuitError
from . import library
from .gate import Gate


@dataclass(frozen=True)
class Instruction:
    """A gate applied to a concrete tuple of qubits (and optional clbits)."""

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "clbits", tuple(int(c) for c in self.clbits))
        if len(qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} expects {self.gate.num_qubits} qubits, "
                f"got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits {qubits} for gate {self.gate.name!r}")

    @property
    def name(self) -> str:
        """The gate name, e.g. ``"cx"``."""
        return self.gate.name

    def remap(self, mapping: Dict[int, int]) -> "Instruction":
        """Return a copy with each qubit ``q`` replaced by ``mapping[q]``."""
        return Instruction(self.gate, tuple(mapping[q] for q in self.qubits), self.clbits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instruction({self.gate!r}, qubits={self.qubits})"


def interaction_graph(
    instructions: Iterable[Instruction], toffoli_weight: int = 1
) -> Dict[Tuple[int, int], int]:
    """Weighted interaction graph over qubit pairs (shared by circuit and DAG).

    Multi-qubit unitaries contribute to every pair among their qubits; pairs of
    a three-or-more-qubit gate are weighted by ``toffoli_weight`` (the paper's
    mapper treats a Toffoli as 6 CNOTs, i.e. 2 per pair).
    """
    weights: Dict[Tuple[int, int], int] = {}
    for instruction in instructions:
        if not instruction.gate.is_unitary:
            continue
        qubits = instruction.qubits
        if len(qubits) < 2:
            continue
        weight = toffoli_weight if len(qubits) >= 3 else 1
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                key = (min(qubits[i], qubits[j]), max(qubits[i], qubits[j]))
                weights[key] = weights.get(key, 0) + weight
    return weights


class QuantumCircuit:
    """An ordered sequence of quantum instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: Optional[str] = None) -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name or "circuit"
        self.instructions: List[Instruction] = []
        # Memoized metrics (depth, count_ops) and the shared dependency DAG,
        # invalidated whenever an instruction is appended.  All mutation goes
        # through :meth:`append`, so clearing there keeps the cache honest.
        self._cache: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.instructions == other.instructions
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"instructions={len(self.instructions)})"
        )

    # ------------------------------------------------------------------
    # Pickling / copying
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        # The cached DagCircuit is a deep doubly-linked node chain; pickling
        # it recurses past the interpreter limit on large circuits.  Every
        # cache entry is recomputable, so drop the cache instead.
        state = dict(self.__dict__)
        state["_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(
        self,
        gate: Gate,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits``; returns ``self`` for chaining."""
        instruction = Instruction(gate, tuple(qubits), tuple(clbits))
        for qubit in instruction.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for a {self.num_qubits}-qubit circuit"
                )
        self.instructions.append(instruction)
        if self._cache:
            self._cache.clear()
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an already-built instruction (validated against circuit size)."""
        return self.append(instruction.gate, instruction.qubits, instruction.clbits)

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append every instruction from ``instructions``."""
        for instruction in instructions:
            self.append_instruction(instruction)
        return self

    # Convenience builders ------------------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.i_gate(), (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.x_gate(), (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.y_gate(), (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.z_gate(), (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.h_gate(), (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.s_gate(), (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.sdg_gate(), (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.t_gate(), (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.tdg_gate(), (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(library.rx_gate(theta), (qubit,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(library.ry_gate(theta), (qubit,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(library.rz_gate(theta), (qubit,))

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(library.u1_gate(lam), (qubit,))

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(library.u2_gate(phi, lam), (qubit,))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(library.u3_gate(theta, phi, lam), (qubit,))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(library.cx_gate(), (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(library.cz_gate(), (a, b))

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(library.cp_gate(theta), (control, target))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append(library.rzz_gate(theta), (a, b))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(library.crz_gate(theta), (control, target))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(library.swap_gate(), (a, b))

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        return self.append(library.ccx_gate(), (control1, control2, target))

    def ccz(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.append(library.ccz_gate(), (a, b, c))

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        return self.append(library.cswap_gate(), (control, a, b))

    def measure(self, qubit: int, clbit: Optional[int] = None) -> "QuantumCircuit":
        clbit = qubit if clbit is None else clbit
        return self.append(library.measure_op(), (qubit,), (clbit,))

    def measure_all(self) -> "QuantumCircuit":
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self.append(library.reset_op(), (qubit,))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        targets = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.append(library.barrier_op(len(targets)), targets)

    # ------------------------------------------------------------------
    # Queries and metrics
    # ------------------------------------------------------------------
    def dag(self) -> "DagCircuit":
        """The circuit's dependency DAG, built once and shared (frozen).

        The depth metric, the drawer, the scheduler and the success estimator
        all consume this view instead of rebuilding a graph per call.  The
        cached DAG is frozen (read-only); passes that rewrite the circuit use
        ``DagCircuit.from_circuit`` for a private mutable copy.  Appending to
        the circuit invalidates the cache.
        """
        cached = self._cache.get("dag")
        if cached is None:
            from .dag import DagCircuit

            cached = DagCircuit.from_circuit(self).freeze()
            self._cache["dag"] = cached
        return cached

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names (memoized; invalidated on append)."""
        cached = self._cache.get("count_ops")
        if cached is None:
            cached = {}
            for instruction in self.instructions:
                cached[instruction.name] = cached.get(instruction.name, 0) + 1
            self._cache["count_ops"] = cached
        return dict(cached)

    def num_clbits(self) -> int:
        """Number of classical bits implied by the measure instructions."""
        clbits = [c for inst in self.instructions for c in inst.clbits]
        return max(clbits) + 1 if clbits else 0

    def two_qubit_gate_count(self, count_swap_as: int = 1) -> int:
        """Number of two-qubit gates; SWAPs count as ``count_swap_as`` gates.

        The paper reports "two-qubit gate count" after full decomposition to
        the hardware basis, where each SWAP has been expanded to 3 CNOTs; use
        ``count_swap_as=3`` when counting a circuit that still contains SWAPs.
        """
        total = 0
        for instruction in self.instructions:
            if not instruction.gate.is_unitary:
                continue
            if instruction.name == "swap":
                total += count_swap_as
            elif instruction.gate.num_qubits == 2:
                total += 1
        return total

    def gate_count(self, names: Optional[Iterable[str]] = None) -> int:
        """Number of instructions, optionally restricted to the given names."""
        if names is None:
            return len(self.instructions)
        wanted = set(names)
        return sum(1 for inst in self.instructions if inst.name in wanted)

    def active_qubits(self) -> Set[int]:
        """Qubits touched by at least one non-barrier instruction."""
        active: Set[int] = set()
        for instruction in self.instructions:
            if instruction.name == "barrier":
                continue
            active.update(instruction.qubits)
        return active

    def depth(self, ignore: Tuple[str, ...] = ("barrier",)) -> int:
        """Circuit depth: the longest chain of dependent instructions.

        Memoized per ``ignore`` tuple and invalidated when an instruction is
        appended, so hot metric loops stop re-deriving it.
        """
        key = ("depth", ignore)
        cached = self._cache.get(key)
        if cached is None:
            level: Dict[int, int] = {}
            cached = 0
            for instruction in self.instructions:
                if instruction.name in ignore:
                    continue
                start = max((level.get(q, 0) for q in instruction.qubits), default=0)
                end = start + 1
                for qubit in instruction.qubits:
                    level[qubit] = end
                cached = max(cached, end)
            self._cache[key] = cached
        return cached

    def interactions(self, toffoli_weight: int = 1) -> Dict[Tuple[int, int], int]:
        """Weighted interaction graph over qubit pairs.

        Multi-qubit gates contribute to every pair among their qubits.  When
        ``toffoli_weight`` is larger than 1, each pair of a three-qubit gate is
        weighted accordingly (the paper's mapper treats a Toffoli as 6 CNOTs,
        i.e. 2 per pair).
        """
        return interaction_graph(self.instructions, toffoli_weight)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """A shallow copy (instructions are immutable so sharing them is safe)."""
        new = QuantumCircuit(self.num_qubits, name or self.name)
        new.instructions = list(self.instructions)
        return new

    def copy_empty(self, name: Optional[str] = None) -> "QuantumCircuit":
        """A circuit with the same width but no instructions."""
        return QuantumCircuit(self.num_qubits, name or self.name)

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Append ``other`` onto this circuit (in place), mapping its qubits.

        Args:
            other: The circuit to append.
            qubits: Where ``other``'s qubit ``i`` lands in this circuit.  By
                default qubit ``i`` maps to qubit ``i``.

        Returns:
            ``self`` for chaining.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"compose needs {other.num_qubits} target qubits, got {len(qubits)}"
            )
        mapping = {i: int(q) for i, q in enumerate(qubits)}
        for instruction in other.instructions:
            self.append(
                instruction.gate,
                tuple(mapping[q] for q in instruction.qubits),
                instruction.clbits,
            )
        return self

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a new circuit with qubit ``q`` renamed to ``mapping[q]``."""
        new_size = num_qubits if num_qubits is not None else self.num_qubits
        new = QuantumCircuit(new_size, self.name)
        for instruction in self.instructions:
            new.append_instruction(instruction.remap(mapping))
        return new

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (gates reversed and individually inverted)."""
        new = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for instruction in reversed(self.instructions):
            if not instruction.gate.is_unitary:
                raise CircuitError("cannot invert a circuit containing measurements")
            new.append(instruction.gate.inverse(), instruction.qubits)
        return new

    def without(self, names: Iterable[str]) -> "QuantumCircuit":
        """Return a copy with every instruction whose name is in ``names`` dropped."""
        skip = set(names)
        new = self.copy_empty()
        for instruction in self.instructions:
            if instruction.name not in skip:
                new.append_instruction(instruction)
        return new

    def unitary_instructions(self) -> List[Instruction]:
        """The unitary (gate) instructions, skipping measure/reset/barrier."""
        return [inst for inst in self.instructions if inst.gate.is_unitary]
