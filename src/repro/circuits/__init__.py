"""Circuit intermediate representation: gates, circuits, DAGs and OpenQASM I/O."""

from .gate import Gate, gate_matrix, KNOWN_GATE_NAMES
from .circuit import Instruction, QuantumCircuit
from .dag import CircuitDag, DagCircuit, DagNode, circuit_layers
from .qasm import to_qasm, from_qasm
from .drawing import draw
from . import library

__all__ = [
    "draw",
    "Gate",
    "gate_matrix",
    "KNOWN_GATE_NAMES",
    "Instruction",
    "QuantumCircuit",
    "CircuitDag",
    "DagCircuit",
    "DagNode",
    "circuit_layers",
    "to_qasm",
    "from_qasm",
    "library",
]
